//! Boundary-element style hierarchical matrix–vector product.
//!
//! §2 and §6 of the paper: "More complicated force models arise in the
//! solution of boundary element problems… the boundary elements correspond
//! to particles and the force model is defined by the Green's function of
//! the integral equation", and the authors apply the same machinery to
//! hierarchical matrix–vector products [17].
//!
//! Here: a Laplace single-layer potential on a sphere surface — evaluate
//! `y = K q` with `K_ij = 1/(4π |x_i − x_j|)` for panels `i ≠ j` — using
//! the treecode in place of the dense O(n²) product, and compare accuracy
//! and operation counts.
//!
//! ```text
//! cargo run --release --example boundary_elements -- [n_panels]
//! ```

use barnes_hut::geom::{Particle, ParticleSet, Vec3};
use barnes_hut::multipole::MultipoleTree;
use barnes_hut::tree::{build, direct, BarnesHutMac, BuildParams};

/// Quasi-uniform points on the unit sphere (Fibonacci lattice) with a
/// per-panel "charge" density.
fn sphere_panels(n: usize) -> ParticleSet {
    let golden = (1.0 + 5f64.sqrt()) / 2.0;
    let particles = (0..n)
        .map(|i| {
            let t = (i as f64 + 0.5) / n as f64;
            let lat = (1.0 - 2.0 * t).acos();
            let lon = std::f64::consts::TAU * (i as f64 / golden);
            let pos = Vec3::new(lat.sin() * lon.cos(), lat.sin() * lon.sin(), lat.cos());
            // a smooth density: q(x) = 1 + z² (panel charge as "mass")
            Particle::new(i as u32, 1.0 + pos.z * pos.z, pos, Vec3::ZERO)
        })
        .collect();
    ParticleSet::new(particles)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8_000);
    let set = sphere_panels(n);
    println!("single-layer Laplace potential on a sphere: {n} panels");

    // Hierarchical matvec: the tree treats charge as mass; potential is the
    // (negated, scaled) Green's function sum.
    let tree = build::build(&set.particles, BuildParams::default());
    let mac = BarnesHutMac::new(0.5);
    let mt = MultipoleTree::new(&tree, &set.particles, 4);
    let scale = -1.0 / (4.0 * std::f64::consts::PI); // Φ = −Σ q/r ⇒ K q = −Φ/4π

    let t0 = std::time::Instant::now();
    let mut interactions = 0u64;
    let y_tree: Vec<f64> = set
        .particles
        .iter()
        .map(|p| {
            let (phi, _, st) = mt.eval(&tree, &set.particles, p.pos, Some(p.id), &mac, 0.0);
            interactions += st.interactions();
            scale * phi
        })
        .collect();
    let t_tree = t0.elapsed().as_secs_f64();

    // Dense reference on a sample (full dense is O(n²)).
    let sample: Vec<usize> = (0..n).step_by((n / 400).max(1)).collect();
    let t0 = std::time::Instant::now();
    let y_dense: Vec<f64> = sample
        .iter()
        .map(|&i| {
            scale
                * direct::potential_direct(
                    &set.particles,
                    set.particles[i].pos,
                    Some(i as u32),
                    0.0,
                )
        })
        .collect();
    let t_dense_sample = t0.elapsed().as_secs_f64();
    let t_dense_full = t_dense_sample * n as f64 / sample.len() as f64;

    let y_tree_sample: Vec<f64> = sample.iter().map(|&i| y_tree[i]).collect();
    let err = direct::fractional_error(&y_tree_sample, &y_dense);

    println!("treecode matvec: {:.3}s, {} kernel evaluations", t_tree, interactions);
    println!(
        "dense matvec:    {:.3}s (extrapolated), {} kernel evaluations",
        t_dense_full,
        n as u64 * (n as u64 - 1)
    );
    println!("relative error:  {:.2e}", err);
    println!(
        "\nThe same partitioning/function-shipping machinery parallelizes this\n\
         matvec — the paper's companion work [17] does exactly that."
    );
}
