//! Galaxy collision: two Plummer spheres on an approach orbit, integrated
//! with the shared-memory parallel treecode and monitored for energy
//! conservation — the astrophysical workload class the paper's introduction
//! motivates.
//!
//! ```text
//! cargo run --release --example galaxy_collision -- [steps] [--adaptive] \
//!     [--snapshot out/collision.json]
//! ```
//!
//! With `--adaptive` each outer step becomes an S12 block timestep: the
//! core particles of each sphere descend to fine rungs while the halo keeps
//! the coarse dt, so the force-evaluation count per unit time drops without
//! loosening any particle's accuracy criterion.
//!
//! With `--snapshot PATH` the run writes a full simulation snapshot after
//! every progress chunk through the crash-safe temp-file-and-rename path,
//! so a killed run can be resumed from the last completed chunk with
//! `Simulation::from_snapshot` and the file at PATH is never torn.

use barnes_hut::geom::{plummer, Particle, ParticleSet, PlummerSpec, Vec3};
use barnes_hut::sim::{save_snapshot_state, EnergyReport, Simulation, SimulationConfig};
use barnes_hut::timestep::{BlockConfig, TimestepMode};

/// Two Plummer spheres offset and counter-moving.
fn collision_setup(n_each: usize) -> ParticleSet {
    let mut a = plummer(PlummerSpec { n: n_each, total_mass: 0.5, seed: 1, ..Default::default() });
    let b = plummer(PlummerSpec { n: n_each, total_mass: 0.5, seed: 2, ..Default::default() });
    let offset = Vec3::new(6.0, 1.0, 0.0); // impact parameter 1
    let approach = Vec3::new(-0.25, 0.0, 0.0);
    let shift = |p: &Particle, id_base: u32, sign: f64| Particle {
        id: p.id + id_base,
        mass: p.mass,
        pos: p.pos + offset * (0.5 * sign),
        vel: p.vel + approach * sign,
    };
    let n = a.len() as u32;
    let mut particles: Vec<Particle> = a.particles.iter().map(|p| shift(p, 0, 1.0)).collect();
    particles.extend(b.particles.iter().map(|p| shift(p, n, -1.0)));
    a.particles = particles;
    a
}

fn main() {
    let mut steps: usize = 100;
    let mut adaptive = false;
    let mut snapshot_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--adaptive" => adaptive = true,
            "--snapshot" => {
                snapshot_path = Some(args.next().expect("--snapshot needs a path").into());
            }
            s => steps = s.parse().expect("steps must be a number"),
        }
    }
    let set = collision_setup(2_000);
    println!(
        "galaxy collision: {} particles, {steps} steps ({} timesteps)",
        set.len(),
        if adaptive { "block" } else { "global" }
    );

    let e0 = EnergyReport::measure(&set, 0.02);
    println!("initial energy: K = {:.4}, U = {:.4}, E = {:.4}", e0.kinetic, e0.potential, e0.total);

    let timestep = if adaptive {
        TimestepMode::Block(BlockConfig { dt_max: 0.01, max_rung: 3, eta: 0.01, eps: 0.02 })
    } else {
        TimestepMode::Global
    };
    let mut sim = Simulation::new(
        set,
        SimulationConfig {
            dt: 0.01,
            alpha: 0.6,
            eps: 0.02,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            diag_every: steps.max(10) / 10,
            timestep,
            ..Default::default()
        },
    );

    let t0 = std::time::Instant::now();
    for chunk in 0..10 {
        let report = sim.run(steps / 10);
        let com = sim.particles.center_of_mass().unwrap();
        println!(
            "t = {:.2}: {} interactions/step, {} substeps, {} force evals, \
             imbalance {:.2}, |COM| = {:.2e}",
            sim.time,
            report.interactions,
            report.substeps,
            report.force_evals,
            report.imbalance,
            com.norm()
        );
        let _ = chunk;
        if let Some(path) = &snapshot_path {
            // Crash-safe periodic snapshot: temp file + fsync + rename, so
            // a kill between chunks leaves the previous complete snapshot.
            save_snapshot_state(path, &sim.snapshot()).expect("write snapshot");
        }
    }
    if let Some(stats) = &sim.last_block_stats {
        println!("rung populations: {:?}", stats.population);
    }
    println!("wall-clock: {:.2}s", t0.elapsed().as_secs_f64());

    let e1 = EnergyReport::measure(&sim.particles, 0.02);
    println!(
        "final energy: E = {:.4} (drift {:.3}%), max drift over run {:.3}%",
        e1.total,
        100.0 * e1.drift_from(&e0),
        100.0 * sim.diagnostics.max_drift()
    );
}
