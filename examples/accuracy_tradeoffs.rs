//! Accuracy/performance trade-offs: sweep the multipole degree and the
//! α-criterion on one dataset and print the error/time frontier — the
//! interactive version of Tables 6/7 and Fig. 9.
//!
//! ```text
//! cargo run --release --example accuracy_tradeoffs
//! ```

use barnes_hut::geom::{plummer, PlummerSpec};
use barnes_hut::multipole::{interaction_flops, MultipoleTree};
use barnes_hut::tree::{build, direct, BarnesHutMac, BuildParams};

fn main() {
    let set = plummer(PlummerSpec { n: 8_000, seed: 7, ..Default::default() });
    let tree = build::build(&set.particles, BuildParams::default());
    let eps = 1e-4;

    // Exact references on a sample.
    let sample: Vec<usize> = (0..set.len()).step_by(16).collect();
    let exact: Vec<f64> = sample
        .iter()
        .map(|&i| {
            direct::potential_direct(&set.particles, set.particles[i].pos, Some(i as u32), eps)
        })
        .collect();

    println!(
        "{:>6} {:>7} {:>14} {:>12} {:>12}",
        "alpha", "degree", "interactions", "model flops", "error %"
    );
    for &alpha in &[0.5, 0.67, 0.8, 1.0] {
        let mac = BarnesHutMac::new(alpha);
        for degree in [0u32, 2, 4] {
            let mt = MultipoleTree::new(&tree, &set.particles, degree);
            let mut interactions = 0u64;
            let approx: Vec<f64> = sample
                .iter()
                .map(|&i| {
                    let (phi, _, st) = mt.eval(
                        &tree,
                        &set.particles,
                        set.particles[i].pos,
                        Some(i as u32),
                        &mac,
                        eps,
                    );
                    interactions += st.interactions();
                    phi
                })
                .collect();
            let err = direct::fractional_error(&approx, &exact);
            // the paper's machine model: 13 + 16k² flops per interaction
            let flops = interactions * interaction_flops(degree);
            println!("{alpha:>6} {degree:>7} {interactions:>14} {flops:>12} {:>12.4}", 100.0 * err);
        }
    }
    println!("\nLower α or higher degree → more accuracy for more work;");
    println!("§5.2.3: raising the degree is the better lever at fixed error, and it");
    println!("*improves* parallel efficiency under function shipping.");
}
