//! FMM vs Barnes–Hut: the extension §2/§6 of the paper points to. Compares
//! work counts and accuracy of the two hierarchical methods on the same
//! tree, plus direct summation as ground truth.
//!
//! ```text
//! cargo run --release --example fmm_vs_barnes_hut -- [n]
//! ```

use barnes_hut::fmm::{Fmm, FmmConfig};
use barnes_hut::geom::{plummer, PlummerSpec};
use barnes_hut::multipole::MultipoleTree;
use barnes_hut::tree::{build, direct, BarnesHutMac, BuildParams};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let set = plummer(PlummerSpec { n, seed: 11, ..Default::default() });
    let tree = build::build(&set.particles, BuildParams::default());
    println!("{n} particles, {} tree nodes\n", tree.len());

    let exact = direct::all_potentials_direct(&set.particles, 0.0);

    println!("{:<22} {:>14} {:>14} {:>12}", "method", "p2n / m2l", "p2p", "error %");

    // Barnes–Hut at matching accuracy parameters.
    for degree in [2u32, 4] {
        let mac = BarnesHutMac::new(0.7);
        let mt = MultipoleTree::new(&tree, &set.particles, degree);
        let mut p2n = 0;
        let mut p2p = 0;
        let phis: Vec<f64> = set
            .particles
            .iter()
            .map(|p| {
                let (phi, _, st) = mt.eval(&tree, &set.particles, p.pos, Some(p.id), &mac, 0.0);
                p2n += st.p2n;
                p2p += st.p2p;
                phi
            })
            .collect();
        let err = direct::fractional_error(&phis, &exact);
        println!(
            "{:<22} {p2n:>14} {p2p:>14} {:>12.5}",
            format!("Barnes-Hut k={degree}"),
            100.0 * err
        );
    }

    // FMM at the same degrees.
    for degree in [2u32, 4] {
        let fmm = Fmm::new(&tree, &set.particles, FmmConfig { degree, theta: 0.7, eps: 0.0 });
        let (phis, _) = fmm.potentials_and_accels(&tree, &set.particles);
        let err = direct::fractional_error(&phis, &exact);
        println!(
            "{:<22} {:>14} {:>14} {:>12.5}",
            format!("FMM k={degree}"),
            fmm.stats.m2l,
            fmm.stats.p2p,
            100.0 * err
        );
    }

    println!(
        "\nBarnes-Hut does O(n log n) particle-node interactions; FMM replaces them \
         with O(n) cluster-cluster (M2L) translations - \"cluster-cluster interactions \
         in addition to particle-cluster interactions\" (paper, §2)."
    );
}
