//! Quickstart: build a Barnes–Hut tree over a Plummer sphere, evaluate
//! forces, and check accuracy against direct summation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use barnes_hut::geom::{plummer, PlummerSpec};
use barnes_hut::multipole::MultipoleTree;
use barnes_hut::tree::{build, direct, BarnesHutMac, BuildParams};

fn main() {
    // 1. A seeded 10k-particle Plummer sphere (the classic astrophysical
    //    test case; Fig. 8 of the paper shows one).
    let set = plummer(PlummerSpec { n: 10_000, seed: 42, ..Default::default() });
    println!("particles: {}", set.len());

    // 2. Build the oct-tree (leaf bucket s = 8, box collapsing on).
    let tree = build::build(&set.particles, BuildParams::default());
    println!("tree: {} nodes, depth {}", tree.len(), tree.depth());

    // 3. Evaluate the potential on every particle with the Barnes–Hut
    //    α-criterion at α = 0.67 (the paper's default).
    let mac = BarnesHutMac::new(0.67);
    let eps = 1e-4;
    let mut stats_total = 0u64;
    let phis: Vec<f64> = set
        .particles
        .iter()
        .map(|p| {
            let (phi, stats) =
                barnes_hut::tree::potential_at(&tree, &set.particles, p.pos, Some(p.id), &mac, eps);
            stats_total += stats.interactions();
            phi
        })
        .collect();
    println!(
        "monopole: {} interactions total ({:.1} per particle; direct would need {})",
        stats_total,
        stats_total as f64 / set.len() as f64,
        set.len() * (set.len() - 1),
    );

    // 4. Accuracy versus exact summation, sampled on 500 particles.
    let sample: Vec<usize> = (0..set.len()).step_by(set.len() / 500).collect();
    let exact: Vec<f64> = sample
        .iter()
        .map(|&i| {
            direct::potential_direct(&set.particles, set.particles[i].pos, Some(i as u32), eps)
        })
        .collect();
    let approx: Vec<f64> = sample.iter().map(|&i| phis[i]).collect();
    println!(
        "monopole fractional error: {:.3}%",
        100.0 * direct::fractional_error(&approx, &exact)
    );

    // 5. Raise the accuracy with a degree-4 multipole expansion (§5.2).
    let mt = MultipoleTree::new(&tree, &set.particles, 4);
    let approx4: Vec<f64> = sample
        .iter()
        .map(|&i| mt.eval(&tree, &set.particles, set.particles[i].pos, Some(i as u32), &mac, eps).0)
        .collect();
    println!(
        "degree-4 fractional error: {:.4}%",
        100.0 * direct::fractional_error(&approx4, &exact)
    );
}
