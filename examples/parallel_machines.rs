//! The paper's core experiment as an example: run the three parallel
//! formulations (SPSA, SPDA, DPDA) on a simulated 16–256-processor nCUBE2
//! and print runtimes, speedups and phase breakdowns.
//!
//! ```text
//! cargo run --release --example parallel_machines -- [dataset] [scale]
//! ```
//! e.g. `cargo run --release --example parallel_machines -- g_326214 0.02`

use barnes_hut::core::balance::Scheme;
use barnes_hut::core::{ParallelSim, SimConfig};
use barnes_hut::geom::dataset_scaled;
use barnes_hut::machine::{CostModel, Hypercube, Machine};

fn main() {
    let dataset = std::env::args().nth(1).unwrap_or_else(|| "g_160535".into());
    let scale: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let set = dataset_scaled(&dataset, scale);
    println!("dataset {dataset} at scale {scale}: {} particles\n", set.len());
    println!(
        "{:<6} {:>5} {:>10} {:>9} {:>6} {:>8} | {:>9} {:>9} {:>9}",
        "scheme", "p", "time (s)", "speedup", "eff", "ship", "force", "merge+bc", "balance"
    );

    for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
        for p in [16usize, 64, 256] {
            let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
            let mut sim = ParallelSim::new(
                machine,
                SimConfig { scheme, clusters_per_axis: 32, ..Default::default() },
            );
            // two warm-up steps let the dynamic assignments settle (§5.1)
            let _ = sim.run_iteration(&set.particles);
            let _ = sim.run_iteration(&set.particles);
            let out = sim.run_iteration(&set.particles);
            println!(
                "{:<6} {:>5} {:>10.3} {:>9.1} {:>6.2} {:>8} | {:>9.3} {:>9.3} {:>9.4}",
                scheme.name(),
                p,
                out.phases.total,
                out.speedup,
                out.efficiency,
                out.requests,
                out.phases.force,
                out.phases.tree_merge + out.phases.broadcast,
                out.phases.load_balance,
            );
        }
        println!();
    }
    println!("(simulated nCUBE2 seconds; 'ship' = particles shipped to remote subtrees)");
}
