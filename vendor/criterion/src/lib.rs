//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace benches use: groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is timed
//! with `std::time::Instant` over an adaptively chosen batch size and the
//! per-iteration min/mean/max over the samples is printed — no plots, no
//! statistics beyond that.

use std::fmt::Display;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into().text, sample_size, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().text, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().text, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { text: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter of the last `iter` call, for callers that want the number.
    pub last_mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so one sample is ~1 ms or ≥1 iteration.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1);
        let batch = (1_000_000 / once_ns).clamp(1, 1_000_000) as usize;

        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            min = min.min(per_iter);
            max = max.max(per_iter);
            sum += per_iter;
        }
        self.last_mean_ns = sum / self.sample_size as f64;
        println!("  time: [{} {} {}]", fmt_ns(min), fmt_ns(self.last_mean_ns), fmt_ns(max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if group.is_empty() {
        println!("bench: {id}");
    } else {
        println!("bench: {group}/{id}");
    }
    let mut b = Bencher { sample_size, last_mean_ns: 0.0 };
    f(&mut b);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("demo");
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 2);
    }
}
