//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(..)]`, `name in strategy` and `name: Type`
//! parameters), `prop_assert*` / `prop_assume!`, range and tuple strategies,
//! `prop_map`, `collection::vec`, and `array::uniform3`. Cases are generated
//! from a deterministic per-test seed, so failures reproduce exactly on
//! re-run; there is no shrinking.

pub mod test_runner {
    use std::hash::{DefaultHasher, Hash, Hasher};

    /// Outcome of one generated case, produced by the `prop_assert*` /
    /// `prop_assume!` macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic generator (splitmix64) seeded from the test's path and
    /// the case index.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn for_case(test_name: &str, attempt: u64) -> Self {
            let mut h = DefaultHasher::new();
            test_name.hash(&mut h);
            attempt.hash(&mut h);
            Self::from_seed(h.finish())
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drive one property: run `cfg.cases` successful cases, retrying
    /// rejected ones (bounded), panicking on the first failure.
    pub fn run_cases<F>(cfg: &ProptestConfig, test_name: &str, mut case_fn: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let max_rejects = cfg.cases.saturating_mul(20).max(1024);
        let mut rejects = 0u32;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < cfg.cases {
            let mut rng = TestRng::for_case(test_name, attempt);
            match case_fn(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(what)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!("{test_name}: too many prop_assume! rejections ({what})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: failed after {passed} passing case(s) \
                         (reproduce with attempt index {attempt}): {msg}"
                    );
                }
            }
            attempt += 1;
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            // Rounding can land exactly on `end`; fold that back to `start`.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = ((self.end as i128) - (self.start as i128)) as u128;
                    ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = ((hi as i128) - (lo as i128) + 1) as u128;
                    ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Strategy producing a fixed value (proptest's `Just`).
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (used for `name: Type`
    /// parameters in `proptest!`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact size or a range.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { min: r.start, max_excl: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self { min: *r.start(), max_excl: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
        }
    }

    /// `[T; 3]` with each element drawn from `elem`.
    pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
        Uniform3(elem)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &($cfg),
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $crate::__proptest_bind!((__proptest_rng) $($params)*);
                    #[allow(unreachable_code)]
                    let __proptest_case =
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            { $body }
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (($rng:ident)) => {};
    (($rng:ident) $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!(($rng) $($rest)*);
    };
    (($rng:ident) $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    (($rng:ident) $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!(($rng) $($rest)*);
    };
    (($rng:ident) $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-1.0f64..2.0), &mut rng);
            assert!((-1.0..2.0).contains(&f));
            let i = Strategy::sample(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let strat = crate::collection::vec(0usize..10, 2..6).prop_map(|v| v.len());
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let len = strat.sample(&mut rng);
            assert!((2..6).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_binds_both_forms(x in 0u32..100, flag: bool, arr in prop::array::uniform3(0.0f64..1.0)) {
            prop_assert!(x < 100);
            let _ = flag;
            prop_assert!(arr.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn assume_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
