//! Offline stand-in for `serde`.
//!
//! The workspace only round-trips a handful of plain named-field structs
//! through JSON, so instead of serde's visitor architecture this crate models
//! serialization as conversion to/from a [`value::Value`] tree. The derive
//! macros (re-exported from `serde_derive`) generate field-by-field
//! conversions for named-field structs; `serde_json` renders the tree as
//! JSON text.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Conversion into the JSON-like value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the JSON-like value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(format!("expected unsigned int, got {other:?}")),
                };
                <$t>::try_from(u).map_err(|_| format!("{u} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| format!("{u} overflows i64"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(format!("expected int, got {other:?}")),
                };
                <$t>::try_from(i).map_err(|_| format!("{i} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) => {
                if items.len() != N {
                    return Err(format!("expected {N}-element array, got {}", items.len()));
                }
                let elems: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                elems.try_into().map_err(|_| format!("array length mismatch for [_; {N}]"))
            }
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Arr(items) => {
                        const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                        if items.len() != LEN {
                            return Err(format!("expected {LEN}-tuple, got {} items", items.len()));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(format!("expected array, got {other:?}")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
