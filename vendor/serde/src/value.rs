//! The JSON-shaped value tree plus its text reader/writer.
//!
//! Numbers keep their integer-ness (`Int`/`UInt` vs `Float`) so `u64`
//! counters survive a round trip without passing through `f64`.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is shortest-round-trip, but bare integers
                    // (`1`) would re-parse as Int; keep a decimal point.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.
    pub fn from_json(s: &str) -> Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>().map(Value::Float).map_err(|e| format!("bad float {text}: {e}"))
    } else if text.starts_with('-') {
        text.parse::<i64>().map(Value::Int).map_err(|e| format!("bad int {text}: {e}"))
    } else {
        text.parse::<u64>().map(Value::UInt).map_err(|e| format!("bad uint {text}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::UInt(1), Value::Float(2.5)])),
            ("b".into(), Value::Str("x\"\\\n".into())),
            ("c".into(), Value::Int(-3)),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::Null),
        ]);
        let json = v.to_json();
        assert_eq!(Value::from_json(&json).unwrap(), v);
    }

    #[test]
    fn floats_survive_exactly() {
        for f in [0.1, 1e-300, 123456789.123456, -0.0, 2.0_f64.powi(-53)] {
            let v = Value::Float(f);
            let back = Value::from_json(&v.to_json()).unwrap();
            match back {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn large_u64_survives() {
        let v = Value::UInt(u64::MAX);
        assert_eq!(Value::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::from_json("{\"a\":}").is_err());
        assert!(Value::from_json("[1,,2]").is_err());
        assert!(Value::from_json("01x").is_err());
    }
}
