//! Derive macros for the vendored serde stand-in.
//!
//! Supports exactly what the workspace derives on: non-generic named-field
//! structs. The expansion maps each field through the `Serialize` /
//! `Deserialize` traits, so field types only need their own impls. Anything
//! fancier (enums, tuple structs, generics) panics with a clear message at
//! compile time rather than mis-expanding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> StructShape {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility up to the `struct` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // attribute body
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("vendored serde_derive supports structs only, found enum")
            }
            Some(TokenTree::Ident(_)) | Some(TokenTree::Group(_)) => {}
            Some(other) => panic!("unexpected token before `struct`: {other}"),
            None => panic!("no `struct` keyword in derive input"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde_derive supports named-field structs only (struct {name} is a tuple struct)")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic struct {name}")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("vendored serde_derive does not support unit struct {name}")
            }
            Some(_) => {}
            None => panic!("no struct body for {name}"),
        }
    };

    // Walk the field list: skip attributes/visibility, take `ident :`, then
    // consume the type up to a top-level comma (angle-bracket depth tracked
    // by hand — `<` / `>` are plain puncts in a token stream).
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next(); // the [...] group
            } else {
                break;
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name in {name}, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {field} in {name}, found {other:?}"),
        }
        fields.push(field);
        // Skip the type.
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    StructShape { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let pairs: Vec<String> = shape
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
        .collect();
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{}])\n\
             }}\n\
         }}",
        shape.name,
        pairs.join(", ")
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let inits: Vec<String> = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")\
                 .ok_or_else(|| format!(\"missing field `{f}` in {}\"))?)?",
                shape.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, String> {{\n\
                 Ok({} {{ {} }})\n\
             }}\n\
         }}",
        shape.name,
        shape.name,
        inits.join(", ")
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
