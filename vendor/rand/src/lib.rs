//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `rand`'s API it actually uses: `SmallRng` seeded from a
//! `u64`, `gen`/`gen_range`/`gen_bool`, and partial index sampling. The
//! generator is xoshiro256++ seeded via splitmix64 — deterministic per seed,
//! which is all the samplers and tests rely on (they never assume upstream
//! `rand`'s exact streams).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding entry point (`SmallRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution of a type under `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly (`Rng::gen_range`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The user-facing convenience trait, blanket-implemented for every rng.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::{Rng, RngCore};

        /// Indices returned by [`sample`]; iterates as `usize`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// `amount` distinct indices drawn uniformly from `0..length`
        /// (partial Fisher–Yates).
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1u32..=63);
            assert!((1..=63).contains(&j));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let vals: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        assert!(vals.iter().any(|&v| v < 0.1) && vals.iter().any(|&v| v > 0.9));
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let idx = seq::index::sample(&mut rng, 100, 30);
        let mut v = idx.into_vec();
        assert_eq!(v.len(), 30);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 30);
        assert!(v.iter().all(|&i| i < 100));
    }
}
