//! Offline stand-in for `serde_json`: renders the vendored serde value tree
//! as JSON text and parses it back.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = Value::from_json(s).map_err(Error)?;
    T::from_value(&v).map_err(Error)
}

pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(value.to_value().to_json().as_bytes())?;
    Ok(())
}

pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let s = to_string(&vec![1.5f64, -2.0]).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1.5, -2.0]);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &(1u64, 2.5f64)).unwrap();
        let back: (u64, f64) = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, (1, 2.5));
    }

    #[test]
    fn parse_error_reports() {
        let r: Result<Vec<f64>> = from_str("[1,");
        assert!(r.is_err());
    }
}
