//! # barnes-hut — scalable parallel formulations of the Barnes–Hut method
//!
//! Facade crate for the reproduction of Grama, Kumar & Sameh (SC'94 /
//! Parallel Computing 24, 1998). Re-exports the whole public API of the
//! workspace so examples and downstream users need a single dependency:
//!
//! * [`geom`] — vectors, boxes, particles, and the paper's workloads (S1)
//! * [`morton`] — Morton/Hilbert orderings and gray-code maps (S2)
//! * [`tree`] — the sequential Barnes–Hut treecode and direct baseline (S3)
//! * [`multipole`] — degree-k Cartesian multipole expansions (S4)
//! * [`machine`] — the simulated message-passing multicomputer (S5)
//! * [`core`] — SPSA / SPDA / DPDA parallel formulations (S6, the paper's
//!   contribution)
//! * [`fmm`] — the fast-multipole extension of §2/§6 (dual traversal,
//!   M2L/L2L/L2P)
//! * [`threads`] — a real shared-memory parallel executor (S7)
//! * [`sim`] — time integration and diagnostics (S8)
//! * [`obs`] — phase-level spans, work counters and step profiles shared by
//!   the real and simulated paths (S11)
//! * [`timestep`] — hierarchical block timesteps with active-set force
//!   evaluation (S12)
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment map.

pub use bhut_core as core;
pub use bhut_fmm as fmm;
pub use bhut_geom as geom;
pub use bhut_machine as machine;
pub use bhut_morton as morton;
pub use bhut_multipole as multipole;
pub use bhut_obs as obs;
pub use bhut_sim as sim;
pub use bhut_threads as threads;
pub use bhut_timestep as timestep;
pub use bhut_tree as tree;

/// Workspace version, for embedding in experiment records.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
