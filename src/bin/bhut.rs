//! `bhut` — command-line front end for the Barnes–Hut reproduction.
//!
//! ```text
//! bhut simulate  --dataset p_5000 --steps 100 --dt 0.002 [--threads N] [--snapshot out.json]
//! bhut forces    --dataset g_160535 --scale 0.02 [--alpha 0.67] [--degree 0] [--check]
//! bhut schemes   --dataset g_326214 --scale 0.02 --p 16,64 [--clusters 32]
//! bhut datasets
//! ```

use barnes_hut::core::balance::Scheme;
use barnes_hut::core::{ParallelSim, SimConfig};
use barnes_hut::geom::{dataset_domain, dataset_scaled, PAPER_DATASETS};
use barnes_hut::machine::{CostModel, Hypercube, Machine};
use barnes_hut::sim::{save_snapshot, EnergyReport, Simulation, SimulationConfig};
use barnes_hut::threads::{ThreadConfig, ThreadSim};
use barnes_hut::tree::direct;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bhut simulate --dataset NAME [--scale F] [--steps N] [--dt F] \
         [--threads N] [--alpha F] [--snapshot FILE]\n  bhut forces --dataset NAME \
         [--scale F] [--alpha F] [--degree K] [--threads N] [--check]\n  bhut schemes \
         --dataset NAME [--scale F] [--p LIST] [--clusters C] [--alpha F]\n  bhut datasets"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}");
            usage();
        };
        // boolean flags (--check) take no value
        let val = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().cloned().unwrap(),
            _ => "true".to_string(),
        };
        flags.insert(key.to_string(), val);
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v:?}");
            usage()
        }),
        None => default,
    }
}

fn load(flags: &HashMap<String, String>) -> (String, barnes_hut::geom::ParticleSet) {
    let name = flags.get("dataset").cloned().unwrap_or_else(|| usage());
    let scale: f64 = get(flags, "scale", 1.0);
    (name.clone(), dataset_scaled(&name, scale))
}

fn cmd_datasets() {
    println!("{:<12} {:>10}  kind", "name", "n (full)");
    for d in PAPER_DATASETS {
        println!("{:<12} {:>10}  {:?}", d.name, d.n, d.kind);
    }
}

fn cmd_simulate(flags: HashMap<String, String>) {
    let (name, set) = load(&flags);
    let steps: usize = get(&flags, "steps", 100);
    let cfg = SimulationConfig {
        dt: get(&flags, "dt", 1e-3),
        alpha: get(&flags, "alpha", 0.67),
        degree: get(&flags, "degree", 0),
        eps: get(&flags, "eps", 1e-2),
        threads: get(
            &flags,
            "threads",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ),
        diag_every: get(&flags, "diag-every", 0),
        ..Default::default()
    };
    println!("simulating {name}: {} particles, {steps} steps at dt = {}", set.len(), cfg.dt);
    let diag = cfg.diag_every > 0;
    let e0 = diag.then(|| EnergyReport::measure(&set, cfg.eps));
    let mut sim = Simulation::new(set, cfg);
    let t0 = std::time::Instant::now();
    let report = sim.run(steps);
    println!(
        "t = {:.4}: last step {} interactions, imbalance {:.2}, wall {:.2}s",
        sim.time,
        report.interactions,
        report.imbalance,
        t0.elapsed().as_secs_f64()
    );
    if let Some(e0) = e0 {
        let e1 = EnergyReport::measure(&sim.particles, sim.config.eps);
        println!("energy drift: {:.4}%", 100.0 * e1.drift_from(&e0));
    }
    if let Some(path) = flags.get("snapshot") {
        save_snapshot(&PathBuf::from(path), sim.time, &sim.particles).expect("write snapshot");
        println!("snapshot written to {path}");
    }
}

fn cmd_forces(flags: HashMap<String, String>) {
    let (name, set) = load(&flags);
    let mut sim = ThreadSim::new(ThreadConfig {
        threads: get(
            &flags,
            "threads",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ),
        alpha: get(&flags, "alpha", 0.67),
        degree: get(&flags, "degree", 0),
        eps: get(&flags, "eps", 1e-4),
        ..Default::default()
    });
    let t0 = std::time::Instant::now();
    let out = sim.compute_forces(&set.particles);
    println!(
        "{name}: {} particles, {} interactions, imbalance {:.2}, wall {:.3}s",
        set.len(),
        out.stats.interactions(),
        out.imbalance(),
        t0.elapsed().as_secs_f64()
    );
    if flags.contains_key("check") {
        let sample: Vec<usize> = (0..set.len()).step_by((set.len() / 200).max(1)).collect();
        let exact: Vec<f64> = sample
            .iter()
            .map(|&i| {
                direct::potential_direct(
                    &set.particles,
                    set.particles[i].pos,
                    Some(i as u32),
                    sim.config.eps,
                )
            })
            .collect();
        let approx: Vec<f64> = sample.iter().map(|&i| out.potentials[i]).collect();
        println!(
            "fractional error vs direct (sampled): {:.4}%",
            100.0 * direct::fractional_error(&approx, &exact)
        );
    }
}

fn cmd_schemes(flags: HashMap<String, String>) {
    let (name, set) = load(&flags);
    let ps: Vec<usize> = flags
        .get("p")
        .map(|v| v.split(',').map(|s| s.parse().expect("bad p")).collect())
        .unwrap_or_else(|| vec![16, 64]);
    let clusters: u32 = get(&flags, "clusters", 32);
    let alpha: f64 = get(&flags, "alpha", 0.67);
    println!(
        "{name}: {} particles on a simulated nCUBE2 (clusters {clusters}x{clusters}, alpha {alpha})\n",
        set.len()
    );
    println!("{:<6} {:>5} {:>10} {:>9} {:>6}", "scheme", "p", "time (s)", "speedup", "eff");
    for scheme in [Scheme::Spsa, Scheme::Spda, Scheme::Dpda] {
        for &p in &ps {
            let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
            let mut sim = ParallelSim::new(
                machine,
                SimConfig {
                    scheme,
                    clusters_per_axis: clusters,
                    alpha,
                    domain: dataset_domain(&name),
                    ..Default::default()
                },
            );
            let _ = sim.run_iteration(&set.particles);
            let _ = sim.run_iteration(&set.particles);
            let out = sim.run_iteration(&set.particles);
            println!(
                "{:<6} {:>5} {:>10.3} {:>9.1} {:>6.2}",
                scheme.name(),
                p,
                out.phases.total,
                out.speedup,
                out.efficiency
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "simulate" => cmd_simulate(flags),
        "forces" => cmd_forces(flags),
        "schemes" => cmd_schemes(flags),
        "datasets" => cmd_datasets(),
        _ => usage(),
    }
}
