//! Degree-k multipole expansions for treecodes (substrate **S4**).
//!
//! §5.2 of the paper raises the accuracy of the simulation by replacing the
//! center-of-mass (monopole) approximation with a degree-k series for the
//! gravitational *potential* ("the potential is a scalar quantity and can be
//! conveniently expressed as a series using Legendre's polynomials"; vector
//! forces follow by differentiation). We implement the equivalent Cartesian
//! Taylor form, which offers the identical accuracy/degree trade-off with a
//! simpler translation operator:
//!
//! * **P2M** — moments `M_a = Σ_j m_j (y_j − c)^a` for multi-indices
//!   `|a| ≤ k` ([`Expansion::from_particles`]),
//! * **M2M** — binomial shift of moments to a new center
//!   ([`Expansion::translate`]), used by the upward pass,
//! * **M2P** — evaluation of potential *and* acceleration at a target via
//!   the Taylor tensors of `1/r` ([`Expansion::eval`]).
//!
//! [`flops`] carries the paper's machine model (§5.2.1): 14 flops per MAC,
//! `13 + 16k²` flops per particle–cluster interaction — the numbers the
//! simulated-machine experiments charge per event.

pub mod expansion;
pub mod flops;
pub mod local;
pub mod multiindex;
pub mod taylor;
pub mod tree_ext;

pub use expansion::Expansion;
pub use flops::{interaction_flops, series_words_3d, MAC_FLOPS};
pub use local::LocalExpansion;
pub use multiindex::MultiIndexSet;
pub use tree_ext::MultipoleTree;
