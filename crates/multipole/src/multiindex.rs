//! Multi-index bookkeeping for Cartesian expansions.
//!
//! A degree-k expansion stores one coefficient per multi-index
//! `a = (ax, ay, az)` with `|a| = ax+ay+az ≤ k` — `C(k+3, 3)` of them. This
//! module provides the canonical enumeration (graded lexicographic), the
//! inverse lookup, and binomial tables shared by the P2M/M2M/M2P kernels.

/// The set of multi-indices of total degree ≤ `k`, with O(1) inverse lookup.
#[derive(Debug, Clone)]
pub struct MultiIndexSet {
    pub degree: u32,
    /// Multi-indices in graded-lex order: sorted by |a|, then by (ax, ay, az).
    pub indices: Vec<(u8, u8, u8)>,
    /// `lookup[ax][ay][az]` → position in `indices`.
    lookup: Vec<usize>,
    stride: usize,
}

impl MultiIndexSet {
    /// Enumerate every multi-index with `|a| ≤ degree`.
    pub fn new(degree: u32) -> Self {
        assert!(degree <= 20, "degree {degree} unreasonably large");
        let k = degree as usize;
        let mut indices = Vec::with_capacity(Self::count(degree));
        for total in 0..=k {
            for ax in 0..=total {
                for ay in 0..=(total - ax) {
                    let az = total - ax - ay;
                    indices.push((ax as u8, ay as u8, az as u8));
                }
            }
        }
        let stride = k + 1;
        let mut lookup = vec![usize::MAX; stride * stride * stride];
        for (pos, &(x, y, z)) in indices.iter().enumerate() {
            lookup[(x as usize * stride + y as usize) * stride + z as usize] = pos;
        }
        MultiIndexSet { degree, indices, lookup, stride }
    }

    /// Number of coefficients in a degree-k expansion: `C(k+3, 3)`.
    pub fn count(degree: u32) -> usize {
        let k = degree as usize;
        (k + 1) * (k + 2) * (k + 3) / 6
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Position of multi-index `(x, y, z)`; panics if out of range in debug.
    #[inline]
    pub fn pos(&self, x: u8, y: u8, z: u8) -> usize {
        let p = self.lookup[(x as usize * self.stride + y as usize) * self.stride + z as usize];
        debug_assert_ne!(p, usize::MAX, "index ({x},{y},{z}) exceeds degree {}", self.degree);
        p
    }

    /// Position of `(x,y,z)` or `None` when `|a|` exceeds the degree.
    #[inline]
    pub fn try_pos(&self, x: u8, y: u8, z: u8) -> Option<usize> {
        if (x as u32 + y as u32 + z as u32) > self.degree {
            return None;
        }
        Some(self.pos(x, y, z))
    }
}

/// Borrow a cached [`MultiIndexSet`] for `degree` (thread-local; the eval
/// hot path constructs these once per degree instead of per call).
pub fn with_cached_set<R>(degree: u32, f: impl FnOnce(&MultiIndexSet) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static CACHE: RefCell<Vec<Option<MultiIndexSet>>> = const { RefCell::new(Vec::new()) };
    }
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        let idx = degree as usize;
        if c.len() <= idx {
            c.resize_with(idx + 1, || None);
        }
        let set = c[idx].get_or_insert_with(|| MultiIndexSet::new(degree));
        f(set)
    })
}

/// `n!` as f64 (n ≤ 20 fits exactly in f64's integer range up to 2^53? 20!
/// ≈ 2.4e18 > 2^53, but we only use ratios that stay small; factorials up to
/// 12 are exact and degrees beyond that are rejected upstream).
pub fn factorial(n: u32) -> f64 {
    (1..=n).fold(1.0, |acc, i| acc * i as f64)
}

/// Binomial coefficient `C(n, k)` as f64.
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0;
    let mut den = 1.0;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for k in 0..8 {
            let s = MultiIndexSet::new(k);
            assert_eq!(s.len(), MultiIndexSet::count(k));
        }
        assert_eq!(MultiIndexSet::count(0), 1);
        assert_eq!(MultiIndexSet::count(1), 4);
        assert_eq!(MultiIndexSet::count(2), 10);
        assert_eq!(MultiIndexSet::count(3), 20);
        assert_eq!(MultiIndexSet::count(4), 35);
        assert_eq!(MultiIndexSet::count(5), 56);
    }

    #[test]
    fn graded_order_and_lookup_roundtrip() {
        let s = MultiIndexSet::new(5);
        let mut prev_total = 0u32;
        for (pos, &(x, y, z)) in s.indices.iter().enumerate() {
            let total = x as u32 + y as u32 + z as u32;
            assert!(total >= prev_total, "not graded at {pos}");
            prev_total = total;
            assert_eq!(s.pos(x, y, z), pos);
        }
    }

    #[test]
    fn try_pos_rejects_overflow() {
        let s = MultiIndexSet::new(2);
        assert!(s.try_pos(1, 1, 0).is_some());
        assert!(s.try_pos(2, 1, 0).is_none());
        assert!(s.try_pos(0, 0, 3).is_none());
    }

    #[test]
    fn zeroth_index_is_scalar() {
        let s = MultiIndexSet::new(3);
        assert_eq!(s.indices[0], (0, 0, 0));
        assert_eq!(s.pos(0, 0, 0), 0);
    }

    #[test]
    fn factorials_and_binomials() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(6, 0), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
        // Pascal identity spot check.
        for n in 1..10 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }
}
