//! The paper's floating-point cost model (§5.2.1).
//!
//! "In our code, each particle–cluster interaction requires `13 + k²·16`
//! floating point instructions, where k is the degree of polynomial used.
//! The MAC routine requires 14 floating point instructions. The square root
//! instruction is assumed to be a single floating point instruction."
//!
//! The simulated machine (`bhut-machine`) charges these counts per event, so
//! the reproduced tables use the *authors' own* work model rather than our
//! host's instruction timings.

/// Flops per multipole acceptance test.
pub const MAC_FLOPS: u64 = 14;

/// Flops per particle–cluster (or particle–particle, `degree = 0`)
/// interaction at multipole degree `degree`.
#[inline]
pub fn interaction_flops(degree: u32) -> u64 {
    13 + 16 * degree as u64 * degree as u64
}

/// Words (f64s) a *data-shipping* scheme transfers per fetched node at
/// degree `k` in three dimensions (§4.2.1): the series is Θ(k²) complex
/// numbers — "a 6 degree multipole expansion consists of 36 complex numbers
/// or 72 floating point numbers" — plus the 3-word origin of the series.
#[inline]
pub fn series_words_3d(degree: u32) -> u64 {
    2 * degree as u64 * degree as u64 + 3
}

/// Words a *function-shipping* scheme transfers per shipped particle: the
/// three coordinates (§3.2) plus one key word identifying the target branch
/// node.
pub const FUNCTION_SHIP_WORDS: u64 = 4;

/// Words per returned result (accumulated potential, or potential + 3 force
/// components).
pub const RESULT_WORDS: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_constants() {
        assert_eq!(interaction_flops(0), 13);
        assert_eq!(interaction_flops(4), 13 + 16 * 16);
        assert_eq!(interaction_flops(5), 13 + 16 * 25);
        assert_eq!(MAC_FLOPS, 14);
    }

    #[test]
    fn degree_6_series_is_72_words_plus_origin() {
        assert_eq!(series_words_3d(6), 72 + 3);
    }

    #[test]
    fn function_shipping_beats_data_shipping_for_k_ge_2() {
        // §4.2.1: the advantage appears once the series outweighs the
        // coordinates — from degree 2 upward in 3-D.
        for k in 2..8 {
            assert!(FUNCTION_SHIP_WORDS + RESULT_WORDS < series_words_3d(k));
        }
    }
}
