//! Taylor derivative tensors of the Newtonian kernel `g(r) = 1/|r|`.
//!
//! [`taylor_tensors`] computes `T_a(r) = (1/a!) ∂^a g(r)` for every
//! multi-index `|a| ≤ k` with the classic three-term recurrence (used by
//! Cartesian FMM/treecode kernels):
//!
//! ```text
//! |a| r² T_a + (2|a|−1) Σ_d r_d T_{a−e_d} + (|a|−1) Σ_d T_{a−2e_d} = 0
//! ```
//!
//! which follows from Laplace's equation for `1/r`. Cost is `O(k³)` per
//! target — one multiply-add sweep per coefficient.

use crate::multiindex::MultiIndexSet;
use bhut_geom::Vec3;

/// Compute all `T_a(r)` for `|a| ≤ set.degree` into `out` (resized as
/// needed). `r` must be non-zero.
pub fn taylor_tensors(set: &MultiIndexSet, r: Vec3, out: &mut Vec<f64>) {
    let r2 = r.norm_sq();
    debug_assert!(r2 > 0.0, "Taylor tensors undefined at the origin");
    out.clear();
    out.resize(set.len(), 0.0);
    out[0] = 1.0 / r2.sqrt();
    let inv_r2 = 1.0 / r2;
    let rc = [r.x, r.y, r.z];
    for (pos, &(ax, ay, az)) in set.indices.iter().enumerate().skip(1) {
        let a = [ax, ay, az];
        let n = (ax + ay + az) as f64;
        let mut acc = 0.0;
        for d in 0..3 {
            if a[d] >= 1 {
                let mut b = a;
                b[d] -= 1;
                acc += (2.0 * n - 1.0) * rc[d] * out[set.pos(b[0], b[1], b[2])];
            }
            if a[d] >= 2 {
                let mut b = a;
                b[d] -= 2;
                acc += (n - 1.0) * out[set.pos(b[0], b[1], b[2])];
            }
        }
        out[pos] = -acc * inv_r2 / n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: numerical differentiation of 1/r by central differences.
    fn numeric_t(a: (u8, u8, u8), r: Vec3) -> f64 {
        // nested central differences, step tuned for f64
        fn deriv(f: &dyn Fn(Vec3) -> f64, axis: usize, order: u8, r: Vec3, h: f64) -> f64 {
            if order == 0 {
                return f(r);
            }
            let mut hi = r;
            let mut lo = r;
            match axis {
                0 => {
                    hi.x += h;
                    lo.x -= h;
                }
                1 => {
                    hi.y += h;
                    lo.y -= h;
                }
                _ => {
                    hi.z += h;
                    lo.z -= h;
                }
            }
            (deriv(f, axis, order - 1, hi, h) - deriv(f, axis, order - 1, lo, h)) / (2.0 * h)
        }
        let g = |v: Vec3| 1.0 / v.norm();
        let h = 1e-2;
        let fx = move |v: Vec3| deriv(&g, 0, a.0, v, h);
        let fy = move |v: Vec3| deriv(&fx, 1, a.1, v, h);
        let t = deriv(&fy, 2, a.2, r, h);
        let a_fact = crate::multiindex::factorial(a.0 as u32)
            * crate::multiindex::factorial(a.1 as u32)
            * crate::multiindex::factorial(a.2 as u32);
        t / a_fact
    }

    #[test]
    fn low_order_closed_forms() {
        let set = MultiIndexSet::new(2);
        let r = Vec3::new(1.0, 2.0, -0.5);
        let mut t = Vec::new();
        taylor_tensors(&set, r, &mut t);
        let rn = r.norm();
        assert!((t[set.pos(0, 0, 0)] - 1.0 / rn).abs() < 1e-14);
        // T_{e_x} = -x/r³
        assert!((t[set.pos(1, 0, 0)] + r.x / rn.powi(3)).abs() < 1e-14);
        assert!((t[set.pos(0, 1, 0)] + r.y / rn.powi(3)).abs() < 1e-14);
        // T_{2e_x} = (3x² − r²)/(2 r⁵)
        let want = (3.0 * r.x * r.x - rn * rn) / (2.0 * rn.powi(5));
        assert!((t[set.pos(2, 0, 0)] - want).abs() < 1e-13);
        // T_{e_x+e_y} = 3xy/r⁵
        let want = 3.0 * r.x * r.y / rn.powi(5);
        assert!((t[set.pos(1, 1, 0)] - want).abs() < 1e-13);
    }

    #[test]
    fn matches_numerical_derivatives_to_degree_3() {
        let set = MultiIndexSet::new(3);
        let r = Vec3::new(1.3, -0.7, 2.1);
        let mut t = Vec::new();
        taylor_tensors(&set, r, &mut t);
        for &(x, y, z) in &set.indices {
            let num = numeric_t((x, y, z), r);
            let ana = t[set.pos(x, y, z)];
            let tol = 1e-4 * (1.0 + ana.abs());
            assert!((num - ana).abs() < tol, "T_({x},{y},{z}) analytic {ana} vs numeric {num}");
        }
    }

    #[test]
    fn harmonicity_traces_vanish() {
        // 1/r is harmonic away from 0: the Laplacian of any derivative
        // vanishes, i.e. (a!+..) combination: for |a|=m tensors,
        // Σ_d (a_d+1)(a_d+2) T_{a+2e_d} = 0.
        let set = MultiIndexSet::new(5);
        let r = Vec3::new(0.9, 1.1, -0.4);
        let mut t = Vec::new();
        taylor_tensors(&set, r, &mut t);
        for &(x, y, z) in &set.indices {
            if (x + y + z) as u32 + 2 > set.degree {
                continue;
            }
            let lap = (x as f64 + 1.0) * (x as f64 + 2.0) * t[set.pos(x + 2, y, z)]
                + (y as f64 + 1.0) * (y as f64 + 2.0) * t[set.pos(x, y + 2, z)]
                + (z as f64 + 1.0) * (z as f64 + 2.0) * t[set.pos(x, y, z + 2)];
            assert!(lap.abs() < 1e-10 * (1.0 + t[0].abs()), "trace ({x},{y},{z}) = {lap}");
        }
    }

    #[test]
    fn scaling_law() {
        // T_a(λr) = λ^{-(|a|+1)} T_a(r).
        let set = MultiIndexSet::new(4);
        let r = Vec3::new(0.6, -1.2, 0.8);
        let lam = 2.5;
        let mut t1 = Vec::new();
        let mut t2 = Vec::new();
        taylor_tensors(&set, r, &mut t1);
        taylor_tensors(&set, r * lam, &mut t2);
        for (pos, &(x, y, z)) in set.indices.iter().enumerate() {
            let m = (x + y + z) as i32;
            let want = t1[pos] * lam.powi(-(m + 1));
            assert!((t2[pos] - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
    }
}
