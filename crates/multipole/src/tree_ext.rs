//! Multipole-augmented trees.
//!
//! [`MultipoleTree`] attaches a degree-k [`Expansion`] to every node of a
//! `bhut_tree::Tree` by the standard upward pass — **P2M** at leaves, **M2M**
//! translation and accumulation at internal nodes — and evaluates potentials
//! and forces through the same MAC-driven traversal as the monopole code.
//! Expansions are centered on each node's center of mass, which zeroes the
//! dipole moment and buys one extra order of accuracy for free.

use crate::expansion::Expansion;
use bhut_geom::{Particle, Vec3};
use bhut_tree::group::{gather_group, InteractionBuffers};
use bhut_tree::traverse::{
    accel_kernel, for_each_interaction, for_each_interaction_from, potential_kernel, Interaction,
    TraversalStats,
};
use bhut_tree::{GroupMac, KernelPrecision, Mac, NodeId, Tree};

/// A tree plus per-node multipole expansions of a fixed degree.
#[derive(Debug, Clone)]
pub struct MultipoleTree {
    pub degree: u32,
    /// `expansions[id]` corresponds to `tree.node(id)`; centered at the
    /// node's center of mass.
    pub expansions: Vec<Expansion>,
}

impl MultipoleTree {
    /// Run the upward pass over `tree`. The arena layout guarantees children
    /// have larger indices than their parent, so one reverse sweep suffices.
    pub fn new(tree: &Tree, particles: &[Particle], degree: u32) -> Self {
        let mut expansions: Vec<Option<Expansion>> = vec![None; tree.len()];
        for id in (0..tree.len()).rev() {
            let node = tree.node(id as u32);
            let exp = if node.is_leaf() {
                Expansion::from_particles(
                    node.com,
                    degree,
                    tree.particles_under(id as u32)
                        .iter()
                        .map(|&pi| (particles[pi as usize].pos, particles[pi as usize].mass)),
                )
            } else {
                let mut acc = Expansion::zero(node.com, degree);
                for c in tree.children_of(id as u32) {
                    let child =
                        expansions[c as usize].as_ref().expect("children processed before parent");
                    acc.add_assign(&child.translate(node.com));
                }
                acc
            };
            expansions[id] = Some(exp);
        }
        MultipoleTree { degree, expansions: expansions.into_iter().map(Option::unwrap).collect() }
    }

    /// Potential and acceleration at `point` using degree-k expansions for
    /// MAC-accepted nodes and exact (softened) kernels for leaf particles.
    pub fn eval(
        &self,
        tree: &Tree,
        particles: &[Particle],
        point: Vec3,
        skip_id: Option<u32>,
        mac: &impl Mac,
        eps: f64,
    ) -> (f64, Vec3, TraversalStats) {
        let mut phi = 0.0;
        let mut acc = Vec3::ZERO;
        let stats = for_each_interaction(tree, particles, point, skip_id, mac, |i| match i {
            Interaction::Node(id) => {
                let (p, a) = self.expansions[id as usize].eval(point);
                phi += p;
                acc += a;
            }
            Interaction::Particle(pi) => {
                let p = &particles[pi as usize];
                phi += potential_kernel(point, p.pos, p.mass, eps);
                acc += accel_kernel(point, p.pos, p.mass, eps);
            }
        });
        (phi, acc, stats)
    }

    /// Degree-k grouped evaluation for every particle under `leaf`, via one
    /// shared walk (see [`bhut_tree::group`]). MAC-accepted nodes are
    /// evaluated through their expansions from the shared slab; direct
    /// interactions go through the batched P2P kernel; boundary-straddling
    /// subtrees are replayed per member. Interaction-for-interaction
    /// identical to [`MultipoleTree::eval`] — same stats, same terms, only
    /// the summation order differs.
    #[allow(clippy::too_many_arguments)] // mirrors eval_group_monopole's signature
    pub fn eval_group(
        &self,
        tree: &Tree,
        particles: &[Particle],
        leaf: NodeId,
        mac: &impl GroupMac,
        eps: f64,
        buf: &mut InteractionBuffers,
        emit: impl FnMut(u32, f64, Vec3, u64),
    ) -> TraversalStats {
        gather_group(tree, particles, leaf, mac, buf);
        self.eval_gathered(tree, particles, leaf, mac, eps, buf, emit)
    }

    /// The kernel half of [`MultipoleTree::eval_group`]: evaluate every
    /// member of `leaf` against slabs already filled by
    /// [`bhut_tree::group::gather_group`] for that same leaf. Splitting the
    /// walk from the kernels lets callers time the two phases separately.
    #[allow(clippy::too_many_arguments)] // mirrors eval_group's signature
    pub fn eval_gathered(
        &self,
        tree: &Tree,
        particles: &[Particle],
        leaf: NodeId,
        mac: &impl GroupMac,
        eps: f64,
        buf: &InteractionBuffers,
        emit: impl FnMut(u32, f64, Vec3, u64),
    ) -> TraversalStats {
        self.eval_gathered_masked(
            tree,
            particles,
            leaf,
            mac,
            eps,
            KernelPrecision::default(),
            buf,
            None,
            emit,
        )
    }

    /// [`MultipoleTree::eval_gathered`] restricted to an active subset:
    /// members with `active[pi] == false` are skipped entirely while the
    /// shared slabs keep every source. `None` evaluates all members through
    /// the identical code path (see
    /// [`bhut_tree::group::eval_gathered_monopole_masked`]).
    ///
    /// `precision` applies to the P2P slab half only; the degree-k expansion
    /// evaluations and the mixed-frontier replay always run in scalar f64
    /// (expansion kernels are short polynomial loops per node — they are not
    /// slab-shaped, so vectorizing them is not worth diverging their
    /// rounding).
    #[allow(clippy::too_many_arguments)] // mirrors eval_gathered + mask
    pub fn eval_gathered_masked(
        &self,
        tree: &Tree,
        particles: &[Particle],
        leaf: NodeId,
        mac: &impl GroupMac,
        eps: f64,
        precision: KernelPrecision,
        buf: &InteractionBuffers,
        active: Option<&[bool]>,
        mut emit: impl FnMut(u32, f64, Vec3, u64),
    ) -> TraversalStats {
        let mut stats = TraversalStats::default();
        if tree.is_empty() {
            return stats;
        }
        let n_members = tree.particles_under(leaf).len();
        if n_members == 0 {
            return stats;
        }
        let shared_p2n = buf.node_ids.len() as u64;
        let shared_p2p = buf.px.len() as u64 - buf.self_in_p2p as u64;
        for k in 0..n_members {
            let pi = tree.particles_under(leaf)[k];
            if let Some(mask) = active {
                if !mask[pi as usize] {
                    continue;
                }
            }
            let p = &particles[pi as usize];
            let (mut acc, mut phi) = buf.eval_p2p(p.pos, p.id, eps, precision);
            for &id in &buf.node_ids {
                let (ph, a) = self.expansions[id as usize].eval(p.pos);
                phi += ph;
                acc += a;
            }
            let mut member = TraversalStats {
                p2n: shared_p2n,
                p2p: shared_p2p,
                mac_tests: buf.shared_mac_tests,
            };
            for &root in &buf.mixed {
                let st =
                    for_each_interaction_from(tree, root, particles, p.pos, Some(p.id), mac, |i| {
                        match i {
                            Interaction::Node(id) => {
                                let (ph, a) = self.expansions[id as usize].eval(p.pos);
                                phi += ph;
                                acc += a;
                            }
                            Interaction::Particle(qi) => {
                                let q = &particles[qi as usize];
                                phi += potential_kernel(p.pos, q.pos, q.mass, eps);
                                acc += accel_kernel(p.pos, q.pos, q.mass, eps);
                            }
                        }
                    });
                member.merge(st);
            }
            emit(pi, phi, acc, member.interactions());
            stats.merge(member);
        }
        stats
    }

    /// Potentials for every particle in the set (each excluding itself) —
    /// the `x_k` vector of the fractional-error metric (§5.2.2).
    pub fn all_potentials(
        &self,
        tree: &Tree,
        particles: &[Particle],
        mac: &impl Mac,
        eps: f64,
    ) -> (Vec<f64>, TraversalStats) {
        let mut stats = TraversalStats::default();
        let phis = particles
            .iter()
            .map(|p| {
                let (phi, _, st) = self.eval(tree, particles, p.pos, Some(p.id), mac, eps);
                stats.merge(st);
                phi
            })
            .collect();
        (phis, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};
    use bhut_tree::direct;
    use bhut_tree::{build, BarnesHutMac, BuildParams};

    const EPS: f64 = 0.0;

    #[test]
    fn upward_pass_root_mass() {
        let set = uniform_cube(200, 1.0, 1);
        let t = build::build(&set.particles, BuildParams::default());
        let mt = MultipoleTree::new(&t, &set.particles, 3);
        assert!((mt.expansions[0].mass() - set.total_mass()).abs() < 1e-12);
        // First moments about the COM vanish (dipole-free centering).
        let e = &mt.expansions[0];
        let set_idx = crate::multiindex::MultiIndexSet::new(3);
        for (x, y, z) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            let m1 = e.moments[set_idx.pos(x, y, z)];
            assert!(m1.abs() < 1e-9, "dipole {m1}");
        }
    }

    #[test]
    fn higher_degree_reduces_fractional_error() {
        let set = plummer(PlummerSpec { n: 1200, seed: 11, ..Default::default() });
        let t = build::build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.8);
        let exact = direct::all_potentials_direct(&set.particles, EPS);
        let mut prev = f64::INFINITY;
        for k in [0u32, 2, 4] {
            let mt = MultipoleTree::new(&t, &set.particles, k);
            let (phis, _) = mt.all_potentials(&t, &set.particles, &mac, EPS);
            let err = direct::fractional_error(&phis, &exact);
            assert!(err < prev, "degree {k}: {err} !< {prev}");
            prev = err;
        }
        assert!(prev < 2e-3, "degree-4 error too high: {prev}");
    }

    #[test]
    fn monopole_degree_zero_matches_com_traversal() {
        let set = uniform_cube(300, 1.0, 2);
        let t = build::build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.7);
        let mt = MultipoleTree::new(&t, &set.particles, 0);
        for p in set.iter().take(20) {
            let (phi, _, _) = mt.eval(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
            let (phi_mono, _) =
                bhut_tree::potential_at(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
            assert!((phi - phi_mono).abs() < 1e-12 * phi_mono.abs());
        }
    }

    #[test]
    fn forces_follow_potential_gradient() {
        let set = uniform_cube(150, 1.0, 3);
        let t = build::build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.6);
        let mt = MultipoleTree::new(&t, &set.particles, 4);
        let exact = direct::all_accels_direct(&set.particles, EPS);
        let approx: Vec<_> = set
            .particles
            .iter()
            .map(|p| mt.eval(&t, &set.particles, p.pos, Some(p.id), &mac, EPS).2)
            .collect();
        let _ = approx; // stats not needed; recompute accels below
        let accels: Vec<_> = set
            .particles
            .iter()
            .map(|p| mt.eval(&t, &set.particles, p.pos, Some(p.id), &mac, EPS).1)
            .collect();
        let err = direct::fractional_error_vec(&accels, &exact);
        assert!(err < 5e-3, "force error {err}");
    }

    #[test]
    fn grouped_eval_matches_per_particle_eval() {
        use bhut_tree::group::leaf_schedule;
        let set = plummer(PlummerSpec { n: 600, seed: 21, ..Default::default() });
        let eps = 1e-4;
        for degree in [0u32, 3] {
            for alpha in [0.67, 1.0] {
                let t = build::build(&set.particles, BuildParams::with_leaf_capacity(8));
                let mt = MultipoleTree::new(&t, &set.particles, degree);
                let mac = BarnesHutMac::new(alpha);
                let mut buf = InteractionBuffers::new();
                let mut grouped = TraversalStats::default();
                let mut covered = 0usize;
                for leaf in leaf_schedule(&t) {
                    let st = mt.eval_group(
                        &t,
                        &set.particles,
                        leaf,
                        &mac,
                        eps,
                        &mut buf,
                        |pi, phi, acc, inter| {
                            covered += 1;
                            let p = &set.particles[pi as usize];
                            let (phi_ref, acc_ref, st_ref) =
                                mt.eval(&t, &set.particles, p.pos, Some(p.id), &mac, eps);
                            assert_eq!(inter, st_ref.interactions());
                            assert!((phi - phi_ref).abs() <= 1e-12 * phi_ref.abs().max(1.0));
                            assert!(acc.dist(acc_ref) <= 1e-12 * acc_ref.norm().max(1.0));
                        },
                    );
                    grouped.merge(st);
                }
                assert_eq!(covered, set.len());
                let mut reference = TraversalStats::default();
                for p in set.iter() {
                    let (_, _, st) = mt.eval(&t, &set.particles, p.pos, Some(p.id), &mac, eps);
                    reference.merge(st);
                }
                assert_eq!(grouped, reference, "degree {degree} alpha {alpha}");
            }
        }
    }

    #[test]
    fn stats_independent_of_degree() {
        // The traversal shape depends only on the MAC, not on k — that is
        // why function-shipping communication stays constant as k grows
        // (§4.2.2).
        let set = uniform_cube(400, 1.0, 4);
        let t = build::build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.7);
        let counts: Vec<u64> = [1u32, 3, 5]
            .iter()
            .map(|&k| {
                let mt = MultipoleTree::new(&t, &set.particles, k);
                let (_, st) = mt.all_potentials(&t, &set.particles, &mac, EPS);
                st.interactions()
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
    }
}
