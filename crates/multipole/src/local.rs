//! Local (Taylor) expansions and the FMM translation operators.
//!
//! §2 of the paper: "FMM computes the potential due to a cluster of
//! particles at the center of well-separated clusters… FMM, therefore, uses
//! cluster–cluster interactions in addition to particle–cluster
//! interactions", and §6 notes the parallel formulations extend to FMM.
//! This module supplies the missing algebra:
//!
//! * [`LocalExpansion`] — the potential of *distant* sources represented as
//!   a polynomial around a center: `Φ(x) = Σ_b L_b (x − z)^b`.
//! * **M2L** ([`LocalExpansion::from_multipole`]) — convert a distant multipole
//!   into a local expansion:
//!   `L_b = − Σ_a (−1)^{|a|} C(a+b, a) M_a T_{a+b}(z_L − z_M)`.
//! * **L2L** ([`LocalExpansion::translate`]) — re-center a local expansion:
//!   `L'_b = Σ_{c ≥ b} C(c, b) (z − z')^{c−b} L_c`.
//! * **L2P** ([`LocalExpansion::eval`]) — evaluate potential and
//!   acceleration at a target.

use crate::expansion::Expansion;
use crate::multiindex::{binomial, MultiIndexSet};
use crate::taylor::taylor_tensors;
use bhut_geom::Vec3;

/// A degree-k local (Taylor) expansion of the far-field potential about
/// `center`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalExpansion {
    pub center: Vec3,
    pub degree: u32,
    /// Coefficients `L_b`, indexed per [`MultiIndexSet::new`]`(degree)`.
    pub coeffs: Vec<f64>,
}

impl LocalExpansion {
    /// The zero local expansion.
    pub fn zero(center: Vec3, degree: u32) -> Self {
        LocalExpansion { center, degree, coeffs: vec![0.0; MultiIndexSet::count(degree)] }
    }

    /// **M2L**: the local expansion (about `center`) of the potential of a
    /// well-separated multipole cluster. Accuracy requires
    /// `|center − m.center|` to exceed the sum of both cluster radii.
    pub fn from_multipole(m: &Expansion, center: Vec3, degree: u32) -> Self {
        let mset = MultiIndexSet::new(m.degree);
        let lset = MultiIndexSet::new(degree);
        // Need tensors to combined order |a| + |b| ≤ m.degree + degree.
        let tset = MultiIndexSet::new(m.degree + degree);
        let r = center - m.center;
        let mut t = Vec::new();
        taylor_tensors(&tset, r, &mut t);
        let mut coeffs = vec![0.0; lset.len()];
        for (bi, &(bx, by, bz)) in lset.indices.iter().enumerate() {
            let mut acc = 0.0;
            for (ai, &(ax, ay, az)) in mset.indices.iter().enumerate() {
                let ma = m.moments[ai];
                if ma == 0.0 {
                    continue;
                }
                let sign = if (ax + ay + az) % 2 == 0 { 1.0 } else { -1.0 };
                let c = binomial((ax + bx) as u32, ax as u32)
                    * binomial((ay + by) as u32, ay as u32)
                    * binomial((az + bz) as u32, az as u32);
                acc += sign * ma * c * t[tset.pos(ax + bx, ay + by, az + bz)];
            }
            coeffs[bi] = -acc;
        }
        LocalExpansion { center, degree, coeffs }
    }

    /// **L2L**: the same field expanded about `new_center` (exact for
    /// polynomials — no additional truncation error).
    pub fn translate(&self, new_center: Vec3) -> LocalExpansion {
        let set = MultiIndexSet::new(self.degree);
        let s = new_center - self.center;
        let mut out = vec![0.0; set.len()];
        for (bi, &(bx, by, bz)) in set.indices.iter().enumerate() {
            let mut acc = 0.0;
            for (ci, &(cx, cy, cz)) in set.indices.iter().enumerate() {
                if cx < bx || cy < by || cz < bz {
                    continue;
                }
                let c = binomial(cx as u32, bx as u32)
                    * binomial(cy as u32, by as u32)
                    * binomial(cz as u32, bz as u32);
                let shift = s.x.powi((cx - bx) as i32)
                    * s.y.powi((cy - by) as i32)
                    * s.z.powi((cz - bz) as i32);
                acc += c * shift * self.coeffs[ci];
            }
            out[bi] = acc;
        }
        LocalExpansion { center: new_center, degree: self.degree, coeffs: out }
    }

    /// Accumulate another local expansion with the same center and degree.
    pub fn add_assign(&mut self, other: &LocalExpansion) {
        assert_eq!(self.degree, other.degree, "degree mismatch");
        assert!(self.center.dist(other.center) == 0.0, "center mismatch");
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a += b;
        }
    }

    /// **L2P**: potential and acceleration at `x`.
    pub fn eval(&self, x: Vec3) -> (f64, Vec3) {
        let set = MultiIndexSet::new(self.degree);
        let d = x - self.center;
        let mut phi = 0.0;
        let mut grad = Vec3::ZERO;
        for (bi, &(bx, by, bz)) in set.indices.iter().enumerate() {
            let l = self.coeffs[bi];
            if l == 0.0 {
                continue;
            }
            let px = d.x.powi(bx as i32);
            let py = d.y.powi(by as i32);
            let pz = d.z.powi(bz as i32);
            phi += l * px * py * pz;
            if bx > 0 {
                grad.x += l * bx as f64 * d.x.powi(bx as i32 - 1) * py * pz;
            }
            if by > 0 {
                grad.y += l * by as f64 * px * d.y.powi(by as i32 - 1) * pz;
            }
            if bz > 0 {
                grad.z += l * bz as f64 * px * py * d.z.powi(bz as i32 - 1);
            }
        }
        (phi, -grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{uniform_cube, Particle};

    fn cluster(n: usize, seed: u64) -> Vec<Particle> {
        uniform_cube(n, 1.0, seed).particles
    }

    fn direct_phi(ps: &[Particle], x: Vec3) -> f64 {
        ps.iter().map(|p| -p.mass / p.pos.dist(x)).sum()
    }

    #[test]
    fn m2l_matches_direct_when_well_separated() {
        let ps = cluster(60, 1);
        let m = Expansion::from_particles(Vec3::splat(0.5), 6, ps.iter().map(|p| (p.pos, p.mass)));
        // local box far from the sources
        let z = Vec3::new(8.0, 7.5, 8.5);
        let l = LocalExpansion::from_multipole(&m, z, 6);
        for dx in [-0.3, 0.0, 0.4] {
            let x = z + Vec3::new(dx, 0.2, -0.1);
            let want = direct_phi(&ps, x);
            let (phi, _) = l.eval(x);
            assert!((phi - want).abs() < 1e-6 * want.abs(), "{phi} vs {want} at dx={dx}");
        }
    }

    #[test]
    fn m2l_error_decreases_with_degree() {
        let ps = cluster(40, 2);
        let z = Vec3::new(6.0, 6.0, 6.0);
        let x = z + Vec3::splat(0.3);
        let want = direct_phi(&ps, x);
        let mut prev = f64::INFINITY;
        for k in [0u32, 2, 4, 6] {
            let m =
                Expansion::from_particles(Vec3::splat(0.5), k, ps.iter().map(|p| (p.pos, p.mass)));
            let l = LocalExpansion::from_multipole(&m, z, k);
            let err = (l.eval(x).0 - want).abs();
            assert!(err < prev, "k={k}: {err} !< {prev}");
            prev = err;
        }
    }

    #[test]
    fn l2l_is_exact() {
        let ps = cluster(50, 3);
        let m = Expansion::from_particles(Vec3::splat(0.5), 5, ps.iter().map(|p| (p.pos, p.mass)));
        let z = Vec3::new(7.0, 6.0, 8.0);
        let l = LocalExpansion::from_multipole(&m, z, 5);
        let z2 = z + Vec3::new(0.4, -0.2, 0.1);
        let l2 = l.translate(z2);
        // translation of a polynomial is exact: same values everywhere
        for d in [Vec3::ZERO, Vec3::splat(0.2), Vec3::new(-0.3, 0.1, 0.2)] {
            let x = z2 + d;
            let (a, ga) = l.eval(x);
            let (b, gb) = l2.eval(x);
            assert!((a - b).abs() < 1e-10 * a.abs().max(1e-12), "{a} vs {b}");
            assert!(ga.dist(gb) < 1e-9 * ga.norm().max(1e-12));
        }
    }

    #[test]
    fn l2p_gradient_is_negative_grad_phi() {
        let ps = cluster(30, 4);
        let m = Expansion::from_particles(Vec3::splat(0.5), 4, ps.iter().map(|p| (p.pos, p.mass)));
        let z = Vec3::new(5.0, 5.0, 5.0);
        let l = LocalExpansion::from_multipole(&m, z, 4);
        let x = z + Vec3::new(0.2, -0.3, 0.15);
        let (_, acc) = l.eval(x);
        let h = 1e-6;
        let g = Vec3::new(
            (l.eval(x + Vec3::new(h, 0.0, 0.0)).0 - l.eval(x - Vec3::new(h, 0.0, 0.0)).0)
                / (2.0 * h),
            (l.eval(x + Vec3::new(0.0, h, 0.0)).0 - l.eval(x - Vec3::new(0.0, h, 0.0)).0)
                / (2.0 * h),
            (l.eval(x + Vec3::new(0.0, 0.0, h)).0 - l.eval(x - Vec3::new(0.0, 0.0, h)).0)
                / (2.0 * h),
        );
        assert!(acc.dist(-g) < 1e-6 * g.norm().max(1e-12));
    }

    #[test]
    fn add_assign_accumulates_fields() {
        let ps = cluster(40, 5);
        let (left, right) = ps.split_at(20);
        let z = Vec3::new(6.5, 6.0, 7.0);
        let ml =
            Expansion::from_particles(Vec3::splat(0.4), 4, left.iter().map(|p| (p.pos, p.mass)));
        let mr =
            Expansion::from_particles(Vec3::splat(0.6), 4, right.iter().map(|p| (p.pos, p.mass)));
        let mut l = LocalExpansion::from_multipole(&ml, z, 4);
        l.add_assign(&LocalExpansion::from_multipole(&mr, z, 4));
        let x = z + Vec3::splat(0.1);
        let want = direct_phi(&ps, x);
        assert!((l.eval(x).0 - want).abs() < 1e-4 * want.abs());
    }

    #[test]
    #[should_panic(expected = "center mismatch")]
    fn add_assign_rejects_center_mismatch() {
        let mut a = LocalExpansion::zero(Vec3::ZERO, 2);
        let b = LocalExpansion::zero(Vec3::ONE, 2);
        a.add_assign(&b);
    }
}
