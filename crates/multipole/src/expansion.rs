//! Cartesian multipole expansions: P2M, M2M, and evaluation.
//!
//! An [`Expansion`] of degree `k` about center `c` stores the raw moments
//! `M_a = Σ_j m_j (y_j − c)^a` for `|a| ≤ k`. The potential at a target `x`
//! with `r = x − c` is
//!
//! ```text
//! Φ(x) = − Σ_a (−1)^{|a|} M_a T_a(r),      T_a = (1/a!) ∂^a (1/|r|)
//! ```
//!
//! and the acceleration is its negative gradient, obtained from the same
//! tensor table extended one degree higher:
//! `∂_i T_a = (a_i + 1) T_{a+e_i}`.

use crate::multiindex::{binomial, MultiIndexSet};
use crate::taylor::taylor_tensors;
use bhut_geom::Vec3;

/// A degree-k Cartesian multipole expansion of a mass cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    pub center: Vec3,
    pub degree: u32,
    /// Raw moments `M_a`, indexed per [`MultiIndexSet::new`]`(degree)`.
    pub moments: Vec<f64>,
}

impl Expansion {
    /// The zero expansion about `center`.
    pub fn zero(center: Vec3, degree: u32) -> Self {
        Expansion { center, degree, moments: vec![0.0; MultiIndexSet::count(degree)] }
    }

    /// Number of real coefficients a degree-k expansion carries — the
    /// message size a data-shipping scheme pays per node (§4.2.1).
    pub fn num_coeffs(degree: u32) -> usize {
        MultiIndexSet::count(degree)
    }

    /// **P2M**: moments of a set of `(position, mass)` sources about
    /// `center`.
    pub fn from_particles(
        center: Vec3,
        degree: u32,
        sources: impl IntoIterator<Item = (Vec3, f64)>,
    ) -> Self {
        let set = MultiIndexSet::new(degree);
        let mut moments = vec![0.0; set.len()];
        for (pos, mass) in sources {
            let d = pos - center;
            // powers d^a accumulated in graded order: d^a = d^{a-e_d} * d_d
            // (we just recompute with powi; degrees are small).
            for (idx, &(ax, ay, az)) in set.indices.iter().enumerate() {
                moments[idx] +=
                    mass * d.x.powi(ax as i32) * d.y.powi(ay as i32) * d.z.powi(az as i32);
            }
        }
        Expansion { center, degree, moments }
    }

    /// Total mass (the zeroth moment).
    #[inline]
    pub fn mass(&self) -> f64 {
        self.moments[0]
    }

    /// **M2M**: the same cluster's expansion about `new_center`:
    /// `M'_b = Σ_{a ≤ b} C(b, a) (c − c')^{b−a} M_a`.
    pub fn translate(&self, new_center: Vec3) -> Expansion {
        let set = MultiIndexSet::new(self.degree);
        let s = self.center - new_center;
        let mut out = vec![0.0; set.len()];
        for (bi, &(bx, by, bz)) in set.indices.iter().enumerate() {
            let mut acc = 0.0;
            for ax in 0..=bx {
                for ay in 0..=by {
                    for az in 0..=bz {
                        let c = binomial(bx as u32, ax as u32)
                            * binomial(by as u32, ay as u32)
                            * binomial(bz as u32, az as u32);
                        let shift = s.x.powi((bx - ax) as i32)
                            * s.y.powi((by - ay) as i32)
                            * s.z.powi((bz - az) as i32);
                        acc += c * shift * self.moments[set.pos(ax, ay, az)];
                    }
                }
            }
            out[bi] = acc;
        }
        Expansion { center: new_center, degree: self.degree, moments: out }
    }

    /// Accumulate another expansion with the *same* center and degree
    /// (merging children after M2M).
    ///
    /// # Panics
    /// If centers or degrees differ.
    pub fn add_assign(&mut self, other: &Expansion) {
        assert_eq!(self.degree, other.degree, "degree mismatch");
        assert!(self.center.dist(other.center) == 0.0, "center mismatch");
        for (a, b) in self.moments.iter_mut().zip(&other.moments) {
            *a += b;
        }
    }

    /// **M2P**: potential and acceleration at `x`. The target must be
    /// outside the cluster for the series to converge; callers enforce that
    /// through the MAC.
    pub fn eval(&self, x: Vec3) -> (f64, Vec3) {
        use crate::multiindex::with_cached_set;
        with_cached_set(self.degree + 1, |set| {
            let r = x - self.center;
            // thread-local scratch for the tensor table
            use std::cell::RefCell;
            thread_local! {
                static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
            }
            SCRATCH.with(|scratch| {
                let mut t = scratch.borrow_mut();
                taylor_tensors(set, r, &mut t);
                let mut phi = 0.0;
                let mut grad = Vec3::ZERO;
                // Graded order makes the degree-k index set a prefix of the
                // (k+1) set, so the outer table serves both roles (and
                // avoids a nested borrow of the thread-local cache).
                let prefix = MultiIndexSet::count(self.degree);
                for (idx, &(ax, ay, az)) in set.indices[..prefix].iter().enumerate() {
                    let m = self.moments[idx];
                    if m == 0.0 {
                        continue;
                    }
                    let sign = if (ax + ay + az) % 2 == 0 { 1.0 } else { -1.0 };
                    let ta = t[set.pos(ax, ay, az)];
                    phi -= sign * m * ta;
                    // ∂_i T_a = (a_i + 1) T_{a+e_i}
                    grad.x -= sign * m * (ax as f64 + 1.0) * t[set.pos(ax + 1, ay, az)];
                    grad.y -= sign * m * (ay as f64 + 1.0) * t[set.pos(ax, ay + 1, az)];
                    grad.z -= sign * m * (az as f64 + 1.0) * t[set.pos(ax, ay, az + 1)];
                }
                // a = −∇Φ
                (phi, -grad)
            })
        })
    }

    /// Potential only (cheaper alias of [`Expansion::eval`] when the force is
    /// not needed; still computes the shared tensor table).
    pub fn potential_at(&self, x: Vec3) -> f64 {
        self.eval(x).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{uniform_cube, Particle};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn cluster(n: usize, seed: u64) -> Vec<Particle> {
        uniform_cube(n, 1.0, seed).particles
    }

    fn direct_phi(ps: &[Particle], x: Vec3) -> f64 {
        ps.iter().map(|p| -p.mass / p.pos.dist(x)).sum()
    }

    fn direct_accel(ps: &[Particle], x: Vec3) -> Vec3 {
        let mut a = Vec3::ZERO;
        for p in ps {
            let d = p.pos - x;
            let r2 = d.norm_sq();
            a += d * (p.mass / (r2 * r2.sqrt()));
        }
        a
    }

    #[test]
    fn monopole_matches_point_mass() {
        let ps = cluster(50, 1);
        let com: Vec3 = ps.iter().map(|p| p.pos * p.mass).sum::<Vec3>()
            / ps.iter().map(|p| p.mass).sum::<f64>();
        let e = Expansion::from_particles(com, 0, ps.iter().map(|p| (p.pos, p.mass)));
        let x = Vec3::new(10.0, 3.0, -4.0);
        let (phi, acc) = e.eval(x);
        let m: f64 = ps.iter().map(|p| p.mass).sum();
        let want_phi = -m / com.dist(x);
        assert!((phi - want_phi).abs() < 1e-12 * want_phi.abs());
        let d = com - x;
        let want_acc = d * (m / d.norm_sq().powf(1.5));
        assert!(acc.dist(want_acc) < 1e-12 * want_acc.norm());
    }

    #[test]
    fn error_decreases_with_degree() {
        let ps = cluster(100, 2);
        let center = Vec3::splat(0.5);
        let x = Vec3::new(10.0, 8.0, 9.0); // far field: ratio ≈ 0.06
        let exact = direct_phi(&ps, x);
        let mut prev = f64::INFINITY;
        for k in 0..=5 {
            let e = Expansion::from_particles(center, k, ps.iter().map(|p| (p.pos, p.mass)));
            let err = (e.potential_at(x) - exact).abs();
            assert!(err < prev * 1.01, "degree {k}: {err} !< {prev}");
            prev = err;
        }
        // Degree 5 at this separation is very accurate.
        assert!(prev < 1e-6 * exact.abs(), "residual {prev}");
    }

    #[test]
    fn acceleration_matches_direct_at_high_degree() {
        let ps = cluster(60, 3);
        let center = Vec3::splat(0.5);
        let e = Expansion::from_particles(center, 6, ps.iter().map(|p| (p.pos, p.mass)));
        let x = Vec3::new(-4.0, 1.0, 2.5);
        let (_, acc) = e.eval(x);
        let want = direct_accel(&ps, x);
        assert!(acc.dist(want) < 1e-5 * want.norm(), "{acc:?} vs {want:?}");
    }

    #[test]
    fn acceleration_is_negative_gradient() {
        // finite-difference check of ∇Φ from eval().
        let ps = cluster(40, 4);
        let e = Expansion::from_particles(Vec3::splat(0.5), 4, ps.iter().map(|p| (p.pos, p.mass)));
        let x = Vec3::new(2.7, -1.9, 3.3);
        let (_, acc) = e.eval(x);
        let h = 1e-6;
        let dx = (e.potential_at(x + Vec3::new(h, 0.0, 0.0))
            - e.potential_at(x - Vec3::new(h, 0.0, 0.0)))
            / (2.0 * h);
        let dy = (e.potential_at(x + Vec3::new(0.0, h, 0.0))
            - e.potential_at(x - Vec3::new(0.0, h, 0.0)))
            / (2.0 * h);
        let dz = (e.potential_at(x + Vec3::new(0.0, 0.0, h))
            - e.potential_at(x - Vec3::new(0.0, 0.0, h)))
            / (2.0 * h);
        let grad = Vec3::new(dx, dy, dz);
        assert!(acc.dist(-grad) < 1e-6 * grad.norm().max(1e-9), "{acc:?} vs {:?}", -grad);
    }

    #[test]
    fn m2m_is_exact() {
        // Translating the expansion must not change its predictions (up to
        // roundoff): the Cartesian M2M is exact, unlike truncated spherical
        // translations.
        let ps = cluster(80, 5);
        let e1 = Expansion::from_particles(Vec3::splat(0.4), 4, ps.iter().map(|p| (p.pos, p.mass)));
        let e2 = e1.translate(Vec3::new(1.0, -0.3, 0.2));
        let direct2 = Expansion::from_particles(e2.center, 4, ps.iter().map(|p| (p.pos, p.mass)));
        for (a, b) in e2.moments.iter().zip(&direct2.moments) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Truncated series about different centers differ only in the
        // truncation tail; both must sit within it of the true potential.
        let x = Vec3::new(5.0, 5.0, 5.0);
        let exact = direct_phi(&ps, x);
        assert!((e1.potential_at(x) - exact).abs() < 1e-4 * exact.abs());
        assert!((e2.potential_at(x) - exact).abs() < 1e-4 * exact.abs());
    }

    #[test]
    fn m2m_composition_equals_single_hop() {
        let ps = cluster(30, 6);
        let e = Expansion::from_particles(Vec3::ZERO, 3, ps.iter().map(|p| (p.pos, p.mass)));
        let via = e.translate(Vec3::splat(0.3)).translate(Vec3::splat(1.0));
        let direct = e.translate(Vec3::splat(1.0));
        for (a, b) in via.moments.iter().zip(&direct.moments) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn add_assign_merges_clusters() {
        let ps = cluster(40, 7);
        let (left, right) = ps.split_at(20);
        let c = Vec3::splat(0.5);
        let mut ea = Expansion::from_particles(c, 3, left.iter().map(|p| (p.pos, p.mass)));
        let eb = Expansion::from_particles(c, 3, right.iter().map(|p| (p.pos, p.mass)));
        ea.add_assign(&eb);
        let whole = Expansion::from_particles(c, 3, ps.iter().map(|p| (p.pos, p.mass)));
        for (a, b) in ea.moments.iter().zip(&whole.moments) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    #[should_panic(expected = "degree mismatch")]
    fn add_assign_rejects_degree_mismatch() {
        let mut a = Expansion::zero(Vec3::ZERO, 2);
        let b = Expansion::zero(Vec3::ZERO, 3);
        a.add_assign(&b);
    }

    #[test]
    fn random_translations_property() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10 {
            let ps = cluster(20, rng.gen());
            let k = rng.gen_range(0..5);
            let c1 = Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), 0.0);
            let c2 = Vec3::new(0.0, rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            let e = Expansion::from_particles(c1, k, ps.iter().map(|p| (p.pos, p.mass)));
            let t = e.translate(c2);
            let d = Expansion::from_particles(c2, k, ps.iter().map(|p| (p.pos, p.mass)));
            for (a, b) in t.moments.iter().zip(&d.moments) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
            }
        }
    }
}
