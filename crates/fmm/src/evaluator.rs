//! The end-to-end FMM evaluator: upward pass → dual traversal → M2L
//! scatter → downward L2L pass → L2P + near-field direct sums.

use crate::dual::{dual_traversal, SeparationCriterion};
use bhut_geom::{Particle, Vec3};
use bhut_multipole::{LocalExpansion, MultipoleTree};
use bhut_tree::traverse::{accel_kernel, potential_kernel};
use bhut_tree::{NodeId, Tree, NIL};

/// FMM parameters.
#[derive(Debug, Clone, Copy)]
pub struct FmmConfig {
    /// Expansion degree for both multipole and local series.
    pub degree: u32,
    /// Cell–cell separation parameter.
    pub theta: f64,
    /// Plummer softening for the near field.
    pub eps: f64,
}

impl Default for FmmConfig {
    fn default() -> Self {
        FmmConfig { degree: 4, theta: 0.7, eps: 0.0 }
    }
}

/// Work counters for one evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FmmStats {
    /// Cluster–cluster translations performed.
    pub m2l: u64,
    /// Particle–particle near-field interactions.
    pub p2p: u64,
}

/// A ready-to-evaluate FMM operator over one particle configuration.
pub struct Fmm {
    pub config: FmmConfig,
    pub stats: FmmStats,
    locals: Vec<LocalExpansion>,
    /// Leaf pairs needing direct summation, from the dual traversal.
    near_field: Option<Vec<(NodeId, NodeId)>>,
}

impl Fmm {
    /// Run the upward pass + dual traversal + M2L + downward pass; after
    /// construction, [`Fmm::potentials_and_accels`] harvests per-particle
    /// values.
    pub fn new(tree: &Tree, particles: &[Particle], config: FmmConfig) -> Fmm {
        let mut stats = FmmStats::default();
        let n_nodes = tree.len();
        let mut locals: Vec<LocalExpansion> = (0..n_nodes)
            .map(|id| {
                let center = if n_nodes == 0 { Vec3::ZERO } else { tree.node(id as u32).com };
                LocalExpansion::zero(center, config.degree)
            })
            .collect();
        if n_nodes == 0 {
            return Fmm { config, stats, locals, near_field: None };
        }

        // Upward pass: multipoles about each node's COM.
        let mt = MultipoleTree::new(tree, particles, config.degree);

        // Dual traversal.
        let lists = dual_traversal(tree, SeparationCriterion::new(config.theta));

        // M2L scatter: source multipole → target local.
        for &(target, source) in &lists.m2l {
            let l = LocalExpansion::from_multipole(
                &mt.expansions[source as usize],
                locals[target as usize].center,
                config.degree,
            );
            locals[target as usize].add_assign(&l);
            stats.m2l += 1;
        }

        // Downward pass: push parents' locals into children (arena order
        // guarantees parents precede children).
        for id in 0..n_nodes as u32 {
            let node = tree.node(id);
            if node.is_leaf() {
                continue;
            }
            let parent_local = locals[id as usize].clone();
            for &c in &node.children {
                if c != NIL {
                    let shifted = parent_local.translate(locals[c as usize].center);
                    locals[c as usize].add_assign(&shifted);
                }
            }
        }

        // Near-field pair count for stats (evaluation happens on harvest).
        for &(a, b) in &lists.p2p {
            let ca = tree.node(a).count() as u64;
            let cb = tree.node(b).count() as u64;
            stats.p2p += if a == b { ca * (ca - 1) } else { 2 * ca * cb };
        }

        Fmm { config, stats, locals, near_field: Some(lists.p2p) }
    }

    /// Potential and acceleration for every particle.
    pub fn potentials_and_accels(
        &self,
        tree: &Tree,
        particles: &[Particle],
    ) -> (Vec<f64>, Vec<Vec3>) {
        let n = particles.len();
        let mut phis = vec![0.0f64; n];
        let mut accs = vec![Vec3::ZERO; n];
        if tree.is_empty() {
            return (phis, accs);
        }
        // L2P at leaves.
        for id in 0..tree.len() as u32 {
            let node = tree.node(id);
            if !node.is_leaf() {
                continue;
            }
            let local = &self.locals[id as usize];
            for &pi in tree.particles_under(id) {
                let p = &particles[pi as usize];
                let (phi, acc) = local.eval(p.pos);
                phis[pi as usize] += phi;
                accs[pi as usize] += acc;
            }
        }
        // Near field.
        if let Some(pairs) = &self.near_field {
            for &(a, b) in pairs {
                let pa = tree.particles_under(a);
                let pb = tree.particles_under(b);
                for &i in pa {
                    let xi = particles[i as usize].pos;
                    for &j in pb {
                        if i == j {
                            continue;
                        }
                        let q = &particles[j as usize];
                        phis[i as usize] += potential_kernel(xi, q.pos, q.mass, self.config.eps);
                        accs[i as usize] += accel_kernel(xi, q.pos, q.mass, self.config.eps);
                        if a != b {
                            let p = &particles[i as usize];
                            phis[j as usize] +=
                                potential_kernel(q.pos, xi, p.mass, self.config.eps);
                            accs[j as usize] += accel_kernel(q.pos, xi, p.mass, self.config.eps);
                        }
                    }
                }
            }
        }
        (phis, accs)
    }

    /// Local expansion of a node (diagnostics).
    pub fn local(&self, id: NodeId) -> &LocalExpansion {
        &self.locals[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};
    use bhut_tree::build::{build, BuildParams};
    use bhut_tree::direct;

    fn setup(n: usize, seed: u64) -> (bhut_geom::ParticleSet, Tree) {
        let set = uniform_cube(n, 1.0, seed);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(8));
        (set, t)
    }

    #[test]
    fn fmm_matches_direct() {
        let (set, t) = setup(500, 1);
        let fmm = Fmm::new(&t, &set.particles, FmmConfig { degree: 6, theta: 0.6, eps: 0.0 });
        let (phis, accs) = fmm.potentials_and_accels(&t, &set.particles);
        let exact_phi = direct::all_potentials_direct(&set.particles, 0.0);
        let exact_acc = direct::all_accels_direct(&set.particles, 0.0);
        let e_phi = direct::fractional_error(&phis, &exact_phi);
        let e_acc = direct::fractional_error_vec(&accs, &exact_acc);
        assert!(e_phi < 1e-4, "potential error {e_phi}");
        assert!(e_acc < 1e-3, "force error {e_acc}");
    }

    #[test]
    fn error_decreases_with_degree() {
        let (set, t) = setup(400, 2);
        let exact = direct::all_potentials_direct(&set.particles, 0.0);
        let mut prev = f64::INFINITY;
        for degree in [1u32, 3, 5] {
            let fmm = Fmm::new(&t, &set.particles, FmmConfig { degree, theta: 0.7, eps: 0.0 });
            let (phis, _) = fmm.potentials_and_accels(&t, &set.particles);
            let err = direct::fractional_error(&phis, &exact);
            assert!(err < prev, "degree {degree}: {err} !< {prev}");
            prev = err;
        }
    }

    #[test]
    fn fmm_work_scales_linearly() {
        // Total work (m2l + p2p) per particle should stay roughly flat as n
        // grows — the O(n) signature vs Barnes–Hut's O(n log n).
        let per = |n: usize| {
            let (set, t) = setup(n, 3);
            let fmm = Fmm::new(&t, &set.particles, FmmConfig::default());
            (fmm.stats.m2l + fmm.stats.p2p) as f64 / n as f64
        };
        let small = per(500);
        let large = per(4000);
        assert!(large < small * 2.5, "work per particle grew too fast: {small} -> {large}");
    }

    #[test]
    fn plummer_fmm_accuracy() {
        let set = plummer(PlummerSpec { n: 1500, seed: 5, ..Default::default() });
        let t = build(&set.particles, BuildParams::default());
        let fmm = Fmm::new(&t, &set.particles, FmmConfig { degree: 4, theta: 0.6, eps: 0.0 });
        let (phis, _) = fmm.potentials_and_accels(&t, &set.particles);
        let exact = direct::all_potentials_direct(&set.particles, 0.0);
        let err = direct::fractional_error(&phis, &exact);
        assert!(err < 5e-3, "clustered-data FMM error {err}");
    }

    #[test]
    fn empty_input() {
        let t = build(&[], BuildParams::default());
        let fmm = Fmm::new(&t, &[], FmmConfig::default());
        let (phis, accs) = fmm.potentials_and_accels(&t, &[]);
        assert!(phis.is_empty() && accs.is_empty());
        assert_eq!(fmm.stats.m2l, 0);
    }
}
