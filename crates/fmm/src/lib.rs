//! A fast multipole method (FMM) on the Barnes–Hut oct-tree — the extension
//! the paper's §2 and §6 describe: "FMM… uses cluster–cluster interactions
//! in addition to particle–cluster interactions" and "the techniques can be
//! extended to FMM".
//!
//! The evaluator reuses the whole substrate: the `bhut-tree` oct-tree, the
//! Cartesian multipole algebra of `bhut-multipole` (P2M/M2M for the upward
//! pass, M2L/L2L/L2P for the downward pass). Interaction pairs come from a
//! *dual tree traversal* with a symmetric separation criterion: two cells
//! may interact via M2L iff
//!
//! ```text
//! (side_a + side_b)² < θ² · dist(center_a, center_b)²
//! ```
//!
//! otherwise the larger cell is split; pairs of leaves fall back to direct
//! particle–particle summation. This keeps the far field `O(n)` cluster
//! work while never evaluating a truncated series inside its convergence
//! radius.

pub mod dual;
pub mod evaluator;

pub use dual::{dual_traversal, InteractionLists, SeparationCriterion};
pub use evaluator::{Fmm, FmmConfig, FmmStats};
