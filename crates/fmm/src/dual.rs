//! Dual tree traversal: build the M2L and near-field interaction lists.

use bhut_geom::Aabb;
use bhut_tree::{NodeId, Tree, NIL};

/// The symmetric multipole acceptance criterion for cell–cell interactions.
#[derive(Debug, Clone, Copy)]
pub struct SeparationCriterion {
    /// The opening angle θ: smaller = stricter = more near-field work and
    /// higher accuracy at fixed degree.
    pub theta: f64,
}

impl SeparationCriterion {
    pub fn new(theta: f64) -> Self {
        assert!(theta > 0.0, "theta must be positive");
        SeparationCriterion { theta }
    }

    /// True when cells `a` and `b` are well separated.
    #[inline]
    pub fn accept(&self, a: &Aabb, b: &Aabb) -> bool {
        let s = a.side() + b.side();
        let d2 = a.center().dist_sq(b.center());
        s * s < self.theta * self.theta * d2
    }
}

/// The outcome of a dual traversal.
#[derive(Debug, Clone, Default)]
pub struct InteractionLists {
    /// Well-separated pairs `(target, source)`: source's multipole is
    /// translated into target's local expansion. Both orientations are
    /// emitted (the lists are for a scatter-style downward pass).
    pub m2l: Vec<(NodeId, NodeId)>,
    /// Leaf pairs needing direct particle–particle summation, `(a, b)` with
    /// `a <= b` (the self pair `(l, l)` appears once).
    pub p2p: Vec<(NodeId, NodeId)>,
}

/// Walk the tree against itself and classify every pair.
pub fn dual_traversal(tree: &Tree, crit: SeparationCriterion) -> InteractionLists {
    let mut lists = InteractionLists::default();
    if tree.is_empty() {
        return lists;
    }
    let mut stack: Vec<(NodeId, NodeId)> = vec![(0, 0)];
    while let Some((a, b)) = stack.pop() {
        let na = tree.node(a);
        let nb = tree.node(b);
        if na.count() == 0 || nb.count() == 0 {
            continue;
        }
        if a == b {
            // A cell against itself: recurse into child pairs.
            if na.is_leaf() {
                lists.p2p.push((a, a));
            } else {
                let children: Vec<NodeId> =
                    na.children.iter().copied().filter(|&c| c != NIL).collect();
                for (i, &ca) in children.iter().enumerate() {
                    for &cb in &children[i..] {
                        stack.push((ca, cb));
                    }
                }
            }
            continue;
        }
        if crit.accept(&na.cell, &nb.cell) {
            lists.m2l.push((a, b));
            lists.m2l.push((b, a));
            continue;
        }
        // Not separated: split the larger cell (by side, then by count).
        let split_a = match na.cell.side().partial_cmp(&nb.cell.side()).expect("finite sides") {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => na.count() >= nb.count(),
        };
        let (split, keep, split_is_a) =
            if split_a && !na.is_leaf() { (na, b, true) } else { (nb, a, false) };
        if split.is_leaf() {
            // Both leaves: direct.
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            lists.p2p.push((lo, hi));
            continue;
        }
        for &c in split.children.iter().rev() {
            if c != NIL {
                if split_is_a {
                    stack.push((c, keep));
                } else {
                    stack.push((keep, c));
                }
            }
        }
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::uniform_cube;
    use bhut_tree::build::{build, BuildParams};
    use std::collections::HashSet;

    fn tree(n: usize) -> (bhut_geom::ParticleSet, Tree) {
        let set = uniform_cube(n, 1.0, 7);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(8));
        (set, t)
    }

    #[test]
    fn criterion_basics() {
        let crit = SeparationCriterion::new(1.0);
        let a = Aabb::cube(bhut_geom::Vec3::ZERO, 1.0);
        let far = Aabb::cube(bhut_geom::Vec3::new(10.0, 0.0, 0.0), 1.0);
        let near = Aabb::cube(bhut_geom::Vec3::new(1.5, 0.0, 0.0), 1.0);
        assert!(crit.accept(&a, &far));
        assert!(!crit.accept(&a, &near));
        // symmetric
        assert_eq!(crit.accept(&a, &far), crit.accept(&far, &a));
    }

    /// Every ordered pair of particles is covered exactly once by the union
    /// of M2L pairs and P2P pairs — the completeness invariant of FMM.
    #[test]
    fn lists_cover_every_pair_exactly_once() {
        let (set, t) = tree(300);
        let lists = dual_traversal(&t, SeparationCriterion::new(0.8));
        // count coverage of ordered particle pairs (i, j), i != j
        let n = set.len();
        let mut covered = vec![0u8; n * n];
        let particles_under = |id: NodeId| -> Vec<u32> { t.particles_under(id).to_vec() };
        for &(ta, sb) in &lists.m2l {
            for &i in &particles_under(ta) {
                for &j in &particles_under(sb) {
                    covered[i as usize * n + j as usize] += 1;
                }
            }
        }
        for &(a, b) in &lists.p2p {
            for &i in &particles_under(a) {
                for &j in &particles_under(b) {
                    if i != j {
                        covered[i as usize * n + j as usize] += 1;
                        if a != b {
                            covered[j as usize * n + i as usize] += 1;
                        }
                    }
                }
            }
            if a == b {
                // self pair: both orders counted above? no — count the
                // reverse order too for i<j within one leaf
            }
        }
        // self-leaf pairs covered both directions:
        // (the loop above adds (i,j) for all i≠j within the leaf, both
        // orders, because i and j each range over the full leaf)
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(
                    covered[i * n + j],
                    1,
                    "pair ({i},{j}) covered {} times",
                    covered[i * n + j]
                );
            }
        }
    }

    #[test]
    fn m2l_pairs_are_symmetric_and_separated() {
        let (_, t) = tree(500);
        let crit = SeparationCriterion::new(0.9);
        let lists = dual_traversal(&t, crit);
        let set: HashSet<(NodeId, NodeId)> = lists.m2l.iter().copied().collect();
        for &(a, b) in &lists.m2l {
            assert!(set.contains(&(b, a)), "asymmetric pair ({a},{b})");
            assert!(crit.accept(&t.node(a).cell, &t.node(b).cell));
        }
    }

    #[test]
    fn stricter_theta_means_more_p2p() {
        let (_, t) = tree(800);
        let loose = dual_traversal(&t, SeparationCriterion::new(1.2));
        let strict = dual_traversal(&t, SeparationCriterion::new(0.5));
        let direct_pairs = |l: &InteractionLists| -> usize { l.p2p.len() };
        assert!(direct_pairs(&strict) > direct_pairs(&loose));
    }

    #[test]
    fn empty_tree() {
        let t = build(&[], BuildParams::default());
        let lists = dual_traversal(&t, SeparationCriterion::new(1.0));
        assert!(lists.m2l.is_empty() && lists.p2p.is_empty());
    }
}
