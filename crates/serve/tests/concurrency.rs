//! Concurrency contracts of the epoch store and the server:
//!
//! * pinning is torn-swap-free — a reader never observes a half-published
//!   epoch, under a publisher racing many pinning readers;
//! * a pinned epoch is never freed (its contents stay self-consistent for
//!   as long as the pin is held, across arbitrarily many publishes);
//! * a live server under concurrent clients answers every accepted
//!   request (zero dropped in-flight batches at shutdown);
//! * (proptest) query results are identical across generations when the
//!   particle state is unchanged — the generation counter is metadata, not
//!   an input to the math.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Barrier};

use bhut_geom::{Particle, Vec3};
use bhut_serve::{
    EpochStore, FieldQuery, KernelPrecision, QueryKind, QueryTarget, ServeClient, ServeConfig,
    Server,
};
use bhut_tree::build::build;
use bhut_tree::BuildParams;
use proptest::prelude::*;

/// A cloud whose every particle carries `tag` as its mass: any mix of
/// masses inside one epoch is a torn snapshot.
fn tagged_cloud(n: usize, tag: u64) -> Vec<Particle> {
    let mut state = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| Particle::new(i as u32, tag as f64, Vec3::new(next(), next(), next()), Vec3::ZERO))
        .collect()
}

#[test]
fn publish_while_pinning_is_torn_free_and_pins_block_retirement() {
    const READERS: usize = 4;
    const GENERATIONS: u64 = 200;
    let store = Arc::new(EpochStore::new());
    // Generation g is published with every mass == g, so a reader can
    // detect any torn or stale-mixed view with a full scan.
    let first = tagged_cloud(64, 1);
    store.publish(build(&first, BuildParams::default()), first, 0.6, 1e-4);

    let start = Arc::new(Barrier::new(READERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..READERS {
        let store = Arc::clone(&store);
        let start = Arc::clone(&start);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            start.wait();
            let mut held: Option<(u64, Arc<bhut_serve::TreeEpoch>)> = None;
            let mut pins = 0u64;
            while !stop.load(SeqCst) {
                let epoch = store.pin().expect("store is published");
                pins += 1;
                let tag = epoch.generation as f64;
                // Torn-swap detector: every particle of the snapshot must
                // carry the generation's tag mass.
                assert!(
                    epoch.particles.iter().all(|p| p.mass == tag),
                    "generation {} exposed a torn particle array",
                    epoch.generation
                );
                assert_eq!(
                    epoch.particles.len() as u64 * epoch.generation,
                    epoch.tree.node(0).mass.round() as u64,
                    "tree and particles of generation {} disagree",
                    epoch.generation
                );
                // Hold one long-lived pin and re-validate it every
                // iteration: if the publisher ever freed or reused a pinned
                // epoch, this scan would read recycled memory.
                match &held {
                    None => held = Some((epoch.generation, epoch)),
                    Some((gen, old)) => {
                        let tag = *gen as f64;
                        assert!(
                            old.particles.iter().all(|p| p.mass == tag),
                            "pinned generation {gen} mutated while held"
                        );
                    }
                }
            }
            pins
        }));
    }

    start.wait();
    for g in 2..=GENERATIONS {
        let p = tagged_cloud(64, g);
        store.publish(build(&p, BuildParams::default()), p, 0.6, 1e-4);
    }
    stop.store(true, SeqCst);
    let total_pins: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_pins >= READERS as u64, "readers made progress");
    assert_eq!(store.generation(), GENERATIONS);
    // The current epoch and any still-held Arcs are alive; everything else
    // must have been retired (the readers dropped their pins on join).
    assert!(store.retired() < GENERATIONS, "current epoch never retires");
    assert!(
        store.retired() >= GENERATIONS.saturating_sub(8),
        "only the ring + pinned epochs may remain live, got {} retired of {}",
        store.retired(),
        GENERATIONS
    );
}

#[test]
fn live_server_under_concurrent_clients_drops_nothing() {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 25;
    let store = Arc::new(EpochStore::new());
    let particles = tagged_cloud(256, 1);
    store.publish(build(&particles, BuildParams::default()), particles.clone(), 0.6, 1e-4);

    // A small queue so backpressure actually fires under the barrage.
    let cfg = ServeConfig { workers: 2, queue_cap: 4, batch_points: 64, ..Default::default() };
    let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&store), cfg).unwrap();
    let addr = server.local_addr().unwrap();

    let start = Arc::new(Barrier::new(CLIENTS + 1));
    let publisher_stop = Arc::new(AtomicBool::new(false));
    // Keep publishing while clients hammer the server, so batches race
    // epoch swaps the whole time.
    let publisher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&publisher_stop);
        let particles = particles.clone();
        std::thread::spawn(move || {
            let mut g = 1u64;
            while !stop.load(SeqCst) {
                g += 1;
                let mut p = particles.clone();
                for q in &mut p {
                    q.mass = g as f64;
                }
                store.publish(build(&p, BuildParams::default()), p, 0.6, 1e-4);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let start = Arc::clone(&start);
        clients.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect_tcp(addr).unwrap();
            start.wait();
            let mut answered = 0u64;
            for k in 0..QUERIES_PER_CLIENT {
                let targets: Vec<QueryTarget> = (0..8)
                    .map(|j| {
                        let t = (c * 31 + k * 7 + j) as f64 * 0.01;
                        (Vec3::new(t.fract(), (t * 1.7).fract(), (t * 2.3).fract()), u32::MAX)
                    })
                    .collect();
                let reply = client
                    .query(QueryKind::Field, KernelPrecision::F64, &targets)
                    .expect("every query eventually answered");
                assert_eq!(reply.samples.len(), targets.len());
                assert!(reply.generation >= 1);
                answered += 1;
            }
            (answered, client.retries)
        }));
    }
    start.wait();
    let mut answered = 0u64;
    let mut retries = 0u64;
    for c in clients {
        let (a, r) = c.join().unwrap();
        // Every rejected client eventually got all its answers — the
        // depth-scaled, jittered retry hints never starve anyone out.
        assert_eq!(a, QUERIES_PER_CLIENT as u64, "client finished all its queries");
        answered += a;
        retries += r;
    }
    publisher_stop.store(true, SeqCst);
    publisher.join().unwrap();

    assert_eq!(answered, (CLIENTS * QUERIES_PER_CLIENT) as u64, "zero dropped queries");
    let stats = server.stop();
    assert_eq!(stats.queue_depth, 0, "shutdown drained the queue");
    assert_eq!(stats.counters.accepted, answered, "accepted == answered (rejects were resent)");
    assert_eq!(
        stats.counters.rejected, retries,
        "every server-side reject surfaced as exactly one client retry"
    );
    assert!(stats.counters.queries >= answered * 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Republishing *unchanged* particle state must give bitwise-identical
    /// query results: the generation number is bookkeeping, not physics.
    #[test]
    fn unchanged_state_gives_identical_results_across_generations(
        points in prop::collection::vec(
            (-1.2f64..1.2, -1.2f64..1.2, -1.2f64..1.2),
            1..40
        ),
        group_size in 1usize..24,
        republishes in 1usize..4,
    ) {
        let particles = tagged_cloud(200, 7);
        let store = EpochStore::new();
        store.publish(build(&particles, BuildParams::default()), particles.clone(), 0.6, 1e-4);
        let first = store.pin().unwrap();
        for _ in 0..republishes {
            store.publish(build(&particles, BuildParams::default()), particles.clone(), 0.6, 1e-4);
        }
        let last = store.pin().unwrap();
        prop_assert_eq!(last.generation, 1 + republishes as u64);

        let targets: Vec<QueryTarget> =
            points.iter().map(|&(x, y, z)| (Vec3::new(x, y, z), u32::MAX)).collect();
        let mut engine = FieldQuery::new(group_size);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        engine.eval(&first, &targets, KernelPrecision::F64, &mut a);
        engine.eval(&last, &targets, KernelPrecision::F64, &mut b);
        for (k, (s, t)) in a.iter().zip(&b).enumerate() {
            prop_assert_eq!(s.acc.x.to_bits(), t.acc.x.to_bits(), "point {} x", k);
            prop_assert_eq!(s.acc.y.to_bits(), t.acc.y.to_bits(), "point {} y", k);
            prop_assert_eq!(s.acc.z.to_bits(), t.acc.z.to_bits(), "point {} z", k);
            prop_assert_eq!(s.phi.to_bits(), t.phi.to_bits(), "point {} phi", k);
        }
    }
}
