//! The service's headline correctness contract: a field query at a
//! particle's position (with that particle's skip id) returns *the
//! simulation's own force* for the step the epoch snapshots — ≤ 1e-12
//! relative for the f64 kernel modes, and within the θ-MAC error envelope
//! for the mixed-precision lanes — including when the simulation itself is
//! running masked (active-set) force sweeps.

use std::sync::Arc;

use bhut_geom::{Particle, Vec3};
use bhut_serve::{EpochStore, FieldQuery, KernelPrecision, QueryTarget};
use bhut_threads::{EvalMode, Partitioning, ThreadConfig, ThreadSim};
use bhut_timestep::ActiveSet;

fn cloud(n: usize, seed: u64) -> Vec<Particle> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            // Two off-center clumps plus a diffuse halo: deep tree, plenty
            // of mixed-MAC frontier.
            let c = if i % 3 == 0 { Vec3::new(0.6, 0.1, -0.4) } else { Vec3::new(-0.5, -0.2, 0.3) };
            let r = if i % 7 == 0 { 1.0 } else { 0.15 };
            Particle::new(
                i as u32,
                0.2 + next(),
                c + Vec3::new(
                    (next() * 2.0 - 1.0) * r,
                    (next() * 2.0 - 1.0) * r,
                    (next() * 2.0 - 1.0) * r,
                ),
                Vec3::ZERO,
            )
        })
        .collect()
}

fn config(threads: usize, precision: KernelPrecision) -> ThreadConfig {
    ThreadConfig {
        threads,
        alpha: 0.6,
        degree: 0,
        eps: 1e-4,
        leaf_capacity: 16,
        partitioning: Partitioning::MortonZones,
        eval_mode: EvalMode::Grouped,
        precision,
        ..ThreadConfig::default()
    }
}

/// Run the simulation force sweep and the query engine over the same
/// epoch; return (sweep accels, sweep potentials, query samples).
fn sweep_and_query(
    n: usize,
    threads: usize,
    precision: KernelPrecision,
    group_size: usize,
) -> (Vec<Vec3>, Vec<f64>, Vec<bhut_serve::FieldSample>) {
    let particles = cloud(n, 42);
    let mut sim = ThreadSim::new(config(threads, precision));
    let result = sim.compute_forces(&particles);

    let store = EpochStore::new();
    let tree = sim.build_tree(&particles);
    store.publish(tree, particles.clone(), 0.6, 1e-4);
    let epoch = store.pin().expect("published");

    let targets: Vec<QueryTarget> = particles.iter().map(|p| (p.pos, p.id)).collect();
    let mut engine = FieldQuery::new(group_size);
    let mut out = Vec::new();
    engine.eval(&epoch, &targets, precision, &mut out);
    (result.accels, result.potentials, out)
}

#[test]
fn query_at_particle_positions_matches_force_sweep_f64() {
    for &(threads, group) in &[(1usize, 16usize), (2, 16), (2, 7)] {
        let (accels, potentials, out) = sweep_and_query(1500, threads, KernelPrecision::F64, group);
        for k in 0..accels.len() {
            let scale = accels[k].norm().max(1.0);
            assert!(
                (out[k].acc - accels[k]).norm() <= 1e-12 * scale,
                "threads={threads} group={group} particle {k}: query {:?} vs sweep {:?}",
                out[k].acc,
                accels[k]
            );
            assert!(
                (out[k].phi - potentials[k]).abs() <= 1e-12 * potentials[k].abs().max(1.0),
                "threads={threads} group={group} particle {k} potential"
            );
        }
    }
}

#[test]
fn query_at_particle_positions_matches_force_sweep_scalar() {
    let (accels, potentials, out) = sweep_and_query(800, 2, KernelPrecision::ScalarF64, 16);
    for k in 0..accels.len() {
        assert!((out[k].acc - accels[k]).norm() <= 1e-12 * accels[k].norm().max(1.0));
        assert!((out[k].phi - potentials[k]).abs() <= 1e-12 * potentials[k].abs().max(1.0));
    }
}

#[test]
fn mixed_precision_queries_stay_inside_the_theta_envelope() {
    // The f64 sweep is the reference; the MixedF32 query path must land
    // within the same lane-roundoff envelope the simulation's own mixed
    // kernels are held to (far below the θ-MAC discretization error).
    let particles = cloud(1200, 42);
    let mut sim = ThreadSim::new(config(2, KernelPrecision::F64));
    let reference = sim.compute_forces(&particles);

    let store = EpochStore::new();
    store.publish(sim.build_tree(&particles), particles.clone(), 0.6, 1e-4);
    let epoch = store.pin().unwrap();
    let targets: Vec<QueryTarget> = particles.iter().map(|p| (p.pos, p.id)).collect();
    let mut engine = FieldQuery::new(16);
    let mut out = Vec::new();
    engine.eval(&epoch, &targets, KernelPrecision::MixedF32, &mut out);
    for (k, sample) in out.iter().enumerate() {
        let scale = reference.accels[k].norm().max(1e-9);
        let rel = (sample.acc - reference.accels[k]).norm() / scale;
        assert!(
            rel <= 1e-4,
            "particle {k}: mixed-precision query drifted {rel:.2e} from the f64 sweep"
        );
    }
}

#[test]
fn active_set_sweeps_agree_with_queries_for_the_active_particles() {
    let particles = cloud(900, 42);
    let mut sim = ThreadSim::new(config(2, KernelPrecision::F64));
    // Activate a third of the particles; the tree still contains all of
    // them as sources, exactly like a block-timestep substep.
    let mask: Vec<bool> = (0..particles.len()).map(|i| i % 3 == 0).collect();
    let active = ActiveSet::from_mask(mask.clone());
    let result = sim.compute_forces_active(&particles, &active);

    let store = EpochStore::new();
    store.publish(sim.build_tree(&particles), particles.clone(), 0.6, 1e-4);
    let epoch = store.pin().unwrap();
    let targets: Vec<QueryTarget> = particles
        .iter()
        .enumerate()
        .filter(|(i, _)| mask[*i])
        .map(|(_, p)| (p.pos, p.id))
        .collect();
    let mut engine = FieldQuery::new(16);
    let mut out = Vec::new();
    engine.eval(&epoch, &targets, KernelPrecision::F64, &mut out);
    let active_indices: Vec<usize> = (0..particles.len()).filter(|&i| mask[i]).collect();
    for (k, &i) in active_indices.iter().enumerate() {
        let scale = result.accels[i].norm().max(1.0);
        assert!(
            (out[k].acc - result.accels[i]).norm() <= 1e-12 * scale,
            "active particle {i}: query matches masked sweep"
        );
    }
}

#[test]
fn epoch_snapshot_is_immune_to_later_particle_mutation() {
    // The service contract: an epoch pins *state*, not references into the
    // simulation's mutable arrays. Mutating the source particles after
    // publish must not change query results.
    let mut particles = cloud(400, 42);
    let mut sim = ThreadSim::new(config(1, KernelPrecision::F64));
    let reference = sim.compute_forces(&particles);

    let store = Arc::new(EpochStore::new());
    store.publish(sim.build_tree(&particles), particles.clone(), 0.6, 1e-4);
    let epoch = store.pin().unwrap();
    let targets: Vec<QueryTarget> = particles.iter().map(|p| (p.pos, p.id)).collect();

    // Scramble the live array (what the next simulation step would do).
    for p in &mut particles {
        p.pos += Vec3::new(10.0, -3.0, 7.0);
        p.mass *= 2.0;
    }

    let mut engine = FieldQuery::new(16);
    let mut out = Vec::new();
    engine.eval(&epoch, &targets, KernelPrecision::F64, &mut out);
    for (k, sample) in out.iter().enumerate() {
        assert!(
            (sample.acc - reference.accels[k]).norm()
                <= 1e-12 * reference.accels[k].norm().max(1.0),
            "epoch {k} unaffected by post-publish mutation"
        );
    }
}
