//! Wire protocol for the query service, layered on the shared
//! length-prefixed framing in [`bhut_wire`].
//!
//! All integers and floats are little-endian, matching the S14 exchange
//! format. One request/reply pair per query id; a connection may have at
//! most one request in flight per id, but ids from one connection need not
//! be consecutive (the client allocates them).
//!
//! | tag | payload |
//! |-----|---------|
//! | [`TAG_QUERY`] | `id:u64, kind:u8, precision:u8, count:u32, count × (x,y,z: f64, skip: u32)` |
//! | [`TAG_RESULT`] | `id:u64, generation:u64, count:u32, count × (ax,ay,az,phi: f64)` |
//! | [`TAG_RETRY`] | `id:u64, retry_after_ms:u32` — queue full; resend after the hint |
//! | [`TAG_STATS`] | empty — request a [`crate::ServeStats`] snapshot |
//! | [`TAG_STATS_REPLY`] | UTF-8 JSON of [`crate::ServeStats`] |
//! | [`TAG_ERROR`] | `id:u64`, UTF-8 message — malformed or unsupported request |

use bhut_geom::Vec3;
use bhut_tree::{KernelPrecision, QueryTarget};
use bhut_wire::{get_f64, get_u32, get_u64, put_f64, put_u32, put_u64};

use crate::engine::FieldSample;

pub const TAG_QUERY: u16 = 0x5351;
pub const TAG_RESULT: u16 = 0x5352;
pub const TAG_RETRY: u16 = 0x5353;
pub const TAG_STATS: u16 = 0x5354;
pub const TAG_STATS_REPLY: u16 = 0x5355;
pub const TAG_ERROR: u16 = 0x5356;

/// Bytes per encoded query point: position (3 × f64) + skip id.
pub const POINT_BYTES: usize = 3 * 8 + 4;
/// Bytes per encoded sample: acceleration (3 × f64) + potential.
pub const SAMPLE_BYTES: usize = 4 * 8;

/// What field the client wants at each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Gravitational acceleration and potential (a full force-sweep walk).
    Field,
    /// Local mass-density estimate (deepest-cell mass over volume).
    Density,
}

fn kind_to_u8(k: QueryKind) -> u8 {
    match k {
        QueryKind::Field => 0,
        QueryKind::Density => 1,
    }
}

fn kind_from_u8(b: u8) -> Result<QueryKind, String> {
    match b {
        0 => Ok(QueryKind::Field),
        1 => Ok(QueryKind::Density),
        other => Err(format!("unknown query kind {other}")),
    }
}

fn precision_to_u8(p: KernelPrecision) -> u8 {
    match p {
        KernelPrecision::ScalarF64 => 0,
        KernelPrecision::F64 => 1,
        KernelPrecision::MixedF32 => 2,
    }
}

fn precision_from_u8(b: u8) -> Result<KernelPrecision, String> {
    match b {
        0 => Ok(KernelPrecision::ScalarF64),
        1 => Ok(KernelPrecision::F64),
        2 => Ok(KernelPrecision::MixedF32),
        other => Err(format!("unknown kernel precision {other}")),
    }
}

/// A batch of query points sharing one kind and precision.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    pub id: u64,
    pub kind: QueryKind,
    pub precision: KernelPrecision,
    pub points: Vec<QueryTarget>,
}

/// The evaluated batch, tagged with the epoch generation it ran against.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    pub id: u64,
    pub generation: u64,
    pub samples: Vec<FieldSample>,
}

pub fn encode_query(req: &QueryRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 1 + 1 + 4 + req.points.len() * POINT_BYTES);
    put_u64(&mut out, req.id);
    out.push(kind_to_u8(req.kind));
    out.push(precision_to_u8(req.precision));
    put_u32(&mut out, req.points.len() as u32);
    for &(p, skip) in &req.points {
        put_f64(&mut out, p.x);
        put_f64(&mut out, p.y);
        put_f64(&mut out, p.z);
        put_u32(&mut out, skip);
    }
    out
}

pub fn decode_query(bytes: &[u8]) -> Result<QueryRequest, String> {
    const HEAD: usize = 8 + 1 + 1 + 4;
    if bytes.len() < HEAD {
        return Err(format!("query header truncated: {} bytes", bytes.len()));
    }
    let id = get_u64(bytes, 0);
    let kind = kind_from_u8(bytes[8])?;
    let precision = precision_from_u8(bytes[9])?;
    let count = get_u32(bytes, 10) as usize;
    if bytes.len() != HEAD + count * POINT_BYTES {
        return Err(format!(
            "query payload {} bytes, expected {} for {count} points",
            bytes.len(),
            HEAD + count * POINT_BYTES
        ));
    }
    let mut points = Vec::with_capacity(count);
    let mut at = HEAD;
    for _ in 0..count {
        let p = Vec3::new(get_f64(bytes, at), get_f64(bytes, at + 8), get_f64(bytes, at + 16));
        let skip = get_u32(bytes, at + 24);
        points.push((p, skip));
        at += POINT_BYTES;
    }
    Ok(QueryRequest { id, kind, precision, points })
}

pub fn encode_reply(id: u64, generation: u64, samples: &[FieldSample]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 4 + samples.len() * SAMPLE_BYTES);
    put_u64(&mut out, id);
    put_u64(&mut out, generation);
    put_u32(&mut out, samples.len() as u32);
    for s in samples {
        put_f64(&mut out, s.acc.x);
        put_f64(&mut out, s.acc.y);
        put_f64(&mut out, s.acc.z);
        put_f64(&mut out, s.phi);
    }
    out
}

pub fn decode_reply(bytes: &[u8]) -> Result<QueryReply, String> {
    const HEAD: usize = 8 + 8 + 4;
    if bytes.len() < HEAD {
        return Err(format!("reply header truncated: {} bytes", bytes.len()));
    }
    let id = get_u64(bytes, 0);
    let generation = get_u64(bytes, 8);
    let count = get_u32(bytes, 16) as usize;
    if bytes.len() != HEAD + count * SAMPLE_BYTES {
        return Err(format!(
            "reply payload {} bytes, expected {} for {count} samples",
            bytes.len(),
            HEAD + count * SAMPLE_BYTES
        ));
    }
    let mut samples = Vec::with_capacity(count);
    let mut at = HEAD;
    for _ in 0..count {
        samples.push(FieldSample {
            acc: Vec3::new(get_f64(bytes, at), get_f64(bytes, at + 8), get_f64(bytes, at + 16)),
            phi: get_f64(bytes, at + 24),
        });
        at += SAMPLE_BYTES;
    }
    Ok(QueryReply { id, generation, samples })
}

pub fn encode_retry(id: u64, retry_after_ms: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    put_u64(&mut out, id);
    put_u32(&mut out, retry_after_ms);
    out
}

pub fn decode_retry(bytes: &[u8]) -> Result<(u64, u32), String> {
    if bytes.len() != 12 {
        return Err(format!("retry payload {} bytes, expected 12", bytes.len()));
    }
    Ok((get_u64(bytes, 0), get_u32(bytes, 8)))
}

pub fn encode_error(id: u64, msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + msg.len());
    put_u64(&mut out, id);
    out.extend_from_slice(msg.as_bytes());
    out
}

pub fn decode_error(bytes: &[u8]) -> Result<(u64, String), String> {
    if bytes.len() < 8 {
        return Err(format!("error payload {} bytes, expected ≥ 8", bytes.len()));
    }
    Ok((get_u64(bytes, 0), String::from_utf8_lossy(&bytes[8..]).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip_is_bitwise() {
        let req = QueryRequest {
            id: 0xdead_beef_cafe,
            kind: QueryKind::Field,
            precision: KernelPrecision::MixedF32,
            points: vec![
                (Vec3::new(1.5, -2.25, 1e-300), 7),
                (Vec3::new(f64::MIN_POSITIVE, 0.0, -0.0), u32::MAX),
            ],
        };
        let back = decode_query(&encode_query(&req)).unwrap();
        assert_eq!(back.id, req.id);
        assert_eq!(back.kind, req.kind);
        assert_eq!(back.precision, req.precision);
        assert_eq!(back.points.len(), 2);
        for (a, b) in req.points.iter().zip(&back.points) {
            assert_eq!(a.0.x.to_bits(), b.0.x.to_bits());
            assert_eq!(a.0.y.to_bits(), b.0.y.to_bits());
            assert_eq!(a.0.z.to_bits(), b.0.z.to_bits());
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn reply_roundtrip_is_bitwise() {
        let samples = vec![
            FieldSample { acc: Vec3::new(0.1, -0.2, 0.3), phi: -1.75 },
            FieldSample { acc: Vec3::ZERO, phi: 0.0 },
        ];
        let rep = decode_reply(&encode_reply(42, 9, &samples)).unwrap();
        assert_eq!(rep.id, 42);
        assert_eq!(rep.generation, 9);
        for (a, b) in samples.iter().zip(&rep.samples) {
            assert_eq!(a.acc.x.to_bits(), b.acc.x.to_bits());
            assert_eq!(a.phi.to_bits(), b.phi.to_bits());
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_query(&[0u8; 5]).is_err());
        let mut good = encode_query(&QueryRequest {
            id: 1,
            kind: QueryKind::Density,
            precision: KernelPrecision::F64,
            points: vec![(Vec3::ZERO, u32::MAX)],
        });
        good.truncate(good.len() - 1);
        assert!(decode_query(&good).is_err(), "short point array rejected");
        let mut bad_kind = encode_query(&QueryRequest {
            id: 1,
            kind: QueryKind::Field,
            precision: KernelPrecision::F64,
            points: vec![],
        });
        bad_kind[8] = 99;
        assert!(decode_query(&bad_kind).is_err(), "unknown kind rejected");
        assert!(decode_retry(&[0u8; 11]).is_err());
        let (id, ms) = decode_retry(&encode_retry(3, 25)).unwrap();
        assert_eq!((id, ms), (3, 25));
        let (id, msg) = decode_error(&encode_error(8, "bad precision")).unwrap();
        assert_eq!(id, 8);
        assert_eq!(msg, "bad precision");
    }
}
