//! A synchronous client for the query service, with transparent
//! backpressure handling: `TAG_RETRY` responses are retried after the
//! larger of the server's hint and a jittered exponential backoff (the
//! shared [`bhut_wire::Backoff`] schedule), up to a deadline.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use bhut_tree::{KernelPrecision, QueryTarget};
use bhut_wire::{read_frame, write_frame, Backoff};

use crate::proto::{
    decode_error, decode_reply, decode_retry, encode_query, QueryKind, QueryReply, QueryRequest,
    TAG_ERROR, TAG_QUERY, TAG_RESULT, TAG_RETRY, TAG_STATS, TAG_STATS_REPLY,
};

/// How long [`ServeClient::query`] keeps retrying a backpressured request
/// before giving up.
const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

pub struct ServeClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    backoff: Backoff,
    deadline: Duration,
    /// Total `TAG_RETRY` responses absorbed over the connection's lifetime
    /// — the client-visible face of server backpressure.
    pub retries: u64,
}

impl ServeClient {
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let s = TcpStream::connect(addr)?;
        let r = s.try_clone()?;
        Ok(Self::from_halves(Box::new(r), Box::new(s)))
    }

    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Self> {
        let s = UnixStream::connect(path)?;
        let r = s.try_clone()?;
        Ok(Self::from_halves(Box::new(r), Box::new(s)))
    }

    fn from_halves(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Self {
        // Seed the jitter from the socket's address-of-self so concurrent
        // clients desynchronize their retry storms.
        let seed = &reader as *const _ as u64 | 1;
        ServeClient {
            reader,
            writer,
            next_id: 1,
            backoff: Backoff::new(seed),
            deadline: DEFAULT_DEADLINE,
            retries: 0,
        }
    }

    /// Cap the total time spent retrying one backpressured query.
    pub fn set_deadline(&mut self, d: Duration) {
        self.deadline = d;
    }

    /// Evaluate `points` on the server, blocking until the reply arrives.
    /// Backpressure (`TAG_RETRY`) is absorbed internally; an error frame or
    /// an exhausted deadline surfaces as `Err`.
    pub fn query(
        &mut self,
        kind: QueryKind,
        precision: KernelPrecision,
        points: &[QueryTarget],
    ) -> io::Result<QueryReply> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = encode_query(&QueryRequest { id, kind, precision, points: points.to_vec() });
        self.backoff.reset();
        let deadline = Instant::now() + self.deadline;
        loop {
            write_frame(&mut self.writer, TAG_QUERY, &payload)?;
            self.writer.flush()?;
            let (tag, body) = read_frame(&mut self.reader)?;
            match tag {
                TAG_RESULT => {
                    let reply = decode_reply(&body)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    if reply.id == id {
                        return Ok(reply);
                    }
                    // A reply for an older id (should not happen on a
                    // synchronous connection); keep reading.
                }
                TAG_RETRY => {
                    let (_, hint_ms) = decode_retry(&body)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    self.retries += 1;
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "server backpressure outlasted the client deadline",
                        ));
                    }
                    let wait = self
                        .backoff
                        .next_delay(remaining)
                        .max(Duration::from_millis(hint_ms as u64).min(remaining));
                    std::thread::sleep(wait);
                }
                TAG_ERROR => {
                    let (_, msg) = decode_error(&body)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reply tag {other:#x}"),
                    ));
                }
            }
        }
    }

    /// Fetch the server's [`crate::ServeStats`] snapshot as JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        write_frame(&mut self.writer, TAG_STATS, &[])?;
        self.writer.flush()?;
        let (tag, body) = read_frame(&mut self.reader)?;
        if tag != TAG_STATS_REPLY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats reply, got tag {tag:#x}"),
            ));
        }
        String::from_utf8(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
