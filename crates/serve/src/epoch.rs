//! Epoch-pinned tree snapshots: the publish/pin protocol between the
//! simulation loop (single writer) and concurrent query batches (many
//! readers).
//!
//! The design goal is a *lock-free read path*: pinning the current epoch is
//! two atomic RMWs and an `Arc` clone — no mutex, no allocation, no
//! coordination with the publisher. The publisher takes a private mutex
//! (publishes are already serialized by the simulation loop; the lock just
//! makes the store misuse-proof) and never blocks readers.
//!
//! ## Protocol
//!
//! The store keeps a small ring of slots. Each slot holds an
//! `Option<Arc<TreeEpoch>>` plus a pin count; `current` names the slot
//! readers should pin.
//!
//! * **Pin** (reader): load `current`, `fetch_add` the slot's pin count,
//!   then re-load `current`. If it still names the slot, clone the `Arc`
//!   out and unpin; otherwise unpin and retry. The re-check means a reader
//!   only ever dereferences a slot the publisher is *not* mutating: the
//!   publisher writes only slots that are not `current` and have zero pins,
//!   and it flips `current` (release) strictly after the slot's contents
//!   are in place, so a verify that passes happens-after the write.
//! * **Publish** (writer): pick any slot that is neither `current` nor
//!   pinned (spinning across the ring until one frees — with `SLOTS` ≥ 3
//!   this only waits for the nanoseconds a lagging reader needs between its
//!   failed verify and its unpin), drop the slot's previous occupant into
//!   it, then flip `current`. All atomics are `SeqCst`; the total order
//!   makes the pin-then-verify / check-pins-then-write handshake airtight
//!   (a reader whose verify passed holds its pin *visibly* before any
//!   publisher pin-check that could target the slot).
//!
//! Retirement is reference counting: overwriting a slot drops the store's
//! `Arc`; whichever party drops the *last* reference (often a query worker
//! finishing a batch against an old epoch) runs `TreeEpoch::drop`, which
//! bumps the shared retired counter surfaced through
//! [`bhut_obs::ServeCounters`].

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use bhut_geom::Particle;
use bhut_tree::Tree;

/// An immutable snapshot of the simulation state a query evaluates against:
/// the octree, the particle array its leaves index, and the parameters the
/// force sweep would use (so query results are bit-comparable to the
/// simulation's own forces for that step).
pub struct TreeEpoch {
    /// Monotone publish counter; generation `g` corresponds to the tree
    /// built for simulation step `g - 1` (the first publish is 1).
    pub generation: u64,
    pub tree: Tree,
    /// The particle array `tree`'s leaves index into (leaf order lives in
    /// `tree.order`; the array itself keeps the caller's order).
    pub particles: Vec<Particle>,
    /// Barnes–Hut opening parameter the epoch was built under.
    pub alpha: f64,
    /// Plummer softening for the force/potential kernels.
    pub eps: f64,
    /// Bumped when the last reference drops; see [`EpochStore::retired`].
    retired: Option<Arc<AtomicU64>>,
}

impl TreeEpoch {
    /// A standalone epoch (no store); useful for tests and for driving
    /// [`crate::FieldQuery`] directly against a one-off tree.
    pub fn standalone(
        generation: u64,
        tree: Tree,
        particles: Vec<Particle>,
        alpha: f64,
        eps: f64,
    ) -> Self {
        TreeEpoch { generation, tree, particles, alpha, eps, retired: None }
    }
}

impl Drop for TreeEpoch {
    fn drop(&mut self) {
        if let Some(c) = &self.retired {
            c.fetch_add(1, SeqCst);
        }
    }
}

/// Ring size. Three is the minimum for the publisher to always find a free
/// victim (one current, one being read by a straggler, one free); four
/// gives slack for a reader preempted mid-pin.
const SLOTS: usize = 4;

/// `current` value before the first publish.
const NONE: usize = usize::MAX;

struct Slot {
    pins: AtomicUsize,
    epoch: UnsafeCell<Option<Arc<TreeEpoch>>>,
}

/// Single-publisher / many-reader epoch exchange. See the module docs for
/// the protocol and its safety argument.
pub struct EpochStore {
    slots: [Slot; SLOTS],
    /// Index of the slot readers should pin; [`NONE`] until first publish.
    current: AtomicUsize,
    /// Serializes publishers and owns the generation counter.
    publish: Mutex<u64>,
    /// Highest generation published (readable without the lock).
    published: AtomicU64,
    /// Epochs fully released (shared with every [`TreeEpoch`] it vends).
    retired: Arc<AtomicU64>,
}

// SAFETY: the `UnsafeCell`s are only written by the publisher while it can
// prove (pins == 0, slot != current, publish mutex held) that no reader is
// or can start dereferencing the slot, and only read by readers whose
// pin+verify handshake proves the publisher cannot pick the slot as a
// victim. See the module docs.
unsafe impl Sync for EpochStore {}
unsafe impl Send for EpochStore {}

impl Default for EpochStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochStore {
    pub fn new() -> Self {
        EpochStore {
            slots: std::array::from_fn(|_| Slot {
                pins: AtomicUsize::new(0),
                epoch: UnsafeCell::new(None),
            }),
            current: AtomicUsize::new(NONE),
            publish: Mutex::new(0),
            published: AtomicU64::new(0),
            retired: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Publish a new epoch and return its generation. In-flight readers of
    /// older epochs are unaffected; new [`pin`](Self::pin) calls see this
    /// epoch immediately.
    pub fn publish(&self, tree: Tree, particles: Vec<Particle>, alpha: f64, eps: f64) -> u64 {
        let mut gen_guard = self.publish.lock().unwrap();
        *gen_guard += 1;
        let generation = *gen_guard;
        let epoch = Arc::new(TreeEpoch {
            generation,
            tree,
            particles,
            alpha,
            eps,
            retired: Some(Arc::clone(&self.retired)),
        });
        // `current` only changes under the publish lock, so it is stable
        // for the duration of this call.
        let cur = self.current.load(SeqCst);
        let victim = loop {
            let free = (0..SLOTS).find(|&i| i != cur && self.slots[i].pins.load(SeqCst) == 0);
            match free {
                Some(i) => break i,
                // Every non-current slot is momentarily pinned by readers
                // between a failed verify and their unpin; yield and retry.
                None => std::thread::yield_now(),
            }
        };
        // SAFETY: victim != current and pins == 0 under the publish lock;
        // no reader can begin a dereference of this slot until `current`
        // names it again (below), which happens-after this write.
        unsafe {
            *self.slots[victim].epoch.get() = Some(epoch);
        }
        self.current.store(victim, SeqCst);
        self.published.store(generation, SeqCst);
        generation
    }

    /// Pin the current epoch: returns a reference that keeps the epoch
    /// alive (and un-reusable by the publisher) until dropped. `None` until
    /// the first [`publish`](Self::publish). Lock-free; never blocks the
    /// publisher or other readers.
    pub fn pin(&self) -> Option<Arc<TreeEpoch>> {
        loop {
            let cur = self.current.load(SeqCst);
            if cur == NONE {
                return None;
            }
            let slot = &self.slots[cur];
            slot.pins.fetch_add(1, SeqCst);
            if self.current.load(SeqCst) == cur {
                // Verified: the publisher cannot write this slot while our
                // pin is visible, and the epoch it holds is fully
                // published. Clone out and release the slot pin; the Arc
                // itself is the long-lived pin.
                // SAFETY: see module docs — verify-after-pin passed.
                let arc = unsafe { (*slot.epoch.get()).clone() };
                slot.pins.fetch_sub(1, SeqCst);
                if let Some(a) = arc {
                    return Some(a);
                }
                // Unreachable in practice (a current slot is never empty),
                // but loop rather than panic if it ever is.
            } else {
                // Publisher moved on between our load and our pin; retry.
                slot.pins.fetch_sub(1, SeqCst);
            }
        }
    }

    /// Highest generation published so far (0 = none). The *epoch lag* of a
    /// batch is `store.generation() - pinned.generation`.
    pub fn generation(&self) -> u64 {
        self.published.load(SeqCst)
    }

    /// Epochs whose last reference has dropped.
    pub fn retired(&self) -> u64 {
        self.retired.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::Vec3;
    use bhut_tree::{build::build, BuildParams};

    fn particles(n: usize, seed: u64) -> Vec<Particle> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                Particle::new(i as u32, 0.5 + next(), Vec3::new(next(), next(), next()), Vec3::ZERO)
            })
            .collect()
    }

    fn epoch_for(n: usize, seed: u64) -> (Tree, Vec<Particle>) {
        let p = particles(n, seed);
        let tree = build(&p, BuildParams { leaf_capacity: 8, ..Default::default() });
        (tree, p)
    }

    #[test]
    fn pin_before_first_publish_is_none() {
        let store = EpochStore::new();
        assert!(store.pin().is_none());
        assert_eq!(store.generation(), 0);
    }

    #[test]
    fn publish_pin_and_retire() {
        let store = EpochStore::new();
        let (t1, p1) = epoch_for(64, 1);
        assert_eq!(store.publish(t1, p1, 0.5, 1e-4), 1);
        let pinned = store.pin().expect("epoch available");
        assert_eq!(pinned.generation, 1);
        assert_eq!(store.generation(), 1);

        // Publishing two more epochs overwrites other slots; generation 1
        // survives because we hold a reference.
        for s in 2..4u64 {
            let (t, p) = epoch_for(64, s);
            assert_eq!(store.publish(t, p, 0.5, 1e-4), s);
        }
        assert_eq!(pinned.generation, 1, "pinned epoch immutable across publishes");
        assert_eq!(store.pin().unwrap().generation, 3);

        // After dropping our pin, the slot cycle eventually frees gen 1.
        drop(pinned);
        let before = store.retired();
        for s in 4..8u64 {
            let (t, p) = epoch_for(64, s);
            store.publish(t, p, 0.5, 1e-4);
        }
        assert!(store.retired() > before, "old epochs retire once unpinned");
    }

    #[test]
    fn retirement_counts_only_after_last_reference() {
        let store = EpochStore::new();
        let (t, p) = epoch_for(32, 9);
        store.publish(t, p, 0.5, 1e-4);
        let held = store.pin().unwrap();
        // Cycle the ring well past the slot that holds generation 1.
        for s in 0..SLOTS as u64 + 2 {
            let (t, p) = epoch_for(32, 10 + s);
            store.publish(t, p, 0.5, 1e-4);
        }
        let retired_while_held = store.retired();
        drop(held);
        assert_eq!(
            store.retired(),
            retired_while_held + 1,
            "dropping the last pin retires exactly the held epoch"
        );
    }
}
