//! Tree-as-a-service (substrate **S15**): an epoch-pinned batched
//! field-query engine and a concurrent query server over the Barnes–Hut
//! octree.
//!
//! The simulation loop owns tree construction; everything downstream of a
//! finished build is a *read-only* consumer. This crate turns that
//! observation into a service boundary with three layers:
//!
//! * [`epoch`] — immutable [`TreeEpoch`] snapshots (tree + the particle
//!   array it indexes + the MAC/softening parameters it was built under)
//!   published through a lock-free [`EpochStore`]. The simulation publishes
//!   a new epoch per step; in-flight query batches keep evaluating against
//!   the epoch they pinned, and an epoch is retired only when the last pin
//!   drops.
//! * [`engine`] — [`FieldQuery`], a batched evaluator for force, potential
//!   and density at *arbitrary* points (not just particle positions). Query
//!   points are Morton-sorted into pseudo-leaf buckets so each bucket walks
//!   the tree once through the grouped gather/eval machinery
//!   ([`bhut_tree::gather_group_targets`] /
//!   [`bhut_tree::eval_gathered_targets`]), with the same
//!   [`KernelPrecision`] ladder as the simulation sweep.
//! * [`server`]/[`client`] — a std-only threaded front end speaking the
//!   length-prefixed [`bhut_wire`] framing over TCP or Unix sockets. A
//!   bounded queue with reject-with-retry-after backpressure feeds
//!   evaluator workers that coalesce small requests into slab-sized
//!   batches; per-request spans and [`bhut_obs::ServeCounters`] surface
//!   through the S11 [`bhut_obs::StepProfile`] schema.

pub mod client;
pub mod engine;
pub mod epoch;
pub mod proto;
pub mod server;

pub use bhut_tree::{KernelPrecision, QueryTarget};
pub use client::ServeClient;
pub use engine::{FieldQuery, FieldSample};
pub use epoch::{EpochStore, TreeEpoch};
pub use proto::{QueryKind, QueryReply, QueryRequest};
pub use server::{ServeConfig, ServeStats, Server};
