//! The concurrent query server: a std-only threaded front end that speaks
//! the [`crate::proto`] framing over TCP or Unix sockets.
//!
//! ## Architecture
//!
//! ```text
//! acceptor ──▶ per-connection reader threads
//!                   │  decode, admission-check
//!                   ▼
//!            bounded FIFO queue ──▶ evaluator workers (N)
//!             (reject ⇒ TAG_RETRY)     │  coalesce ≤ batch_points,
//!                                      │  pin epoch, FieldQuery::eval
//!                                      ▼
//!                            per-connection writer (mutexed half)
//! ```
//!
//! Backpressure is *reject-with-retry-after*: when the queue is at
//! capacity the reader answers [`crate::proto::TAG_RETRY`] immediately
//! instead of blocking the connection, so a slow evaluator can never wedge
//! the accept path, and clients (see [`crate::ServeClient`]) resend after a
//! jittered backoff. Once a request is *accepted* it is never dropped: on
//! shutdown the workers drain the queue before exiting, and a request that
//! races the shutdown admission check is rejected (told to retry), not
//! silently discarded.
//!
//! Workers coalesce adjacent requests of the same kind and precision into
//! slab-sized batches (≤ `batch_points` points) so many small queries share
//! the Morton sort and grouped walks of one [`FieldQuery::eval`] call. Each
//! batch pins the current [`TreeEpoch`](crate::TreeEpoch) for exactly its own duration; the
//! *epoch lag* (publishes that happened while the batch ran) is surfaced
//! through [`ServeCounters`].

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use bhut_obs::{now, phase, Counters, ServeCounters, Span, StepProfile};
use bhut_tree::QueryTarget;
use bhut_wire::{write_frame, MAX_FRAME};
use serde::{Deserialize, Serialize};

use crate::engine::{FieldQuery, FieldSample};
use crate::epoch::EpochStore;
use crate::proto::{
    decode_query, encode_error, encode_reply, encode_retry, QueryKind, TAG_ERROR, TAG_QUERY,
    TAG_RESULT, TAG_RETRY, TAG_STATS, TAG_STATS_REPLY,
};

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Evaluator worker threads.
    pub workers: usize,
    /// Max requests admitted but not yet evaluated; beyond this the server
    /// answers `TAG_RETRY`.
    pub queue_cap: usize,
    /// Coalescing target: a worker keeps merging queued same-shape requests
    /// into one evaluation batch until it holds this many points.
    pub batch_points: usize,
    /// Pseudo-leaf bucket size for [`FieldQuery`].
    pub group_size: usize,
    /// Base retry hint (milliseconds) sent with `TAG_RETRY`. The wire hint
    /// scales with current queue depth and is jittered per reject so a
    /// burst of turned-away clients does not come back in lockstep.
    pub retry_after_ms: u32,
    /// Socket read timeout; bounds how fast readers notice a shutdown.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            batch_points: 4096,
            group_size: 16,
            retry_after_ms: 5,
            read_timeout_ms: 50,
        }
    }
}

/// A point-in-time view of the service, also served over the wire as JSON
/// in reply to `TAG_STATS`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeStats {
    pub counters: ServeCounters,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Latest published epoch generation.
    pub generation: u64,
}

/// One admitted request, parked until a worker picks it up.
struct Job {
    id: u64,
    kind: QueryKind,
    precision: bhut_tree::KernelPrecision,
    points: Vec<QueryTarget>,
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
}

/// Cap on retained spans so a long-lived server's profile stays bounded.
const SPAN_CAP: usize = 4096;

/// Lock `m`, recovering the inner value if a panicking holder poisoned it.
///
/// Every critical section in this module leaves its guarded state
/// consistent before any operation that could panic (counters are plain
/// integer updates, the queue is push/pop only), so continuing with the
/// inner value is sound — and the stats/stop paths must keep answering
/// even after a worker thread has died mid-update.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Compute the backpressure retry hint for one reject.
///
/// The configured base is stretched by up to 2× base per full queue of
/// depth (so a deeply backed-up server asks clients to stay away longer),
/// and a per-reject salt adds up to one base of jitter so concurrent
/// rejects fan out over time instead of retrying in lockstep. Always ≥ 1 ms.
fn retry_hint_ms(base: u32, depth: usize, cap: usize, salt: u64) -> u32 {
    let base = u64::from(base.max(1));
    let load =
        if cap == 0 { 0 } else { base.saturating_mul(2).saturating_mul(depth as u64) / cap as u64 };
    // splitmix64-style spread of the monotone salt into jitter bits.
    let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let jitter = (z ^ (z >> 31)) % (base + 1);
    base.saturating_add(load).saturating_add(jitter).min(u64::from(u32::MAX)) as u32
}

struct Shared {
    cfg: ServeConfig,
    store: Arc<EpochStore>,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    counters: Mutex<ServeCounters>,
    per_worker: Mutex<Vec<Counters>>,
    spans: Mutex<Vec<Span>>,
    batch_seq: AtomicU64,
    /// Monotone per-reject counter; salts the retry-hint jitter.
    reject_seq: AtomicU64,
    started: f64,
}

impl Shared {
    /// Scaled, de-synchronized retry hint for one reject at `depth`.
    fn retry_hint(&self, depth: usize) -> u32 {
        let salt = self.reject_seq.fetch_add(1, SeqCst);
        retry_hint_ms(self.cfg.retry_after_ms, depth, self.cfg.queue_cap, salt)
    }

    fn record_span(&self, worker: usize, seq: u64, name: &str, start: f64, end: f64) {
        let mut spans = lock(&self.spans);
        if spans.len() < SPAN_CAP {
            spans.push(Span::new(worker, seq, name, start - self.started, end - self.started));
        }
    }

    fn stats(&self) -> ServeStats {
        let mut counters = *lock(&self.counters);
        counters.epochs_published = self.store.generation();
        counters.epochs_retired = self.store.retired();
        ServeStats {
            counters,
            queue_depth: lock(&self.queue).len() as u64,
            generation: self.store.generation(),
        }
    }
}

/// The running service. Dropping without [`stop`](Server::stop) leaks the
/// listener thread until process exit; call `stop` for an orderly drain.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

enum AnyListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

type Halves = (Box<dyn Read + Send>, Box<dyn Write + Send>);

impl AnyListener {
    fn accept_halves(&self, timeout: Duration) -> io::Result<Option<Halves>> {
        match self {
            AnyListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(timeout))?;
                    let r = s.try_clone()?;
                    Ok(Some((Box::new(r), Box::new(s))))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            AnyListener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(timeout))?;
                    let r = s.try_clone()?;
                    Ok(Some((Box::new(r), Box::new(s))))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Server {
    /// Serve on a TCP listener. Bind to port 0 to let the OS pick; the
    /// resolved address is available via [`local_addr`](Server::local_addr).
    pub fn bind_tcp(
        addr: impl ToSocketAddrs,
        store: Arc<EpochStore>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut s = Self::start(AnyListener::Tcp(listener), store, cfg)?;
        s.local_addr = Some(local);
        Ok(s)
    }

    /// Serve on a Unix-domain socket, replacing any stale socket file.
    pub fn bind_unix(
        path: impl AsRef<Path>,
        store: Arc<EpochStore>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let _ = std::fs::remove_file(path.as_ref());
        let listener = UnixListener::bind(path)?;
        Self::start(AnyListener::Unix(listener), store, cfg)
    }

    fn start(
        listener: AnyListener,
        store: Arc<EpochStore>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            store,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Mutex::new(ServeCounters::default()),
            per_worker: Mutex::new(vec![Counters::default(); workers]),
            spans: Mutex::new(Vec::new()),
            batch_seq: AtomicU64::new(0),
            reject_seq: AtomicU64::new(0),
            started: now(),
        });
        match &listener {
            AnyListener::Tcp(l) => l.set_nonblocking(true)?,
            AnyListener::Unix(l) => l.set_nonblocking(true)?,
        }
        let mut threads = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(w, sh))?,
            );
        }
        let sh = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, sh))?,
        );
        Ok(Server { shared, threads, local_addr: None })
    }

    /// The bound TCP address (`None` for Unix-socket servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Snapshot the live counters and queue depth.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Render the service's activity in the S11 [`StepProfile`] schema:
    /// serve-phase spans, per-worker kernel counters, and the
    /// [`ServeCounters`] block under `serve`.
    pub fn profile(&self) -> StepProfile {
        let sh = &self.shared;
        let stats = sh.stats();
        let mut p = StepProfile::new(sh.cfg.workers.max(1));
        p.step = stats.counters.batches;
        p.wall_s = now() - sh.started;
        p.spans = lock(&sh.spans).clone();
        p.per_worker = lock(&sh.per_worker).clone();
        p.totals = Counters::default();
        for w in &p.per_worker {
            p.totals.merge(w);
        }
        p.serve = Some(stats.counters);
        p
    }

    /// Orderly shutdown: stop admitting, drain every accepted request,
    /// join all threads, and return the final stats. No accepted request
    /// goes unanswered.
    pub fn stop(self) -> ServeStats {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

fn accept_loop(listener: AnyListener, shared: Arc<Shared>) {
    let timeout = Duration::from_millis(shared.cfg.read_timeout_ms.max(1));
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(SeqCst) {
        match listener.accept_halves(timeout) {
            Ok(Some((reader, writer))) => {
                let sh = Arc::clone(&shared);
                let writer = Arc::new(Mutex::new(writer));
                if let Ok(h) = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || conn_loop(sh, reader, writer))
                {
                    conns.push(h);
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// `read_exact` that tolerates read-timeout wakeups. Returns `Ok(false)` on
/// clean EOF / shutdown-while-idle (only possible when `idle_ok` and no
/// bytes of the current frame have arrived yet).
fn read_full(
    r: &mut (impl Read + ?Sized),
    buf: &mut [u8],
    shared: &Shared,
    idle_ok: bool,
) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && idle_ok {
                    Ok(false)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                }
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if got == 0 && idle_ok && shared.shutdown.load(SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn send(writer: &Arc<Mutex<Box<dyn Write + Send>>>, tag: u16, payload: &[u8]) {
    let mut w = lock(writer);
    let _ = write_frame(&mut *w, tag, payload).and_then(|_| w.flush());
}

fn conn_loop(
    shared: Arc<Shared>,
    mut reader: Box<dyn Read + Send>,
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
) {
    let mut header = [0u8; 6];
    loop {
        match read_full(&mut *reader, &mut header, &shared, true) {
            Ok(true) => {}
            _ => return,
        }
        let tag = u16::from_le_bytes([header[0], header[1]]);
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
        if len > MAX_FRAME {
            send(&writer, TAG_ERROR, &encode_error(0, &format!("frame too large: {len}")));
            return;
        }
        let mut payload = vec![0u8; len as usize];
        match read_full(&mut *reader, &mut payload, &shared, false) {
            Ok(true) => {}
            _ => return,
        }
        match tag {
            TAG_QUERY => match decode_query(&payload) {
                Ok(req) => {
                    let mut q = lock(&shared.queue);
                    if q.len() >= shared.cfg.queue_cap || shared.shutdown.load(SeqCst) {
                        let depth = q.len();
                        drop(q);
                        let mut c = lock(&shared.counters);
                        c.rejected += 1;
                        drop(c);
                        send(&writer, TAG_RETRY, &encode_retry(req.id, shared.retry_hint(depth)));
                    } else {
                        q.push_back(Job {
                            id: req.id,
                            kind: req.kind,
                            precision: req.precision,
                            points: req.points,
                            writer: Arc::clone(&writer),
                        });
                        let depth = q.len() as u64;
                        drop(q);
                        let mut c = lock(&shared.counters);
                        c.accepted += 1;
                        c.queue_depth_peak = c.queue_depth_peak.max(depth);
                        drop(c);
                        shared.cv.notify_one();
                    }
                }
                Err(e) => send(&writer, TAG_ERROR, &encode_error(0, &e)),
            },
            TAG_STATS => {
                let json = serde_json::to_string(&shared.stats()).unwrap_or_default();
                send(&writer, TAG_STATS_REPLY, json.as_bytes());
            }
            other => {
                send(&writer, TAG_ERROR, &encode_error(0, &format!("unknown tag {other:#x}")));
            }
        }
    }
}

fn worker_loop(worker: usize, shared: Arc<Shared>) {
    let mut engine = FieldQuery::new(shared.cfg.group_size);
    let mut samples: Vec<FieldSample> = Vec::new();
    loop {
        let wait_t0 = now();
        // Pop one job, then coalesce same-shape neighbours up to the batch
        // point budget. On shutdown keep popping until the queue is empty —
        // accepted requests are never dropped.
        let mut batch: Vec<Job> = Vec::new();
        {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(first) = q.pop_front() {
                    let mut points = first.points.len();
                    let (kind, precision) = (first.kind, first.precision);
                    batch.push(first);
                    while points < shared.cfg.batch_points {
                        match q.front() {
                            Some(j) if j.kind == kind && j.precision == precision => {
                                points += j.points.len();
                                batch.push(q.pop_front().unwrap());
                            }
                            _ => break,
                        }
                    }
                    break;
                }
                if shared.shutdown.load(SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }
        let seq = shared.batch_seq.fetch_add(1, SeqCst);
        let eval_t0 = now();
        shared.record_span(worker, seq, phase::SERVE_WAIT, wait_t0, eval_t0);

        let Some(epoch) = shared.store.pin() else {
            // Nothing published yet: tell every caller to come back rather
            // than hold their connections hostage.
            for job in &batch {
                send(&job.writer, TAG_RETRY, &encode_retry(job.id, shared.retry_hint(0)));
            }
            let mut c = lock(&shared.counters);
            c.rejected += batch.len() as u64;
            continue;
        };

        // One evaluation over the concatenated batch; per-job slices of the
        // output are scattered back below. Batch composition cannot change
        // results (see engine docs), so coalescing is invisible to clients.
        let all: Vec<QueryTarget> = batch.iter().flat_map(|j| j.points.iter().copied()).collect();
        let kind = batch[0].kind;
        let precision = batch[0].precision;
        let stats = match kind {
            QueryKind::Field => engine.eval(&epoch, &all, precision, &mut samples),
            QueryKind::Density => {
                engine.density(&epoch, &all, &mut samples);
                Default::default()
            }
        };
        let reply_t0 = now();
        shared.record_span(worker, seq, phase::SERVE_EVAL, eval_t0, reply_t0);

        let mut at = 0;
        for job in &batch {
            let slice = &samples[at..at + job.points.len()];
            at += job.points.len();
            send(&job.writer, TAG_RESULT, &encode_reply(job.id, epoch.generation, slice));
        }
        let done = now();
        shared.record_span(worker, seq, phase::SERVE_REPLY, reply_t0, done);

        let lag = shared.store.generation().saturating_sub(epoch.generation);
        drop(epoch); // release the pin before bookkeeping
        {
            let mut c = lock(&shared.counters);
            c.queries += all.len() as u64;
            c.batches += 1;
            c.epoch_lag_last = lag;
            c.epoch_lag_max = c.epoch_lag_max.max(lag);
        }
        {
            let mut pw = lock(&shared.per_worker);
            pw[worker].p2p += stats.p2p;
            pw[worker].m2p += stats.p2n;
            pw[worker].mac_tests += stats.mac_tests;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use crate::proto::{decode_reply, decode_retry, encode_query, QueryRequest};
    use bhut_geom::{Particle, Vec3};
    use bhut_tree::build::build;
    use bhut_tree::{accel_on, BarnesHutMac, BuildParams, KernelPrecision};
    use bhut_wire::read_frame;
    use std::net::TcpStream;

    fn cloud(n: usize, seed: u64) -> Vec<Particle> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                Particle::new(i as u32, 0.5 + next(), Vec3::new(next(), next(), next()), Vec3::ZERO)
            })
            .collect()
    }

    fn published_store(n: usize) -> (Arc<EpochStore>, Vec<Particle>) {
        let store = Arc::new(EpochStore::new());
        let p = cloud(n, 5);
        let tree = build(&p, BuildParams { leaf_capacity: 8, ..Default::default() });
        store.publish(tree, p.clone(), 0.6, 1e-4);
        (store, p)
    }

    #[test]
    fn tcp_end_to_end_field_density_and_stats() {
        let (store, particles) = published_store(500);
        let server =
            Server::bind_tcp("127.0.0.1:0", Arc::clone(&store), ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = ServeClient::connect_tcp(addr).unwrap();

        // Force queries at particle positions with skip ids reproduce the
        // per-particle walk.
        let targets: Vec<QueryTarget> = particles.iter().take(40).map(|p| (p.pos, p.id)).collect();
        let reply = client.query(QueryKind::Field, KernelPrecision::F64, &targets).unwrap();
        assert_eq!(reply.generation, 1);
        let mac = BarnesHutMac::new(0.6);
        let tree = build(&particles, BuildParams { leaf_capacity: 8, ..Default::default() });
        for (k, &(pos, skip)) in targets.iter().enumerate() {
            let (acc, _) = accel_on(&tree, &particles, pos, Some(skip), &mac, 1e-4);
            assert!(
                (reply.samples[k].acc - acc).norm() <= 1e-12 * acc.norm().max(1.0),
                "served force {k} matches local walk"
            );
        }

        let dens = client.query(QueryKind::Density, KernelPrecision::F64, &targets[..4]).unwrap();
        assert!(dens.samples.iter().all(|s| s.phi > 0.0), "density positive at particles");

        let stats: ServeStats = serde_json::from_str(&client.stats_json().unwrap()).unwrap();
        assert!(stats.counters.queries >= 44);
        assert_eq!(stats.counters.rejected, 0);
        assert_eq!(stats.generation, 1);

        let profile = server.profile();
        assert_eq!(profile.serve.unwrap().queries, stats.counters.queries);
        assert!(profile.phase_total(phase::SERVE_EVAL) >= 0.0);

        let fin = server.stop();
        assert!(fin.counters.accepted >= 2);
        assert_eq!(fin.counters.rejected, 0);
        assert_eq!(fin.queue_depth, 0, "queue drained at shutdown");
    }

    #[test]
    fn queries_before_first_publish_are_told_to_retry() {
        let store = Arc::new(EpochStore::new());
        let server =
            Server::bind_tcp("127.0.0.1:0", Arc::clone(&store), ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut s = TcpStream::connect(addr).unwrap();
        let req = QueryRequest {
            id: 77,
            kind: QueryKind::Field,
            precision: KernelPrecision::F64,
            points: vec![(Vec3::ZERO, u32::MAX)],
        };
        write_frame(&mut s, TAG_QUERY, &encode_query(&req)).unwrap();
        let (tag, body) = read_frame(&mut s).unwrap();
        assert_eq!(tag, TAG_RETRY, "no epoch yet ⇒ retry, not an error or a hang");
        let (id, ms) = decode_retry(&body).unwrap();
        assert_eq!(id, 77);
        assert!(ms > 0);

        // After a publish the same request succeeds.
        let p = cloud(64, 2);
        let tree = build(&p, BuildParams { leaf_capacity: 8, ..Default::default() });
        store.publish(tree, p, 0.6, 1e-4);
        write_frame(&mut s, TAG_QUERY, &encode_query(&req)).unwrap();
        let (tag, body) = read_frame(&mut s).unwrap();
        assert_eq!(tag, TAG_RESULT);
        let rep = decode_reply(&body).unwrap();
        assert_eq!((rep.id, rep.generation), (77, 1));
        let stats = server.stop();
        assert!(stats.counters.rejected >= 1);
    }

    #[test]
    fn malformed_and_unknown_frames_get_errors() {
        let (store, _) = published_store(32);
        let server = Server::bind_tcp("127.0.0.1:0", store, ServeConfig::default()).unwrap();
        let mut s = TcpStream::connect(server.local_addr().unwrap()).unwrap();
        write_frame(&mut s, TAG_QUERY, &[1, 2, 3]).unwrap();
        let (tag, _) = read_frame(&mut s).unwrap();
        assert_eq!(tag, TAG_ERROR);
        write_frame(&mut s, 0x7777, &[]).unwrap();
        let (tag, _) = read_frame(&mut s).unwrap();
        assert_eq!(tag, TAG_ERROR);
        server.stop();
    }

    #[test]
    fn retry_hint_scales_with_depth_and_desynchronizes() {
        // Monotone in depth for a fixed salt: a fuller queue asks clients
        // to stay away longer.
        let h_empty = retry_hint_ms(5, 0, 64, 9);
        let h_full = retry_hint_ms(5, 64, 64, 9);
        let h_over = retry_hint_ms(5, 192, 64, 9);
        assert!(h_empty >= 5);
        assert!(h_full > h_empty, "{h_full} vs {h_empty}");
        assert!(h_over > h_full, "{h_over} vs {h_full}");
        // Successive rejects at the same depth get spread-out hints, so a
        // burst of turned-away clients does not retry in lockstep.
        let hints: std::collections::HashSet<u32> =
            (0..32).map(|salt| retry_hint_ms(5, 64, 64, salt)).collect();
        assert!(hints.len() > 3, "jitter must vary across rejects: {hints:?}");
        // Degenerate configs still yield a positive, finite hint.
        assert!(retry_hint_ms(0, 0, 0, 0) >= 1);
        assert!(retry_hint_ms(u32::MAX, usize::MAX, 1, u64::MAX) >= 1);
    }

    #[test]
    fn stats_still_answer_after_an_induced_worker_panic() {
        let (store, particles) = published_store(64);
        let server =
            Server::bind_tcp("127.0.0.1:0", Arc::clone(&store), ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = ServeClient::connect_tcp(addr).unwrap();
        let targets: Vec<QueryTarget> = vec![(particles[0].pos, particles[0].id)];
        client.query(QueryKind::Field, KernelPrecision::F64, &targets).unwrap();

        // Poison the hot mutexes the way a dying worker would: panic while
        // holding each lock. A default `.lock().unwrap()` server would now
        // fail every stats call and wedge `stop()`.
        for pick in 0..3 {
            let sh = Arc::clone(&server.shared);
            let h = std::thread::spawn(move || match pick {
                0 => {
                    let _g = sh.counters.lock().unwrap();
                    panic!("induced panic holding the counters lock");
                }
                1 => {
                    let _g = sh.queue.lock().unwrap();
                    panic!("induced panic holding the queue lock");
                }
                _ => {
                    let _g = sh.spans.lock().unwrap();
                    panic!("induced panic holding the spans lock");
                }
            });
            assert!(h.join().is_err(), "the panic must fire to poison the lock");
        }
        assert!(server.shared.counters.is_poisoned(), "counters lock is poisoned");

        // In-process and over-the-wire stats still answer…
        let stats = server.stats();
        assert!(stats.counters.accepted >= 1);
        let wire: ServeStats = serde_json::from_str(&client.stats_json().unwrap()).unwrap();
        assert_eq!(wire.counters.accepted, stats.counters.accepted);
        // …queries still flow through the poisoned queue…
        let reply = client.query(QueryKind::Field, KernelPrecision::F64, &targets).unwrap();
        assert_eq!(reply.samples.len(), 1);
        // …and shutdown still drains and reports.
        let fin = server.stop();
        assert_eq!(fin.queue_depth, 0, "drained despite poisoned locks");
        assert!(fin.counters.accepted >= 2);
    }

    #[test]
    fn unix_socket_smoke() {
        let (store, particles) = published_store(128);
        let dir = std::env::temp_dir().join(format!("bhut-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let server = Server::bind_unix(&path, store, ServeConfig::default()).unwrap();
        let mut client = ServeClient::connect_unix(&path).unwrap();
        let targets: Vec<QueryTarget> = vec![(particles[3].pos, particles[3].id)];
        let reply = client.query(QueryKind::Field, KernelPrecision::MixedF32, &targets).unwrap();
        assert_eq!(reply.samples.len(), 1);
        server.stop();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
