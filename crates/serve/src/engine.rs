//! The batched field-query engine: force/potential/density at arbitrary
//! points, evaluated against a frozen [`TreeEpoch`].
//!
//! Query points arrive in whatever order the client sent them. The engine
//! Morton-sorts the batch inside the epoch's root cell and cuts it into
//! `group_size` pseudo-leaf buckets, so spatially coherent points share one
//! grouped tree walk each — the same amortization the simulation's force
//! sweep gets from real leaves, but for points the tree has never seen.
//! Each bucket goes through [`gather_group_targets`] →
//! [`resolve_mixed_tails_targets`] → [`eval_gathered_targets`], which the
//! tree crate guarantees (and tests) to be per-point identical to the
//! individual walk for *any* bucketing, so results do not depend on batch
//! composition or on how the scheduler coalesced requests.

use bhut_geom::{Aabb, Vec3};
use bhut_tree::build::morton_code;
use bhut_tree::{
    eval_gathered_targets, gather_group_targets, resolve_mixed_tails_targets, BarnesHutMac,
    InteractionBuffers, KernelPrecision, QueryTarget, TraversalStats,
};

use crate::epoch::TreeEpoch;

/// Field value at one query point: gravitational acceleration and
/// potential. For density queries only `phi` is populated (with the local
/// mass density estimate) and `acc` is zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FieldSample {
    pub acc: Vec3,
    pub phi: f64,
}

/// A reusable batched evaluator. Owns the gather slabs and scratch
/// permutation, so a long-lived worker allocates only on high-water-mark
/// growth (and [`InteractionBuffers::maybe_shrink`] caps that).
pub struct FieldQuery {
    group_size: usize,
    buf: InteractionBuffers,
    order: Vec<u32>,
    bucket: Vec<QueryTarget>,
}

impl FieldQuery {
    /// `group_size` is the pseudo-leaf bucket size — the number of query
    /// points sharing one grouped walk. The sweet spot matches the tree's
    /// own leaf capacity (≈16): big enough to amortize the walk, small
    /// enough that the group MAC rarely degrades to the mixed frontier.
    pub fn new(group_size: usize) -> Self {
        FieldQuery {
            group_size: group_size.max(1),
            buf: InteractionBuffers::default(),
            order: Vec::new(),
            bucket: Vec::new(),
        }
    }

    /// Evaluate acceleration and potential at every target, writing
    /// `out[k]` for `points[k]` (original order; the internal Morton sort
    /// is invisible to callers). A target's skip id (`u32::MAX` = none)
    /// masks that particle out of the near field, exactly as the
    /// simulation's own sweep excludes self-interaction — querying at a
    /// particle's position with its id reproduces the member force.
    ///
    /// Returns the traversal stats summed over the batch.
    pub fn eval(
        &mut self,
        epoch: &TreeEpoch,
        points: &[QueryTarget],
        precision: KernelPrecision,
        out: &mut Vec<FieldSample>,
    ) -> TraversalStats {
        out.clear();
        out.resize(points.len(), FieldSample::default());
        let mut stats = TraversalStats::default();
        if points.is_empty() || epoch.tree.is_empty() {
            return stats;
        }
        let mac = BarnesHutMac::new(epoch.alpha);
        let cell = epoch.tree.root_cell;
        self.order.clear();
        self.order.extend(0..points.len() as u32);
        self.order.sort_by_key(|&i| morton_code(&cell, points[i as usize].0));
        let order = std::mem::take(&mut self.order);
        for run in order.chunks(self.group_size) {
            self.bucket.clear();
            self.bucket.extend(run.iter().map(|&i| points[i as usize]));
            let Some(bb) = Aabb::bounding(self.bucket.iter().map(|t| t.0)) else {
                continue;
            };
            gather_group_targets(&epoch.tree, &epoch.particles, &bb, &mac, &mut self.buf);
            resolve_mixed_tails_targets(
                &epoch.tree,
                &epoch.particles,
                &self.bucket,
                &mac,
                &mut self.buf,
            );
            if precision == KernelPrecision::MixedF32 {
                self.buf.prepare_f32();
            }
            let st = eval_gathered_targets(
                &epoch.tree,
                &epoch.particles,
                &self.bucket,
                &mac,
                epoch.eps,
                precision,
                &self.buf,
                |k, phi, acc, _| {
                    out[run[k] as usize] = FieldSample { acc, phi };
                },
            );
            stats.merge(st);
        }
        self.order = order;
        self.buf.maybe_shrink();
        stats
    }

    /// Local mass-density estimate at each point: the mass of the deepest
    /// tree cell containing the point divided by that cell's volume (the
    /// classic octree density proxy — resolution adapts to the leaf
    /// capacity). Points outside the root cell, or in an empty tree, read
    /// zero. Skip ids are ignored.
    pub fn density(&self, epoch: &TreeEpoch, points: &[QueryTarget], out: &mut Vec<FieldSample>) {
        out.clear();
        out.reserve(points.len());
        for &(p, _) in points {
            let rho = epoch
                .tree
                .locate(p)
                .map(|id| {
                    let n = epoch.tree.node(id);
                    let v = n.cell.volume();
                    if v > 0.0 {
                        n.mass / v
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            out.push(FieldSample { acc: Vec3::ZERO, phi: rho });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::Particle;
    use bhut_tree::build::build;
    use bhut_tree::{accel_on, potential_at, BuildParams};

    fn cloud(n: usize, seed: u64) -> Vec<Particle> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                Particle::new(
                    i as u32,
                    0.25 + next(),
                    Vec3::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0),
                    Vec3::ZERO,
                )
            })
            .collect()
    }

    fn test_epoch(n: usize, seed: u64) -> TreeEpoch {
        let p = cloud(n, seed);
        let tree = build(&p, BuildParams { leaf_capacity: 8, ..Default::default() });
        TreeEpoch::standalone(1, tree, p, 0.6, 1e-4)
    }

    #[test]
    fn batched_eval_matches_individual_walks_in_scrambled_order() {
        let epoch = test_epoch(600, 3);
        let mac = BarnesHutMac::new(epoch.alpha);
        // Off-particle probes plus probes at particle positions (with skip),
        // deliberately interleaved and far from Morton order.
        let mut points: Vec<QueryTarget> = Vec::new();
        for k in 0..200usize {
            let p = epoch.particles[(k * 3) % epoch.particles.len()];
            if k % 2 == 0 {
                points.push((p.pos + Vec3::new(3e-3, -2e-3, 1e-3), u32::MAX));
            } else {
                points.push((p.pos, p.id));
            }
        }
        let mut engine = FieldQuery::new(16);
        let mut out = Vec::new();
        let stats = engine.eval(&epoch, &points, KernelPrecision::F64, &mut out);
        assert_eq!(out.len(), points.len());
        let mut ref_stats = TraversalStats::default();
        for (k, &(pos, skip)) in points.iter().enumerate() {
            let skip = (skip != u32::MAX).then_some(skip);
            let (acc, st) = accel_on(&epoch.tree, &epoch.particles, pos, skip, &mac, epoch.eps);
            let (phi, _) = potential_at(&epoch.tree, &epoch.particles, pos, skip, &mac, epoch.eps);
            ref_stats.merge(st);
            let scale = acc.norm().max(1.0);
            assert!(
                (out[k].acc - acc).norm() <= 1e-12 * scale,
                "point {k}: batched {:?} vs individual {:?}",
                out[k].acc,
                acc
            );
            assert!((out[k].phi - phi).abs() <= 1e-12 * phi.abs().max(1.0));
        }
        assert_eq!(stats.p2p, ref_stats.p2p, "near-field interaction counts identical");
        assert_eq!(stats.p2n, ref_stats.p2n, "far-field interaction counts identical");
    }

    #[test]
    fn results_do_not_depend_on_batch_composition() {
        let epoch = test_epoch(400, 7);
        let points: Vec<QueryTarget> = (0..120)
            .map(|k| {
                let p = epoch.particles[(k * 7) % epoch.particles.len()].pos;
                (p + Vec3::new(0.01, 0.02, -0.01), u32::MAX)
            })
            .collect();
        let mut engine = FieldQuery::new(16);
        let mut whole = Vec::new();
        engine.eval(&epoch, &points, KernelPrecision::F64, &mut whole);
        // Same points split across many small batches (what the server's
        // coalescer would produce under different load) must agree exactly.
        let mut pieces = Vec::new();
        for chunk in points.chunks(17) {
            let mut part = Vec::new();
            engine.eval(&epoch, chunk, KernelPrecision::F64, &mut part);
            pieces.extend(part);
        }
        for (k, (a, b)) in whole.iter().zip(&pieces).enumerate() {
            assert!(
                (a.acc - b.acc).norm() <= 1e-12 * a.acc.norm().max(1.0)
                    && (a.phi - b.phi).abs() <= 1e-12 * a.phi.abs().max(1.0),
                "point {k} differs across batchings"
            );
        }
    }

    #[test]
    fn density_is_cell_mass_over_volume_and_zero_outside() {
        let epoch = test_epoch(300, 11);
        let engine = FieldQuery::new(16);
        let inside = epoch.particles[42].pos;
        let outside = Vec3::new(1e6, 1e6, 1e6);
        let mut out = Vec::new();
        engine.density(&epoch, &[(inside, u32::MAX), (outside, u32::MAX)], &mut out);
        let id = epoch.tree.locate(inside).expect("inside point locates");
        let n = epoch.tree.node(id);
        assert!((out[0].phi - n.mass / n.cell.volume()).abs() < 1e-12);
        assert_eq!(out[0].acc, Vec3::ZERO);
        assert_eq!(out[1].phi, 0.0, "outside the root cell density reads zero");
    }

    #[test]
    fn empty_tree_reads_zero_everywhere() {
        let epoch =
            TreeEpoch::standalone(1, build(&[], BuildParams::default()), Vec::new(), 0.6, 1e-4);
        let mut engine = FieldQuery::new(8);
        let mut out = Vec::new();
        engine.eval(
            &epoch,
            &[(Vec3::ZERO, u32::MAX), (Vec3::new(1.0, 2.0, 3.0), 5)],
            KernelPrecision::F64,
            &mut out,
        );
        assert!(out.iter().all(|s| s.acc == Vec3::ZERO && s.phi == 0.0));
    }
}
