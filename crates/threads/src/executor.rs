//! The shared-memory force executor.

use crate::pool::{fork_join, BlockScheduler};
use bhut_geom::{Particle, Vec3};
use bhut_multipole::MultipoleTree;
use bhut_tree::build::{build, BuildParams};
use bhut_tree::group::{eval_group_monopole, leaf_schedule, InteractionBuffers};
use bhut_tree::traverse::TraversalStats;
use bhut_tree::{BarnesHutMac, NodeId, Tree};
use std::sync::Mutex;

/// How particles are distributed over threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Equal contiguous index blocks (no load intelligence).
    StaticBlocks,
    /// Costzones over the Morton-ordered sequence, weighted by the previous
    /// step's measured per-particle interaction counts.
    MortonZones,
    /// Dynamic block self-scheduling from a shared counter.
    SelfScheduling {
        /// Particles per grabbed block.
        block: usize,
    },
}

/// How forces are evaluated once the tree is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// One tree walk per leaf bucket feeding SoA batched kernels
    /// ([`bhut_tree::group`]). Interaction-for-interaction identical to
    /// [`EvalMode::PerParticle`]; the default.
    #[default]
    Grouped,
    /// One tree walk per particle — the reference path.
    PerParticle,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThreadConfig {
    pub threads: usize,
    pub alpha: f64,
    /// Multipole degree (0 = monopole).
    pub degree: u32,
    pub eps: f64,
    pub leaf_capacity: usize,
    pub partitioning: Partitioning,
    pub eval_mode: EvalMode,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        ThreadConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            alpha: 0.67,
            degree: 0,
            eps: 1e-4,
            leaf_capacity: 8,
            partitioning: Partitioning::MortonZones,
            eval_mode: EvalMode::Grouped,
        }
    }
}

/// One force computation's output.
#[derive(Debug, Clone, Default)]
pub struct ForceResult {
    pub accels: Vec<Vec3>,
    pub potentials: Vec<f64>,
    pub stats: TraversalStats,
    /// Interactions performed by each thread (load balance diagnostic).
    pub per_thread_interactions: Vec<u64>,
}

impl ForceResult {
    /// max/mean interactions across threads (1.0 = perfect balance).
    pub fn imbalance(&self) -> f64 {
        if self.per_thread_interactions.is_empty() {
            return 1.0;
        }
        let max = *self.per_thread_interactions.iter().max().unwrap() as f64;
        let mean = self.per_thread_interactions.iter().sum::<u64>() as f64
            / self.per_thread_interactions.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Per-thread evaluation scratch, reused across steps: the grouped walk's
/// SoA slabs plus the output staging area each worker fills before the main
/// thread scatters results. One entry per thread, so locks are uncontended.
#[derive(Default)]
struct Scratch {
    buf: InteractionBuffers,
    out: Vec<(u32, f64, Vec3, u64)>,
}

/// A reusable shared-memory simulator; carries per-particle work weights
/// across steps for [`Partitioning::MortonZones`] and per-thread evaluation
/// scratch across steps for both eval modes.
pub struct ThreadSim {
    pub config: ThreadConfig,
    prev_work: Option<Vec<u64>>,
    scratch: Vec<Mutex<Scratch>>,
}

impl ThreadSim {
    pub fn new(config: ThreadConfig) -> Self {
        assert!(config.threads > 0);
        let scratch = (0..config.threads).map(|_| Mutex::new(Scratch::default())).collect();
        ThreadSim { config, prev_work: None, scratch }
    }

    /// Drop carried load state.
    pub fn reset(&mut self) {
        self.prev_work = None;
    }

    /// Build the tree (and expansions if degree > 0) and compute the force
    /// and potential on every particle, in parallel.
    pub fn compute_forces(&mut self, particles: &[Particle]) -> ForceResult {
        let cfg = self.config;
        let params = BuildParams::with_leaf_capacity(cfg.leaf_capacity);
        let tree = if cfg.threads > 1 && !particles.is_empty() {
            let cell = bhut_geom::Aabb::bounding_cube(particles.iter().map(|p| p.pos), 0.0)
                .expect("non-empty");
            crate::ptree::par_build_in_cell(particles, cell, params)
        } else {
            build(particles, params)
        };
        let mtree = (cfg.degree > 0).then(|| MultipoleTree::new(&tree, particles, cfg.degree));
        let mac = BarnesHutMac::new(cfg.alpha);
        let n = particles.len();

        // Threads may have been reconfigured since `new`; grow the scratch
        // pool to match (never shrink — capacity is cheap to keep).
        while self.scratch.len() < cfg.threads {
            self.scratch.push(Mutex::new(Scratch::default()));
        }
        let scratch = &self.scratch;

        // Evaluation targets in Morton order so contiguous zones are
        // spatially compact (cache locality + balanced tails). Borrowed, not
        // cloned — the tree outlives the joined workers.
        let order: &[u32] = &tree.order;
        let eval_one = |pi: u32| -> (f64, Vec3, TraversalStats) {
            let p = &particles[pi as usize];
            match &mtree {
                Some(mt) => {
                    let (phi, acc, st) =
                        mt.eval(&tree, particles, p.pos, Some(p.id), &mac, cfg.eps);
                    (phi, acc, st)
                }
                None => {
                    let (phi, st) =
                        bhut_tree::potential_at(&tree, particles, p.pos, Some(p.id), &mac, cfg.eps);
                    let (acc, _) =
                        bhut_tree::accel_on(&tree, particles, p.pos, Some(p.id), &mac, cfg.eps);
                    (phi, acc, st)
                }
            }
        };

        // Workers stage results in their own scratch; the main thread
        // scatters after the join, so no shared result locks exist.
        let per_thread: Vec<(u64, TraversalStats)> = match cfg.eval_mode {
            EvalMode::Grouped => {
                let leaves = leaf_schedule(&tree);
                // One grouped evaluation of leaf `id` into this thread's
                // scratch; returns its traversal stats.
                let eval_leaf = |s: &mut Scratch, leaf: NodeId| -> TraversalStats {
                    let Scratch { buf, out } = s;
                    match &mtree {
                        Some(mt) => mt.eval_group(
                            &tree,
                            particles,
                            leaf,
                            &mac,
                            cfg.eps,
                            buf,
                            |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                        ),
                        None => eval_group_monopole(
                            &tree,
                            particles,
                            leaf,
                            &mac,
                            cfg.eps,
                            buf,
                            |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                        ),
                    }
                };
                let run_leaves = |t: usize, ids: &[NodeId]| -> (u64, TraversalStats) {
                    let mut s = scratch[t].lock().unwrap();
                    let mut stats = TraversalStats::default();
                    for &leaf in ids {
                        stats.merge(eval_leaf(&mut s, leaf));
                    }
                    (stats.interactions(), stats)
                };
                match cfg.partitioning {
                    Partitioning::StaticBlocks => {
                        // Equal particle counts per thread, at leaf
                        // granularity.
                        let weights: Vec<u64> =
                            leaves.iter().map(|&l| tree.node(l).count() as u64).collect();
                        let bounds = split_by_weight(&weights, cfg.threads);
                        fork_join(cfg.threads, |t| run_leaves(t, &leaves[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::MortonZones => {
                        // Costzones over leaf groups: weight each leaf by its
                        // members' measured work from the previous step.
                        let weights: Vec<u64> = match &self.prev_work {
                            Some(w) if w.len() == n => leaves
                                .iter()
                                .map(|&l| {
                                    tree.particles_under(l)
                                        .iter()
                                        .map(|&pi| w[pi as usize] + 1)
                                        .sum()
                                })
                                .collect(),
                            _ => leaves.iter().map(|&l| tree.node(l).count() as u64).collect(),
                        };
                        let bounds = split_by_weight(&weights, cfg.threads);
                        fork_join(cfg.threads, |t| run_leaves(t, &leaves[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::SelfScheduling { block } => {
                        // Convert the particle block size to a leaf count.
                        let leaf_block = (block / cfg.leaf_capacity.max(1)).max(1);
                        let sched = BlockScheduler::new(leaves.len(), leaf_block);
                        fork_join(cfg.threads, |t| {
                            let mut inter = 0;
                            let mut stats = TraversalStats::default();
                            while let Some((a, b)) = sched.grab() {
                                let (i, s) = run_leaves(t, &leaves[a..b]);
                                inter += i;
                                stats.merge(s);
                            }
                            (inter, stats)
                        })
                    }
                }
            }
            EvalMode::PerParticle => {
                let run_range = |t: usize, positions: &[u32]| -> (u64, TraversalStats) {
                    let mut s = scratch[t].lock().unwrap();
                    let mut stats = TraversalStats::default();
                    for &pi in positions {
                        let (phi, acc, st) = eval_one(pi);
                        stats.merge(st);
                        s.out.push((pi, phi, acc, st.interactions()));
                    }
                    (stats.interactions(), stats)
                };
                match cfg.partitioning {
                    Partitioning::StaticBlocks => {
                        let bounds = equal_bounds(n, cfg.threads);
                        fork_join(cfg.threads, |t| run_range(t, &order[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::MortonZones => {
                        // Carried weights are only valid while the particle
                        // set has the same cardinality (ids are positional).
                        let bounds = match &self.prev_work {
                            Some(w) if w.len() == n => weighted_bounds(order, w, cfg.threads),
                            _ => equal_bounds(n, cfg.threads),
                        };
                        fork_join(cfg.threads, |t| run_range(t, &order[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::SelfScheduling { block } => {
                        let sched = BlockScheduler::new(n, block);
                        fork_join(cfg.threads, |t| {
                            let mut inter = 0;
                            let mut stats = TraversalStats::default();
                            while let Some((a, b)) = sched.grab() {
                                let (i, s) = run_range(t, &order[a..b]);
                                inter += i;
                                stats.merge(s);
                            }
                            (inter, stats)
                        })
                    }
                }
            }
        };

        let mut total = TraversalStats::default();
        let mut per_thread_interactions = Vec::with_capacity(per_thread.len());
        for (i, s) in per_thread {
            per_thread_interactions.push(i);
            total.merge(s);
        }

        // Scatter staged results; workers are joined, so the locks are free.
        let mut accels = vec![Vec3::ZERO; n];
        let mut potentials = vec![0.0f64; n];
        let mut work = vec![0u64; n];
        for s in &self.scratch {
            let mut s = s.lock().unwrap();
            for (pi, phi, acc, it) in s.out.drain(..) {
                accels[pi as usize] = acc;
                potentials[pi as usize] = phi;
                work[pi as usize] = it;
            }
        }
        self.prev_work = Some(work);
        ForceResult { accels, potentials, stats: total, per_thread_interactions }
    }

    /// Access the tree the last force computation would build (for tests and
    /// diagnostics).
    pub fn build_tree(&self, particles: &[Particle]) -> Tree {
        build(particles, BuildParams::with_leaf_capacity(self.config.leaf_capacity))
    }
}

/// `threads + 1` equal-count boundaries over `n` items.
fn equal_bounds(n: usize, threads: usize) -> Vec<usize> {
    (0..=threads).map(|t| n * t / threads).collect()
}

/// `parts + 1` boundaries over a weighted item sequence such that each part
/// carries ≈ equal total weight (the costzones split, at item granularity).
fn split_by_weight(weights: &[u64], parts: usize) -> Vec<usize> {
    let total: u64 = weights.iter().map(|&w| w + 1).sum();
    let per = total as f64 / parts as f64;
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        if acc as f64 >= per * bounds.len() as f64 && bounds.len() < parts {
            bounds.push(i);
        }
        acc += w + 1;
    }
    while bounds.len() < parts {
        bounds.push(weights.len());
    }
    bounds.push(weights.len());
    bounds
}

/// Costzones boundaries: split the in-order sequence so each zone carries
/// ≈ equal measured work.
fn weighted_bounds(order: &[u32], work: &[u64], threads: usize) -> Vec<usize> {
    let total: u64 = order.iter().map(|&pi| work[pi as usize] + 1).sum();
    let per = total as f64 / threads as f64;
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (t, &pi) in order.iter().enumerate() {
        if acc as f64 >= per * bounds.len() as f64 && bounds.len() < threads {
            bounds.push(t);
        }
        acc += work[pi as usize] + 1;
    }
    while bounds.len() < threads {
        bounds.push(order.len());
    }
    bounds.push(order.len());
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};
    use bhut_tree::direct;

    fn config(threads: usize, partitioning: Partitioning) -> ThreadConfig {
        ThreadConfig { threads, partitioning, ..Default::default() }
    }

    #[test]
    fn matches_direct_summation_closely() {
        let set = uniform_cube(600, 1.0, 3);
        let mut sim =
            ThreadSim::new(ThreadConfig { alpha: 0.3, ..config(3, Partitioning::MortonZones) });
        let out = sim.compute_forces(&set.particles);
        let exact = direct::all_accels_direct(&set.particles, sim.config.eps);
        let err = direct::fractional_error_vec(&out.accels, &exact);
        assert!(err < 5e-3, "force error {err}");
    }

    #[test]
    fn partitionings_agree_exactly() {
        let set = plummer(PlummerSpec { n: 800, seed: 2, ..Default::default() });
        let mut results = Vec::new();
        for part in [
            Partitioning::StaticBlocks,
            Partitioning::MortonZones,
            Partitioning::SelfScheduling { block: 16 },
        ] {
            let mut sim = ThreadSim::new(config(4, part));
            results.push(sim.compute_forces(&set.particles));
        }
        for r in &results[1..] {
            assert_eq!(r.stats.interactions(), results[0].stats.interactions());
            for i in 0..set.len() {
                assert!((r.potentials[i] - results[0].potentials[i]).abs() < 1e-12);
                assert!(r.accels[i].dist(results[0].accels[i]) < 1e-12);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let set = uniform_cube(400, 1.0, 5);
        let one =
            ThreadSim::new(config(1, Partitioning::StaticBlocks)).compute_forces(&set.particles);
        let four =
            ThreadSim::new(config(4, Partitioning::StaticBlocks)).compute_forces(&set.particles);
        for i in 0..set.len() {
            assert_eq!(one.potentials[i], four.potentials[i]);
            assert_eq!(one.accels[i], four.accels[i]);
        }
    }

    #[test]
    fn morton_zones_balance_clustered_load() {
        // A Plummer core concentrates work; after one warm-up step, the
        // weighted zones should beat static blocks on imbalance.
        let set = plummer(PlummerSpec { n: 4000, seed: 7, ..Default::default() });
        let mut zones = ThreadSim::new(config(4, Partitioning::MortonZones));
        let _ = zones.compute_forces(&set.particles); // warm-up: measure work
        let balanced = zones.compute_forces(&set.particles);

        let mut naive = ThreadSim::new(config(4, Partitioning::StaticBlocks));
        let unbalanced = naive.compute_forces(&set.particles);

        assert!(
            balanced.imbalance() <= unbalanced.imbalance() + 0.02,
            "zones {} vs static {}",
            balanced.imbalance(),
            unbalanced.imbalance()
        );
        assert!(balanced.imbalance() < 1.25, "zones imbalance {}", balanced.imbalance());
    }

    #[test]
    fn self_scheduling_balances_without_history() {
        let set = plummer(PlummerSpec { n: 3000, seed: 8, ..Default::default() });
        let mut sim = ThreadSim::new(config(4, Partitioning::SelfScheduling { block: 32 }));
        let out = sim.compute_forces(&set.particles);
        assert!(out.imbalance() < 1.5, "imbalance {}", out.imbalance());
    }

    #[test]
    fn multipole_degree_improves_accuracy() {
        let set = uniform_cube(500, 1.0, 9);
        let exact = direct::all_potentials_direct(&set.particles, 1e-4);
        let err_at = |degree: u32| {
            let mut sim = ThreadSim::new(ThreadConfig {
                degree,
                alpha: 0.9,
                ..config(2, Partitioning::StaticBlocks)
            });
            let out = sim.compute_forces(&set.particles);
            direct::fractional_error(&out.potentials, &exact)
        };
        assert!(err_at(4) < err_at(0));
    }

    #[test]
    fn eval_modes_agree_exactly() {
        // Grouped walks must reproduce the per-particle reference path:
        // identical interaction counts, values within 1e-12 relative.
        let set = plummer(PlummerSpec { n: 900, seed: 12, ..Default::default() });
        for degree in [0u32, 2] {
            let mut grouped = ThreadSim::new(ThreadConfig {
                degree,
                eval_mode: EvalMode::Grouped,
                ..config(3, Partitioning::MortonZones)
            });
            let mut reference = ThreadSim::new(ThreadConfig {
                degree,
                eval_mode: EvalMode::PerParticle,
                ..config(3, Partitioning::MortonZones)
            });
            let a = grouped.compute_forces(&set.particles);
            let b = reference.compute_forces(&set.particles);
            assert_eq!(a.stats, b.stats, "degree {degree}");
            for i in 0..set.len() {
                let tol = 1e-12;
                assert!(
                    (a.potentials[i] - b.potentials[i]).abs()
                        <= tol * b.potentials[i].abs().max(1.0)
                );
                assert!(a.accels[i].dist(b.accels[i]) <= tol * b.accels[i].norm().max(1.0));
            }
        }
    }

    #[test]
    fn grouped_is_the_default_mode() {
        assert_eq!(ThreadConfig::default().eval_mode, EvalMode::Grouped);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut sim = ThreadSim::new(config(4, Partitioning::MortonZones));
        let out = sim.compute_forces(&[]);
        assert!(out.accels.is_empty());
        let one = uniform_cube(1, 1.0, 1);
        let out = sim.compute_forces(&one.particles);
        assert_eq!(out.accels.len(), 1);
        assert_eq!(out.accels[0], Vec3::ZERO);
    }
}
