//! The shared-memory force executor.

use crate::pool::{fork_join, BlockScheduler};
use bhut_geom::{Particle, Vec3};
use bhut_multipole::MultipoleTree;
use bhut_obs::{phase, Counters, SharedCounters, Span, StepProfile};
use bhut_timestep::ActiveSet;
use bhut_tree::build::{build, BuildParams};
use bhut_tree::group::{
    eval_gathered_monopole_masked, gather_group, gather_group_cached, leaf_schedule,
    leaf_schedule_active, resolve_mixed_tails, resolve_mixed_tails_lanes, InteractionBuffers,
    WalkCache,
};
use bhut_tree::traverse::TraversalStats;
use bhut_tree::{BarnesHutMac, GroupMac, KernelPrecision, NodeId, ScalarClassify, Tree};
use std::sync::Mutex;

/// How particles are distributed over threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Equal contiguous index blocks (no load intelligence).
    StaticBlocks,
    /// Costzones over the Morton-ordered sequence, weighted by the previous
    /// step's measured per-particle interaction counts.
    MortonZones,
    /// Dynamic block self-scheduling from a shared counter.
    SelfScheduling {
        /// Particles per grabbed block.
        block: usize,
    },
}

/// How forces are evaluated once the tree is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// One tree walk per leaf bucket feeding SoA batched kernels
    /// ([`bhut_tree::group`]). Interaction-for-interaction identical to
    /// [`EvalMode::PerParticle`]; the default.
    #[default]
    Grouped,
    /// One tree walk per particle — the reference path.
    PerParticle,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThreadConfig {
    pub threads: usize,
    pub alpha: f64,
    /// Multipole degree (0 = monopole).
    pub degree: u32,
    pub eps: f64,
    pub leaf_capacity: usize,
    pub partitioning: Partitioning,
    pub eval_mode: EvalMode,
    /// Arithmetic mode of the batched slab kernels on the grouped path
    /// (ignored by [`EvalMode::PerParticle`], which always evaluates in
    /// scalar f64). See [`KernelPrecision`].
    pub precision: KernelPrecision,
    /// Classify up to 8 sibling nodes per group-MAC test with the SIMD
    /// batch classifiers (the default). `false` pins the scalar
    /// one-node-per-test classification; both make bitwise-identical
    /// decisions, so forces are unchanged either way.
    pub mac_batch: bool,
    /// Cache each leaf's gathered interaction list and replay it on block
    /// substeps that reuse the frozen tree
    /// ([`ThreadSim::compute_forces_substep`] with `reuse = true`). Off by
    /// default; full steps always rebuild and re-walk.
    pub list_reuse: bool,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        ThreadConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            alpha: 0.67,
            degree: 0,
            eps: 1e-4,
            leaf_capacity: 8,
            partitioning: Partitioning::MortonZones,
            eval_mode: EvalMode::Grouped,
            precision: KernelPrecision::default(),
            mac_batch: true,
            list_reuse: false,
        }
    }
}

/// One force computation's output.
#[derive(Debug, Clone, Default)]
pub struct ForceResult {
    pub accels: Vec<Vec3>,
    pub potentials: Vec<f64>,
    pub stats: TraversalStats,
    /// Interactions performed by each thread (load balance diagnostic).
    pub per_thread_interactions: Vec<u64>,
    /// Phase-level profile; `Some` only from
    /// [`ThreadSim::compute_forces_profiled`].
    pub profile: Option<StepProfile>,
}

impl ForceResult {
    /// max/mean interactions across threads (1.0 = perfect balance).
    pub fn imbalance(&self) -> f64 {
        if self.per_thread_interactions.is_empty() {
            return 1.0;
        }
        let max = *self.per_thread_interactions.iter().max().unwrap() as f64;
        let mean = self.per_thread_interactions.iter().sum::<u64>() as f64
            / self.per_thread_interactions.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Per-thread evaluation scratch, reused across steps: the grouped walk's
/// SoA slabs plus the output staging area each worker fills before the main
/// thread scatters results. One entry per thread, so locks are uncontended.
#[derive(Default)]
struct Scratch {
    buf: InteractionBuffers,
    out: Vec<(u32, f64, Vec3, u64)>,
    /// Per-leaf interaction lists for frozen-tree substep replay
    /// ([`ThreadConfig::list_reuse`]); generation-keyed, so a rebuild
    /// (which bumps the generation) evicts everything.
    cache: WalkCache,
}

/// Per-worker wall-clock observations from one profiled force computation.
/// On the grouped path the walk (gather) and kernel (batched evaluation)
/// durations are accumulated separately; the per-particle path fuses them.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerObs {
    start: f64,
    end: f64,
    walk_s: f64,
    kernel_s: f64,
}

/// A reusable shared-memory simulator; carries per-particle work weights
/// across steps for [`Partitioning::MortonZones`], per-thread evaluation
/// scratch across steps for both eval modes, and per-thread atomic work
/// counters for the profiled path.
pub struct ThreadSim {
    pub config: ThreadConfig,
    prev_work: Option<Vec<u64>>,
    scratch: Vec<Mutex<Scratch>>,
    counters: Vec<SharedCounters>,
    /// The tree frozen by the last computation, kept only under
    /// [`ThreadConfig::list_reuse`] so substeps can re-walk (or replay) it.
    cached_tree: Option<Tree>,
    /// Bumped on every rebuild; keys the per-thread interaction-list caches.
    tree_generation: u64,
}

impl ThreadSim {
    pub fn new(config: ThreadConfig) -> Self {
        assert!(config.threads > 0);
        let scratch = (0..config.threads).map(|_| Mutex::new(Scratch::default())).collect();
        let counters = (0..config.threads).map(|_| SharedCounters::new()).collect();
        ThreadSim {
            config,
            prev_work: None,
            scratch,
            counters,
            cached_tree: None,
            tree_generation: 0,
        }
    }

    /// Set every per-thread interaction-list cache's byte budget. 0 disables
    /// list caching entirely while keeping frozen-tree substeps — the
    /// reference path the reuse tests and benches compare against. Applies
    /// to the scratch pool as currently sized; a later thread-count increase
    /// allocates fresh caches at the default budget.
    pub fn set_walk_cache_budget(&mut self, bytes: usize) {
        for s in &self.scratch {
            s.lock().unwrap().cache.set_budget(bytes);
        }
    }

    /// Drop carried load state (costzones weights and the frozen tree).
    pub fn reset(&mut self) {
        self.prev_work = None;
        self.cached_tree = None;
    }

    /// Drop the frozen tree and every per-thread interaction-list cache, as
    /// a rebuild would; the next computation re-walks everything. Exposed so
    /// callers (and the bench harness) can compare reuse against the
    /// cache-free path on identical inputs.
    pub fn purge_walk_caches(&mut self) {
        self.cached_tree = None;
        self.tree_generation += 1;
        for s in &self.scratch {
            let mut s = s.lock().unwrap();
            s.cache.clear();
            let _ = s.cache.take_stats();
        }
    }

    /// Per-particle interaction counts measured by the last force
    /// computation (the costzones weights), indexed by particle id. `None`
    /// before the first step. The multi-process backend reads these to
    /// derive SPDA cluster loads and DPDA particle weights from real
    /// measurements instead of modeled ones.
    pub fn work_weights(&self) -> Option<&[u64]> {
        self.prev_work.as_deref()
    }

    /// Build the tree (and expansions if degree > 0) and compute the force
    /// and potential on every particle, in parallel.
    pub fn compute_forces(&mut self, particles: &[Particle]) -> ForceResult {
        self.compute(particles, false, None, false)
    }

    /// [`ThreadSim::compute_forces`] plus a phase-level [`StepProfile`]:
    /// per-worker build/walk/kernel/scatter spans and work counters. Results
    /// are identical to the unprofiled call; only wall-clock reads are added
    /// (erased entirely when the `profile` feature is off).
    pub fn compute_forces_profiled(&mut self, particles: &[Particle]) -> ForceResult {
        self.compute(particles, true, None, false)
    }

    /// [`ThreadSim::compute_forces`] restricted to an active subset: the
    /// tree is built over **all** particles (every body still acts as a
    /// source), but forces and potentials are evaluated only for particles
    /// with `active.is_active(i)`. Inactive entries of the returned
    /// `accels`/`potentials` are zero — callers on the block-timestep path
    /// must only read the active ones. A full set takes the unmasked path,
    /// so results then match [`ThreadSim::compute_forces`] bit for bit; a
    /// partial set's active entries are bitwise equal to the full run's.
    pub fn compute_forces_active(
        &mut self,
        particles: &[Particle],
        active: &ActiveSet,
    ) -> ForceResult {
        self.compute(particles, false, Some(active), false)
    }

    /// [`ThreadSim::compute_forces_active`] with the phase-level profile
    /// attached, mirroring [`ThreadSim::compute_forces_profiled`].
    pub fn compute_forces_active_profiled(
        &mut self,
        particles: &[Particle],
        active: &ActiveSet,
    ) -> ForceResult {
        self.compute(particles, true, Some(active), false)
    }

    /// One block-substep force computation: like
    /// [`ThreadSim::compute_forces_active`] (optionally profiled), and —
    /// when `reuse` is true and [`ThreadConfig::list_reuse`] is on — walking
    /// the tree frozen by the previous call instead of rebuilding, replaying
    /// each scheduled leaf's cached interaction list when its members still
    /// sit inside the frozen bucket. With `reuse` false (or the feature off)
    /// this is exactly the rebuild path, bit for bit.
    pub fn compute_forces_substep(
        &mut self,
        particles: &[Particle],
        active: &ActiveSet,
        profiled: bool,
        reuse: bool,
    ) -> ForceResult {
        self.compute(particles, profiled, Some(active), reuse)
    }

    fn compute(
        &mut self,
        particles: &[Particle],
        profiled: bool,
        active: Option<&ActiveSet>,
        reuse: bool,
    ) -> ForceResult {
        // Monomorphize the whole walk over the classifier so the batch /
        // scalar choice costs nothing per node.
        let mac = BarnesHutMac::new(self.config.alpha);
        if self.config.mac_batch {
            self.compute_with(particles, profiled, active, reuse, mac)
        } else {
            self.compute_with(particles, profiled, active, reuse, ScalarClassify(mac))
        }
    }

    fn compute_with<M: GroupMac + Copy + Sync>(
        &mut self,
        particles: &[Particle],
        profiled: bool,
        active: Option<&ActiveSet>,
        reuse: bool,
        mac: M,
    ) -> ForceResult {
        let cfg = self.config;
        let t_origin = if profiled { bhut_obs::now() } else { 0.0 };
        // A reusing substep walks the frozen tree; anything else rebuilds
        // and bumps the generation, which evicts every cached list. A frozen
        // tree is only trusted while the particle set keeps its cardinality.
        let cached = (cfg.list_reuse && reuse)
            .then(|| self.cached_tree.take())
            .flatten()
            .filter(|t| t.order.len() == particles.len());
        let tree = cached.unwrap_or_else(|| {
            self.tree_generation += 1;
            self.eval_tree(particles)
        });
        let generation = self.tree_generation;
        let mtree = (cfg.degree > 0).then(|| MultipoleTree::new(&tree, particles, cfg.degree));
        let t_build_end = if profiled { bhut_obs::now() } else { 0.0 };
        let n = particles.len();
        // A full active set is indistinguishable from "no mask": route it
        // down the unmasked path so results stay bitwise identical to
        // `compute_forces` (and the mask bound checks vanish).
        let mask: Option<&[bool]> = active.filter(|a| !a.is_full()).map(|a| a.mask());

        // Threads may have been reconfigured since `new`; grow the scratch
        // and counter pools to match (never shrink — capacity is cheap).
        while self.scratch.len() < cfg.threads {
            self.scratch.push(Mutex::new(Scratch::default()));
        }
        while self.counters.len() < cfg.threads {
            self.counters.push(SharedCounters::new());
        }
        if profiled {
            for c in &self.counters[..cfg.threads] {
                c.reset();
            }
        }
        let scratch = &self.scratch;
        let counters = &self.counters;

        // Evaluation targets in Morton order so contiguous zones are
        // spatially compact (cache locality + balanced tails). Borrowed, not
        // cloned — the tree outlives the joined workers.
        let order: &[u32] = &tree.order;
        let eval_one = |pi: u32| -> (f64, Vec3, TraversalStats) {
            let p = &particles[pi as usize];
            match &mtree {
                Some(mt) => {
                    let (phi, acc, st) =
                        mt.eval(&tree, particles, p.pos, Some(p.id), &mac, cfg.eps);
                    (phi, acc, st)
                }
                None => {
                    let (phi, st) =
                        bhut_tree::potential_at(&tree, particles, p.pos, Some(p.id), &mac, cfg.eps);
                    let (acc, _) =
                        bhut_tree::accel_on(&tree, particles, p.pos, Some(p.id), &mac, cfg.eps);
                    (phi, acc, st)
                }
            }
        };

        // Workers stage results in their own scratch; the main thread
        // scatters after the join, so no shared result locks exist.
        let per_thread: Vec<(u64, TraversalStats, WorkerObs)> = match cfg.eval_mode {
            EvalMode::Grouped => {
                // A masked run schedules only leaves holding at least one
                // active member; the walks themselves still see every source.
                let leaves = match mask {
                    Some(m) => leaf_schedule_active(&tree, m),
                    None => leaf_schedule(&tree),
                };
                // One grouped evaluation of leaf `id` into this thread's
                // scratch; returns its traversal stats. The fused entry
                // points delegate to this same gather + masked-eval split,
                // so threading the mask here changes nothing when it's off.
                let eval_leaf = |s: &mut Scratch, leaf: NodeId| -> TraversalStats {
                    let Scratch { buf, out, cache } = s;
                    if cfg.list_reuse {
                        gather_group_cached(&tree, particles, leaf, &mac, buf, cache, generation);
                    } else {
                        gather_group(&tree, particles, leaf, &mac, buf);
                    }
                    if mtree.is_none() {
                        // Monopole path: flatten the mixed frontiers into
                        // per-member tail slabs so evaluation is pure slab
                        // arithmetic (the multipole path keeps its
                        // degree-aware per-member replay). The vectorized
                        // walk fuses the replays into member-lane
                        // traversals; `mac_batch: false` pins the scalar
                        // resolve as the reference path.
                        if cfg.mac_batch {
                            resolve_mixed_tails_lanes(&tree, particles, leaf, &mac, buf, mask);
                        } else {
                            resolve_mixed_tails(&tree, particles, leaf, &mac, buf, mask);
                        }
                    }
                    match &mtree {
                        Some(mt) => mt.eval_gathered_masked(
                            &tree,
                            particles,
                            leaf,
                            &mac,
                            cfg.eps,
                            cfg.precision,
                            buf,
                            mask,
                            |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                        ),
                        None => eval_gathered_monopole_masked(
                            &tree,
                            particles,
                            leaf,
                            &mac,
                            cfg.eps,
                            cfg.precision,
                            buf,
                            mask,
                            |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                        ),
                    }
                };
                // The profiled variant splits the shared walk from the
                // batched kernels and harvests the classification counters.
                let run_leaves = |t: usize,
                                  ids: &[NodeId],
                                  w: &mut WorkerObs|
                 -> (u64, TraversalStats) {
                    let mut s = scratch[t].lock().unwrap();
                    // Fill the f32 mirrors during the gather itself
                    // (instead of converting after the fact) whenever
                    // the kernels will read them.
                    s.buf.set_fill_f32(cfg.precision == KernelPrecision::MixedF32);
                    let mut stats = TraversalStats::default();
                    if !profiled {
                        for &leaf in ids {
                            stats.merge(eval_leaf(&mut s, leaf));
                        }
                        return (stats.interactions(), stats);
                    }
                    let mut c = Counters::default();
                    // Discard lane counts and cache stats a previous
                    // unprofiled run may have left in this scratch.
                    s.buf.take_lane_counters();
                    let _ = s.cache.take_stats();
                    for &leaf in ids {
                        let Scratch { buf, out, cache } = &mut *s;
                        let t0 = bhut_obs::now();
                        if cfg.list_reuse {
                            gather_group_cached(
                                &tree, particles, leaf, &mac, buf, cache, generation,
                            );
                        } else {
                            gather_group(&tree, particles, leaf, &mac, buf);
                        }
                        if mtree.is_none() {
                            if cfg.mac_batch {
                                resolve_mixed_tails_lanes(&tree, particles, leaf, &mac, buf, mask);
                            } else {
                                resolve_mixed_tails(&tree, particles, leaf, &mac, buf, mask);
                            }
                        }
                        let t1 = bhut_obs::now();
                        let st = match &mtree {
                            Some(mt) => mt.eval_gathered_masked(
                                &tree,
                                particles,
                                leaf,
                                &mac,
                                cfg.eps,
                                cfg.precision,
                                buf,
                                mask,
                                |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                            ),
                            None => eval_gathered_monopole_masked(
                                &tree,
                                particles,
                                leaf,
                                &mac,
                                cfg.eps,
                                cfg.precision,
                                buf,
                                mask,
                                |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                            ),
                        };
                        w.walk_s += t1 - t0;
                        w.kernel_s += bhut_obs::now() - t1;
                        c.p2p += st.p2p;
                        c.m2p += st.p2n;
                        c.mac_tests += st.mac_tests;
                        c.nodes_opened += buf.nodes_opened;
                        c.group_accept += buf.node_ids.len() as u64;
                        c.group_reject += buf.class_reject;
                        c.group_mixed += buf.mixed.len() as u64;
                        let (lane_slots, lane_useful) = buf.take_lane_counters();
                        c.lane_slots += lane_slots;
                        c.lane_useful += lane_useful;
                        stats.merge(st);
                    }
                    let (hits, misses) = s.cache.take_stats();
                    c.list_hits += hits;
                    c.list_misses += misses;
                    c.list_bytes += s.cache.bytes() as u64;
                    counters[t].add(&c);
                    (stats.interactions(), stats)
                };
                let run_span = |t: usize, ids: &[NodeId]| -> (u64, TraversalStats, WorkerObs) {
                    let mut w = WorkerObs::default();
                    if profiled {
                        w.start = bhut_obs::now();
                    }
                    let (i, st) = run_leaves(t, ids, &mut w);
                    if profiled {
                        w.end = bhut_obs::now();
                    }
                    (i, st, w)
                };
                match cfg.partitioning {
                    Partitioning::StaticBlocks => {
                        // Equal particle counts per thread, at leaf
                        // granularity.
                        let weights: Vec<u64> =
                            leaves.iter().map(|&l| tree.node(l).count() as u64).collect();
                        let bounds = split_by_weight(&weights, cfg.threads);
                        fork_join(cfg.threads, |t| run_span(t, &leaves[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::MortonZones => {
                        // Costzones over leaf groups: weight each leaf by its
                        // members' measured work from the previous step.
                        let weights: Vec<u64> = match &self.prev_work {
                            Some(w) if w.len() == n => leaves
                                .iter()
                                .map(|&l| {
                                    tree.particles_under(l)
                                        .iter()
                                        .map(|&pi| w[pi as usize] + 1)
                                        .sum()
                                })
                                .collect(),
                            _ => leaves.iter().map(|&l| tree.node(l).count() as u64).collect(),
                        };
                        let bounds = split_by_weight(&weights, cfg.threads);
                        fork_join(cfg.threads, |t| run_span(t, &leaves[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::SelfScheduling { block } => {
                        // Convert the particle block size to a leaf count.
                        let leaf_block = (block / cfg.leaf_capacity.max(1)).max(1);
                        let sched = BlockScheduler::new(leaves.len(), leaf_block);
                        fork_join(cfg.threads, |t| {
                            let mut w = WorkerObs::default();
                            if profiled {
                                w.start = bhut_obs::now();
                            }
                            let mut inter = 0;
                            let mut stats = TraversalStats::default();
                            while let Some((a, b)) = sched.grab() {
                                let (i, s) = run_leaves(t, &leaves[a..b], &mut w);
                                inter += i;
                                stats.merge(s);
                            }
                            if profiled {
                                w.end = bhut_obs::now();
                            }
                            (inter, stats, w)
                        })
                    }
                }
            }
            EvalMode::PerParticle => {
                let run_range = |t: usize, positions: &[u32]| -> (u64, TraversalStats) {
                    let mut s = scratch[t].lock().unwrap();
                    let mut stats = TraversalStats::default();
                    for &pi in positions {
                        if let Some(m) = mask {
                            if !m[pi as usize] {
                                continue;
                            }
                        }
                        let (phi, acc, st) = eval_one(pi);
                        stats.merge(st);
                        s.out.push((pi, phi, acc, st.interactions()));
                    }
                    if profiled {
                        counters[t].add(&Counters {
                            p2p: stats.p2p,
                            m2p: stats.p2n,
                            mac_tests: stats.mac_tests,
                            ..Default::default()
                        });
                    }
                    (stats.interactions(), stats)
                };
                let run_span = |t: usize, positions: &[u32]| -> (u64, TraversalStats, WorkerObs) {
                    let mut w = WorkerObs::default();
                    if profiled {
                        w.start = bhut_obs::now();
                    }
                    let (i, st) = run_range(t, positions);
                    if profiled {
                        w.end = bhut_obs::now();
                    }
                    (i, st, w)
                };
                match cfg.partitioning {
                    Partitioning::StaticBlocks => {
                        let bounds = equal_bounds(n, cfg.threads);
                        fork_join(cfg.threads, |t| run_span(t, &order[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::MortonZones => {
                        // Carried weights are only valid while the particle
                        // set has the same cardinality (ids are positional).
                        let bounds = match &self.prev_work {
                            Some(w) if w.len() == n => weighted_bounds(order, w, cfg.threads),
                            _ => equal_bounds(n, cfg.threads),
                        };
                        fork_join(cfg.threads, |t| run_span(t, &order[bounds[t]..bounds[t + 1]]))
                    }
                    Partitioning::SelfScheduling { block } => {
                        let sched = BlockScheduler::new(n, block);
                        fork_join(cfg.threads, |t| {
                            let mut w = WorkerObs::default();
                            if profiled {
                                w.start = bhut_obs::now();
                            }
                            let mut inter = 0;
                            let mut stats = TraversalStats::default();
                            while let Some((a, b)) = sched.grab() {
                                let (i, s) = run_range(t, &order[a..b]);
                                inter += i;
                                stats.merge(s);
                            }
                            if profiled {
                                w.end = bhut_obs::now();
                            }
                            (inter, stats, w)
                        })
                    }
                }
            }
        };

        let mut total = TraversalStats::default();
        let mut per_thread_interactions = Vec::with_capacity(per_thread.len());
        for (i, s, _) in &per_thread {
            per_thread_interactions.push(*i);
            total.merge(*s);
        }

        // Scatter staged results; workers are joined, so the locks are free.
        let t_scatter = if profiled { bhut_obs::now() } else { 0.0 };
        let mut accels = vec![Vec3::ZERO; n];
        let mut potentials = vec![0.0f64; n];
        // On a masked run only active particles report work; keep the
        // previous measurements for the inactive ones so the costzones
        // weights stay meaningful across substeps.
        let mut work = match (mask, &self.prev_work) {
            (Some(_), Some(w)) if w.len() == n => w.clone(),
            _ => vec![0u64; n],
        };
        for s in &self.scratch {
            let mut s = s.lock().unwrap();
            for (pi, phi, acc, it) in s.out.drain(..) {
                accels[pi as usize] = acc;
                potentials[pi as usize] = phi;
                work[pi as usize] = it;
            }
            // High-water-mark shrink between steps: a transient dense group
            // must not pin this worker's slab capacity forever.
            s.buf.maybe_shrink();
        }
        self.prev_work = Some(work);
        // Freeze the tree for the next fine-rung substep to replay against.
        if cfg.list_reuse {
            self.cached_tree = Some(tree);
        }

        let profile = profiled.then(|| {
            let mut prof = StepProfile::new(cfg.threads);
            let rel = |t: f64| (t - t_origin).max(0.0);
            prof.record(Span::new(0, 0, phase::BUILD, 0.0, rel(t_build_end)));
            // Workers that never ran still get (possibly zero-width) spans,
            // so the phase structure is identical with the clock erased.
            for (t, (_, _, w)) in per_thread.iter().enumerate() {
                match cfg.eval_mode {
                    EvalMode::Grouped => {
                        // Walk and kernel interleave per leaf; their
                        // accumulated durations are reported as contiguous
                        // sub-intervals of the worker's evaluation window.
                        let s = rel(w.start);
                        prof.record(Span::new(t, 1, phase::WALK, s, s + w.walk_s));
                        prof.record(Span::new(
                            t,
                            1,
                            phase::KERNEL,
                            s + w.walk_s,
                            s + w.walk_s + w.kernel_s,
                        ));
                    }
                    EvalMode::PerParticle => {
                        prof.record(Span::new(t, 1, phase::EVAL, rel(w.start), rel(w.end)));
                    }
                }
            }
            prof.record(Span::new(0, 2, phase::SCATTER, rel(t_scatter), rel(bhut_obs::now())));
            for c in counters.iter().take(cfg.threads) {
                let snap = c.snapshot();
                prof.totals.merge(&snap);
                prof.per_worker.push(snap);
            }
            prof.wall_s = rel(bhut_obs::now());
            prof
        });

        ForceResult { accels, potentials, stats: total, per_thread_interactions, profile }
    }

    /// The exact tree the force path evaluates: a parallel build in the
    /// particles' bounding cube when more than one thread is configured, a
    /// sequential build otherwise. Exposed so tests and diagnostics inspect
    /// the same tree [`ThreadSim::compute_forces`] walks.
    pub fn build_tree(&self, particles: &[Particle]) -> Tree {
        self.eval_tree(particles)
    }

    fn eval_tree(&self, particles: &[Particle]) -> Tree {
        let cfg = self.config;
        let params = BuildParams::with_leaf_capacity(cfg.leaf_capacity);
        if cfg.threads > 1 && !particles.is_empty() {
            let cell = bhut_geom::Aabb::bounding_cube(particles.iter().map(|p| p.pos), 0.0)
                .expect("non-empty");
            crate::ptree::par_build_in_cell(particles, cell, params)
        } else {
            build(particles, params)
        }
    }
}

/// `threads + 1` equal-count boundaries over `n` items.
fn equal_bounds(n: usize, threads: usize) -> Vec<usize> {
    (0..=threads).map(|t| n * t / threads).collect()
}

/// `parts + 1` boundaries over a weighted item sequence such that each part
/// carries ≈ equal total weight (the costzones split, at item granularity).
fn split_by_weight(weights: &[u64], parts: usize) -> Vec<usize> {
    let total: u64 = weights.iter().map(|&w| w + 1).sum();
    let per = total as f64 / parts as f64;
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        if acc as f64 >= per * bounds.len() as f64 && bounds.len() < parts {
            bounds.push(i);
        }
        acc += w + 1;
    }
    while bounds.len() < parts {
        bounds.push(weights.len());
    }
    bounds.push(weights.len());
    bounds
}

/// Costzones boundaries: split the in-order sequence so each zone carries
/// ≈ equal measured work.
fn weighted_bounds(order: &[u32], work: &[u64], threads: usize) -> Vec<usize> {
    let total: u64 = order.iter().map(|&pi| work[pi as usize] + 1).sum();
    let per = total as f64 / threads as f64;
    let mut bounds = vec![0usize];
    let mut acc = 0u64;
    for (t, &pi) in order.iter().enumerate() {
        if acc as f64 >= per * bounds.len() as f64 && bounds.len() < threads {
            bounds.push(t);
        }
        acc += work[pi as usize] + 1;
    }
    while bounds.len() < threads {
        bounds.push(order.len());
    }
    bounds.push(order.len());
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};
    use bhut_tree::direct;

    fn config(threads: usize, partitioning: Partitioning) -> ThreadConfig {
        ThreadConfig { threads, partitioning, ..Default::default() }
    }

    #[test]
    fn matches_direct_summation_closely() {
        let set = uniform_cube(600, 1.0, 3);
        let mut sim =
            ThreadSim::new(ThreadConfig { alpha: 0.3, ..config(3, Partitioning::MortonZones) });
        let out = sim.compute_forces(&set.particles);
        let exact = direct::all_accels_direct(&set.particles, sim.config.eps);
        let err = direct::fractional_error_vec(&out.accels, &exact);
        assert!(err < 5e-3, "force error {err}");
    }

    #[test]
    fn partitionings_agree_exactly() {
        let set = plummer(PlummerSpec { n: 800, seed: 2, ..Default::default() });
        let mut results = Vec::new();
        for part in [
            Partitioning::StaticBlocks,
            Partitioning::MortonZones,
            Partitioning::SelfScheduling { block: 16 },
        ] {
            let mut sim = ThreadSim::new(config(4, part));
            results.push(sim.compute_forces(&set.particles));
        }
        for r in &results[1..] {
            assert_eq!(r.stats.interactions(), results[0].stats.interactions());
            for i in 0..set.len() {
                assert!((r.potentials[i] - results[0].potentials[i]).abs() < 1e-12);
                assert!(r.accels[i].dist(results[0].accels[i]) < 1e-12);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let set = uniform_cube(400, 1.0, 5);
        let one =
            ThreadSim::new(config(1, Partitioning::StaticBlocks)).compute_forces(&set.particles);
        let four =
            ThreadSim::new(config(4, Partitioning::StaticBlocks)).compute_forces(&set.particles);
        for i in 0..set.len() {
            assert_eq!(one.potentials[i], four.potentials[i]);
            assert_eq!(one.accels[i], four.accels[i]);
        }
    }

    #[test]
    fn morton_zones_balance_clustered_load() {
        // A Plummer core concentrates work; after one warm-up step, the
        // weighted zones should beat static blocks on imbalance.
        let set = plummer(PlummerSpec { n: 4000, seed: 7, ..Default::default() });
        let mut zones = ThreadSim::new(config(4, Partitioning::MortonZones));
        let _ = zones.compute_forces(&set.particles); // warm-up: measure work
        let balanced = zones.compute_forces(&set.particles);

        let mut naive = ThreadSim::new(config(4, Partitioning::StaticBlocks));
        let unbalanced = naive.compute_forces(&set.particles);

        assert!(
            balanced.imbalance() <= unbalanced.imbalance() + 0.02,
            "zones {} vs static {}",
            balanced.imbalance(),
            unbalanced.imbalance()
        );
        assert!(balanced.imbalance() < 1.25, "zones imbalance {}", balanced.imbalance());
    }

    #[test]
    fn self_scheduling_balances_without_history() {
        let set = plummer(PlummerSpec { n: 3000, seed: 8, ..Default::default() });
        let mut sim = ThreadSim::new(config(4, Partitioning::SelfScheduling { block: 32 }));
        let out = sim.compute_forces(&set.particles);
        assert!(out.imbalance() < 1.5, "imbalance {}", out.imbalance());
    }

    #[test]
    fn multipole_degree_improves_accuracy() {
        let set = uniform_cube(500, 1.0, 9);
        let exact = direct::all_potentials_direct(&set.particles, 1e-4);
        let err_at = |degree: u32| {
            let mut sim = ThreadSim::new(ThreadConfig {
                degree,
                alpha: 0.9,
                ..config(2, Partitioning::StaticBlocks)
            });
            let out = sim.compute_forces(&set.particles);
            direct::fractional_error(&out.potentials, &exact)
        };
        assert!(err_at(4) < err_at(0));
    }

    #[test]
    fn eval_modes_agree_exactly() {
        // Grouped walks must reproduce the per-particle reference path:
        // identical interaction counts, values within 1e-12 relative.
        let set = plummer(PlummerSpec { n: 900, seed: 12, ..Default::default() });
        for degree in [0u32, 2] {
            let mut grouped = ThreadSim::new(ThreadConfig {
                degree,
                eval_mode: EvalMode::Grouped,
                ..config(3, Partitioning::MortonZones)
            });
            let mut reference = ThreadSim::new(ThreadConfig {
                degree,
                eval_mode: EvalMode::PerParticle,
                ..config(3, Partitioning::MortonZones)
            });
            let a = grouped.compute_forces(&set.particles);
            let b = reference.compute_forces(&set.particles);
            assert_eq!(a.stats, b.stats, "degree {degree}");
            for i in 0..set.len() {
                let tol = 1e-12;
                assert!(
                    (a.potentials[i] - b.potentials[i]).abs()
                        <= tol * b.potentials[i].abs().max(1.0)
                );
                assert!(a.accels[i].dist(b.accels[i]) <= tol * b.accels[i].norm().max(1.0));
            }
        }
    }

    #[test]
    fn grouped_is_the_default_mode() {
        assert_eq!(ThreadConfig::default().eval_mode, EvalMode::Grouped);
        assert_eq!(ThreadConfig::default().precision, KernelPrecision::F64);
    }

    #[test]
    fn kernel_precisions_through_the_executor() {
        // Same traversal (stats identical), per-precision value tolerances:
        // SIMD f64 within 1e-12 of the scalar baseline, mixed f32 within
        // single-precision noise.
        let set = plummer(PlummerSpec { n: 900, seed: 14, ..Default::default() });
        for degree in [0u32, 2] {
            let run = |precision: KernelPrecision| {
                let mut sim = ThreadSim::new(ThreadConfig {
                    degree,
                    precision,
                    ..config(3, Partitioning::MortonZones)
                });
                sim.compute_forces(&set.particles)
            };
            let scalar = run(KernelPrecision::ScalarF64);
            let simd = run(KernelPrecision::F64);
            let mixed = run(KernelPrecision::MixedF32);
            assert_eq!(scalar.stats, simd.stats, "degree {degree}");
            assert_eq!(scalar.stats, mixed.stats, "degree {degree}");
            for i in 0..set.len() {
                let (p, a) = (scalar.potentials[i], scalar.accels[i]);
                assert!((simd.potentials[i] - p).abs() <= 1e-12 * p.abs().max(1.0));
                assert!(simd.accels[i].dist(a) <= 1e-12 * a.norm().max(1.0));
                assert!((mixed.potentials[i] - p).abs() <= 1e-4 * p.abs().max(1.0));
                assert!(mixed.accels[i].dist(a) <= 1e-4 * a.norm().max(1.0));
            }
        }
    }

    #[test]
    fn profile_reports_lane_utilization() {
        let set = plummer(PlummerSpec { n: 800, seed: 15, ..Default::default() });
        let mut sim = ThreadSim::new(config(2, Partitioning::MortonZones));
        let prof = sim.compute_forces_profiled(&set.particles).profile.unwrap();
        assert!(prof.totals.lane_useful > 0);
        assert!(prof.totals.lane_slots >= prof.totals.lane_useful);
        let u = prof.totals.lane_utilization();
        assert!(u > 0.0 && u <= 1.0, "lane utilization {u}");
        // Per-particle mode runs no slab kernels, so no lanes are counted.
        let mut pp = ThreadSim::new(ThreadConfig {
            eval_mode: EvalMode::PerParticle,
            ..config(2, Partitioning::StaticBlocks)
        });
        let prof = pp.compute_forces_profiled(&set.particles).profile.unwrap();
        assert_eq!(prof.totals.lane_slots, 0);
        assert_eq!(prof.totals.lane_utilization(), 1.0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut sim = ThreadSim::new(config(4, Partitioning::MortonZones));
        let out = sim.compute_forces(&[]);
        assert!(out.accels.is_empty());
        let one = uniform_cube(1, 1.0, 1);
        let out = sim.compute_forces(&one.particles);
        assert_eq!(out.accels.len(), 1);
        assert_eq!(out.accels[0], Vec3::ZERO);
    }

    #[test]
    fn profiled_matches_unprofiled_exactly() {
        let set = plummer(PlummerSpec { n: 700, seed: 3, ..Default::default() });
        for (degree, mode) in
            [(0u32, EvalMode::Grouped), (2, EvalMode::Grouped), (0, EvalMode::PerParticle)]
        {
            let mut a = ThreadSim::new(ThreadConfig {
                degree,
                eval_mode: mode,
                ..config(3, Partitioning::MortonZones)
            });
            let mut b = ThreadSim::new(ThreadConfig {
                degree,
                eval_mode: mode,
                ..config(3, Partitioning::MortonZones)
            });
            let plain = a.compute_forces(&set.particles);
            let prof = b.compute_forces_profiled(&set.particles);
            assert_eq!(plain.stats, prof.stats);
            for i in 0..set.len() {
                assert_eq!(plain.potentials[i], prof.potentials[i]);
                assert_eq!(plain.accels[i], prof.accels[i]);
            }
            assert!(plain.profile.is_none());
            assert!(prof.profile.is_some());
        }
    }

    #[test]
    fn profile_counters_agree_with_stats() {
        let set = plummer(PlummerSpec { n: 1200, seed: 4, ..Default::default() });
        let mut sim = ThreadSim::new(config(4, Partitioning::MortonZones));
        let mut out = sim.compute_forces_profiled(&set.particles);
        let profile = out.profile.take().expect("profiled run attaches a profile");
        // Counter totals reproduce the traversal stats field by field.
        assert_eq!(profile.totals.p2p, out.stats.p2p);
        assert_eq!(profile.totals.m2p, out.stats.p2n);
        assert_eq!(profile.totals.mac_tests, out.stats.mac_tests);
        assert_eq!(profile.totals.interactions(), out.stats.interactions());
        // Per-worker counters reproduce the per-thread interaction split and
        // hence the imbalance diagnostic.
        assert_eq!(profile.per_worker.len(), sim.config.threads);
        let per: Vec<u64> = profile.per_worker.iter().map(|c| c.interactions()).collect();
        assert_eq!(per, out.per_thread_interactions);
        assert_eq!(profile.imbalance(), out.imbalance());
        // The grouped walk classified something in every category on a
        // thousand-body Plummer model.
        assert!(profile.totals.group_accept > 0);
        assert!(profile.totals.group_reject > 0);
        assert!(profile.totals.nodes_opened > 0);
    }

    #[test]
    fn profile_spans_cover_the_phases() {
        let set = plummer(PlummerSpec { n: 500, seed: 6, ..Default::default() });
        let mut sim = ThreadSim::new(config(2, Partitioning::StaticBlocks));
        let prof = sim.compute_forces_profiled(&set.particles).profile.unwrap();
        let phases = prof.phases();
        for want in ["build", "walk", "kernel", "scatter"] {
            assert!(phases.iter().any(|p| p == want), "missing phase {want}: {phases:?}");
        }
        if bhut_obs::RECORDING {
            assert!(prof.wall_s > 0.0);
            assert!(prof.phase_total("walk") + prof.phase_total("kernel") > 0.0);
            // Spans are well-formed intervals within the step window.
            for s in &prof.spans {
                assert!(s.end >= s.start && s.start >= 0.0);
                assert!(s.end <= prof.wall_s + 1e-9);
            }
        }
        // Per-particle mode reports a fused eval phase instead.
        let mut pp = ThreadSim::new(ThreadConfig {
            eval_mode: EvalMode::PerParticle,
            ..config(2, Partitioning::StaticBlocks)
        });
        let prof = pp.compute_forces_profiled(&set.particles).profile.unwrap();
        assert!(prof.phases().iter().any(|p| p == "eval"));
    }

    #[test]
    fn active_subset_is_bitwise_restriction_of_full_run() {
        // Masked evaluation must reproduce the full run's values exactly on
        // the active particles (same tree, same slabs, same kernels — the
        // mask only skips members) and leave inactive outputs zeroed.
        let set = plummer(PlummerSpec { n: 900, seed: 21, ..Default::default() });
        let m: Vec<bool> = (0..set.len()).map(|i| i % 3 == 0).collect();
        let active = ActiveSet::from_mask(m.clone());
        for (degree, mode) in
            [(0u32, EvalMode::Grouped), (2, EvalMode::Grouped), (0, EvalMode::PerParticle)]
        {
            let mk = || {
                ThreadSim::new(ThreadConfig {
                    degree,
                    eval_mode: mode,
                    ..config(3, Partitioning::MortonZones)
                })
            };
            let full = mk().compute_forces(&set.particles);
            let part = mk().compute_forces_active(&set.particles, &active);
            for (i, &is_active) in m.iter().enumerate() {
                if is_active {
                    assert_eq!(part.accels[i], full.accels[i], "degree {degree} mode {mode:?}");
                    assert_eq!(part.potentials[i], full.potentials[i]);
                } else {
                    assert_eq!(part.accels[i], Vec3::ZERO);
                    assert_eq!(part.potentials[i], 0.0);
                }
            }
            // Roughly a third of the particles → roughly a third of the work.
            assert!(part.stats.interactions() < full.stats.interactions());
        }
    }

    #[test]
    fn full_active_set_takes_the_unmasked_path() {
        let set = plummer(PlummerSpec { n: 600, seed: 22, ..Default::default() });
        let active = ActiveSet::all(set.len());
        let mut a = ThreadSim::new(config(3, Partitioning::MortonZones));
        let mut b = ThreadSim::new(config(3, Partitioning::MortonZones));
        let full = a.compute_forces(&set.particles);
        let via_active = b.compute_forces_active(&set.particles, &active);
        assert_eq!(full.stats, via_active.stats);
        for i in 0..set.len() {
            assert_eq!(full.accels[i], via_active.accels[i]);
            assert_eq!(full.potentials[i], via_active.potentials[i]);
        }
    }

    #[test]
    fn active_runs_preserve_costzones_work_history() {
        // After a masked run, inactive particles must keep their previous
        // work weights (a zeroed weight would wreck the next costzones
        // split); active particles get fresh measurements.
        let set = plummer(PlummerSpec { n: 800, seed: 23, ..Default::default() });
        let mut sim = ThreadSim::new(config(2, Partitioning::MortonZones));
        let _ = sim.compute_forces(&set.particles);
        let before = sim.prev_work.clone().unwrap();
        let m: Vec<bool> = (0..set.len()).map(|i| i % 4 == 0).collect();
        let _ = sim.compute_forces_active(&set.particles, &ActiveSet::from_mask(m.clone()));
        let after = sim.prev_work.clone().unwrap();
        for i in 0..set.len() {
            if m[i] {
                assert!(after[i] > 0, "active particle {i} reported no work");
            } else {
                assert_eq!(after[i], before[i], "inactive particle {i} lost its weight");
            }
        }
    }

    #[test]
    fn active_profiled_matches_active_unprofiled() {
        let set = plummer(PlummerSpec { n: 700, seed: 24, ..Default::default() });
        let m: Vec<bool> = (0..set.len()).map(|i| i % 2 == 0).collect();
        let active = ActiveSet::from_mask(m);
        let mut a = ThreadSim::new(config(3, Partitioning::MortonZones));
        let mut b = ThreadSim::new(config(3, Partitioning::MortonZones));
        let plain = a.compute_forces_active(&set.particles, &active);
        let prof = b.compute_forces_active_profiled(&set.particles, &active);
        assert_eq!(plain.stats, prof.stats);
        for i in 0..set.len() {
            assert_eq!(plain.accels[i], prof.accels[i]);
            assert_eq!(plain.potentials[i], prof.potentials[i]);
        }
        assert!(prof.profile.is_some());
    }

    /// The batch classifiers and the scalar trait-default classification
    /// must make identical decisions, so the two walks (and every force)
    /// are bitwise-equal — this is the executor-level pin for the
    /// `force-scalar` fallback.
    #[test]
    fn scalar_mac_classification_is_bitwise_identical() {
        let set = plummer(PlummerSpec { n: 900, seed: 31, ..Default::default() });
        for degree in [0u32, 2] {
            let run = |mac_batch: bool| {
                let mut sim = ThreadSim::new(ThreadConfig {
                    degree,
                    mac_batch,
                    ..config(3, Partitioning::MortonZones)
                });
                sim.compute_forces(&set.particles)
            };
            let batched = run(true);
            let scalar = run(false);
            assert_eq!(batched.stats, scalar.stats, "degree {degree}");
            for i in 0..set.len() {
                assert_eq!(batched.accels[i], scalar.accels[i], "degree {degree} particle {i}");
                assert_eq!(batched.potentials[i], scalar.potentials[i]);
            }
        }
    }

    /// Small deterministic position drift, like a leapfrog substep's.
    fn drift(particles: &mut [Particle], k: u64) {
        for (i, p) in particles.iter_mut().enumerate() {
            let s = 1e-5 * ((i as u64 * 37 + k * 101) % 13) as f64;
            p.pos += Vec3::new(s, -0.5 * s, 0.25 * s);
        }
    }

    fn assert_results_bitwise(a: &ForceResult, b: &ForceResult, ctx: &str) {
        assert_eq!(a.stats, b.stats, "{ctx}: stats");
        assert_eq!(a.accels.len(), b.accels.len());
        for i in 0..a.accels.len() {
            assert_eq!(a.accels[i], b.accels[i], "{ctx}: accel {i}");
            assert_eq!(a.potentials[i], b.potentials[i], "{ctx}: potential {i}");
        }
    }

    /// List replay on frozen-tree substeps must be bitwise-invisible: a sim
    /// whose caches can hold lists and one whose caches are budgeted to zero
    /// (every gather re-walks the same frozen tree) produce identical
    /// forces, while the profile shows the first actually replaying.
    #[test]
    fn list_reuse_substeps_are_bitwise_identical_to_cache_free() {
        let set = plummer(PlummerSpec { n: 700, seed: 33, ..Default::default() });
        let mk = || {
            ThreadSim::new(ThreadConfig {
                list_reuse: true,
                ..config(2, Partitioning::MortonZones)
            })
        };
        let mut a = mk();
        let mut b = mk();
        b.set_walk_cache_budget(0);
        let mut pa = set.particles.clone();
        let mut pb = set.particles.clone();
        let full = ActiveSet::all(set.len());
        let ra = a.compute_forces_substep(&pa, &full, true, false);
        let rb = b.compute_forces_substep(&pb, &full, true, false);
        assert_results_bitwise(&ra, &rb, "full step");
        let prof = ra.profile.as_ref().unwrap();
        assert_eq!(prof.totals.list_hits, 0, "a fresh generation cannot hit");
        assert!(prof.totals.list_misses > 0);
        assert!(prof.totals.list_bytes > 0, "the full step fills the caches");
        for sub in 0..3u64 {
            drift(&mut pa, sub);
            drift(&mut pb, sub);
            let m: Vec<bool> = (0..set.len()).map(|i| i % 3 == sub as usize).collect();
            let act = ActiveSet::from_mask(m);
            let ra = a.compute_forces_substep(&pa, &act, true, true);
            let rb = b.compute_forces_substep(&pb, &act, true, true);
            assert_results_bitwise(&ra, &rb, &format!("substep {sub}"));
            let pa = ra.profile.as_ref().unwrap();
            let pb = rb.profile.as_ref().unwrap();
            assert!(pa.totals.list_hits > 0, "substep {sub} must replay cached lists");
            assert_eq!(pb.totals.list_hits, 0, "a zero-budget cache can never hit");
            assert_eq!(pb.totals.list_bytes, 0);
            assert!(pa.totals.list_hit_rate() > 0.5, "substep {sub}");
        }
    }

    /// A rebuild (any non-reusing computation) bumps the tree generation,
    /// which must evict every cached list: the next sweep misses everywhere.
    /// Static blocks keep the leaf→thread assignment stable across calls, so
    /// within one generation a repeated full sweep is a pure replay.
    #[test]
    fn rebuild_evicts_executor_list_caches() {
        let set = plummer(PlummerSpec { n: 600, seed: 35, ..Default::default() });
        let mut sim = ThreadSim::new(ThreadConfig {
            list_reuse: true,
            ..config(2, Partitioning::StaticBlocks)
        });
        let full = ActiveSet::all(set.len());
        let r = sim.compute_forces_substep(&set.particles, &full, true, false);
        let p = r.profile.unwrap();
        assert!(p.totals.list_misses > 0 && p.totals.list_hits == 0);
        // Frozen-tree substep, positions unchanged: pure replay.
        let r = sim.compute_forces_substep(&set.particles, &full, true, true);
        let p = r.profile.unwrap();
        assert!(p.totals.list_hits > 0 && p.totals.list_misses == 0);
        // A full step rebuilds: generation bump, every gather misses again.
        let r = sim.compute_forces_substep(&set.particles, &full, true, false);
        let p = r.profile.unwrap();
        assert!(p.totals.list_misses > 0 && p.totals.list_hits == 0, "rebuild must evict");
        // And purging is as good as a rebuild.
        let _ = sim.compute_forces_substep(&set.particles, &full, false, true);
        sim.purge_walk_caches();
        let r = sim.compute_forces_substep(&set.particles, &full, true, true);
        let p = r.profile.unwrap();
        assert_eq!(p.totals.list_hits, 0, "purged caches cannot hit");
    }

    /// Reuse silently degrades to a rebuild when it would be unsound: a
    /// particle set of a different cardinality cannot walk the frozen tree.
    #[test]
    fn reuse_with_changed_cardinality_rebuilds() {
        let set = plummer(PlummerSpec { n: 500, seed: 37, ..Default::default() });
        let mut sim = ThreadSim::new(ThreadConfig {
            list_reuse: true,
            ..config(2, Partitioning::MortonZones)
        });
        let _ = sim.compute_forces(&set.particles);
        let fewer = &set.particles[..400];
        let active = ActiveSet::all(fewer.len());
        let r = sim.compute_forces_substep(fewer, &active, true, true);
        assert_eq!(r.accels.len(), 400);
        let p = r.profile.as_ref().unwrap();
        assert_eq!(p.totals.list_hits, 0, "a rebuilt generation cannot hit");
        // Against a fresh sim on the same input: identical.
        let mut fresh = ThreadSim::new(ThreadConfig {
            list_reuse: true,
            ..config(2, Partitioning::MortonZones)
        });
        let want = fresh.compute_forces(fewer);
        assert_results_bitwise(&r, &want, "degraded reuse");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// The ISSUE's invalidation contract: ANY sequence of {rebuild,
        /// substep, mask change, precision change} yields forces
        /// bitwise-identical to the cache-disabled path, with generation
        /// bumps always evicting (checked by mirroring every op on a sim
        /// whose caches never hold anything).
        #[test]
        fn cached_sequences_match_cache_free_bitwise(
            ops in proptest::collection::vec(0u8..4, 1..10),
            seed in 0u64..1_000,
        ) {
            let set = plummer(PlummerSpec { n: 250, seed: seed.wrapping_add(7), ..Default::default() });
            let mk = || {
                ThreadSim::new(ThreadConfig {
                    list_reuse: true,
                    ..config(2, Partitioning::MortonZones)
                })
            };
            let mut a = mk();
            let mut b = mk();
            b.set_walk_cache_budget(0);
            let mut pa = set.particles.clone();
            let mut pb = set.particles.clone();
            let mut mask: Vec<bool> = (0..set.len()).map(|i| i % 2 == 0).collect();
            for (k, &op) in ops.iter().enumerate() {
                match op {
                    // Rebuild: a full step, generation bump, caches evicted.
                    0 => {
                        let ra = a.compute_forces(&pa);
                        let rb = b.compute_forces(&pb);
                        assert_results_bitwise(&ra, &rb, &format!("op {k}: rebuild"));
                    }
                    // Substep: drift, then a frozen-tree masked evaluation.
                    1 => {
                        drift(&mut pa, k as u64);
                        drift(&mut pb, k as u64);
                        let act = ActiveSet::from_mask(mask.clone());
                        let ra = a.compute_forces_substep(&pa, &act, false, true);
                        let rb = b.compute_forces_substep(&pb, &act, false, true);
                        assert_results_bitwise(&ra, &rb, &format!("op {k}: substep"));
                    }
                    // Mask change: rotate which third is active.
                    2 => {
                        mask = (0..set.len()).map(|i| (i + k) % 3 != 0).collect();
                    }
                    // Precision change: cached lists are precision-blind.
                    _ => {
                        let next = match a.config.precision {
                            KernelPrecision::MixedF32 => KernelPrecision::F64,
                            _ => KernelPrecision::MixedF32,
                        };
                        a.config.precision = next;
                        b.config.precision = next;
                    }
                }
            }
        }
    }

    #[test]
    fn build_tree_is_the_tree_the_executor_walks() {
        // The diagnostic tree must come from the same construction path the
        // force computation uses: parallel build in the bounding cube for
        // threads > 1, sequential build for one thread.
        let set = plummer(PlummerSpec { n: 900, seed: 13, ..Default::default() });
        let par_sim = ThreadSim::new(config(4, Partitioning::MortonZones));
        let got = par_sim.build_tree(&set.particles);
        let cell = bhut_geom::Aabb::bounding_cube(set.particles.iter().map(|p| p.pos), 0.0)
            .expect("non-empty");
        let want = crate::ptree::par_build_in_cell(
            &set.particles,
            cell,
            BuildParams::with_leaf_capacity(par_sim.config.leaf_capacity),
        );
        assert_eq!(got.len(), want.len());
        assert_eq!(got.order, want.order);

        let seq_sim = ThreadSim::new(config(1, Partitioning::StaticBlocks));
        let got = seq_sim.build_tree(&set.particles);
        let want =
            build(&set.particles, BuildParams::with_leaf_capacity(seq_sim.config.leaf_capacity));
        assert_eq!(got.len(), want.len());
        assert_eq!(got.order, want.order);
    }
}
