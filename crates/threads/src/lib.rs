//! A real shared-memory parallel Barnes–Hut executor (system **S7**).
//!
//! The paper targets message-passing machines; its intellectual sibling for
//! shared address spaces is the Costzones scheme of Singh et al. \[13\], which
//! SPDA/DPDA adapt to message passing. This crate closes the loop: the same
//! tree, MAC, and multipole machinery executed by *actual* OS threads
//! (crossbeam scoped threads — no unsafe, no data races by construction),
//! with the partitioning strategies the paper discusses:
//!
//! * [`Partitioning::StaticBlocks`] — fixed equal particle counts (the naive
//!   baseline whose imbalance motivates §3.3),
//! * [`Partitioning::MortonZones`] — costzones over the Morton-ordered
//!   particle sequence using measured per-particle work from the previous
//!   step (the shared-memory analogue of DPDA),
//! * [`Partitioning::SelfScheduling`] — dynamic block self-scheduling off a
//!   shared atomic counter (what a work-stealing runtime would do).
//!
//! On a many-core host this delivers real speedups; the test-suite checks
//! correctness and work accounting rather than wall-clock (CI machines may
//! have a single core).

pub mod executor;
pub mod pool;
pub mod ptree;

pub use bhut_tree::KernelPrecision;
pub use executor::{EvalMode, ForceResult, Partitioning, ThreadConfig, ThreadSim};
pub use ptree::par_build_in_cell;
