//! Parallel tree construction for shared memory.
//!
//! The distributed construction of §3.1 has each processor build the
//! subtrees of its own subdomains and then merge tops. The shared-memory
//! rendition: split the root cell into its eight octants, build each
//! octant's subtree on its own thread with the sequential bulk builder,
//! then splice the arenas together under a fresh root. The result is
//! structurally identical to a sequential [`bhut_tree::build::build_in_cell`]
//! with the same parameters (modulo empty-octant ordering, which the
//! sequential builder also skips).

use crate::pool::fork_join;
use bhut_geom::{Aabb, Particle, Vec3};
use bhut_morton::NodeKey;
use bhut_tree::build::{build_in_cell, BuildParams};
use bhut_tree::{Node, Tree, NIL};

/// Build a tree over `particles` in `cell`, with the eight top-level
/// octant subtrees constructed in parallel.
pub fn par_build_in_cell(particles: &[Particle], cell: Aabb, params: BuildParams) -> Tree {
    let n = particles.len();
    // Tiny inputs and forced-split configurations fall back to the
    // sequential builder (forced splits interact with the root split in
    // ways not worth parallelizing).
    if n <= params.leaf_capacity || params.min_split_level > 0 {
        return build_in_cell(particles, cell, params);
    }

    // Bin particles by top-level octant.
    let mut octant_members: [Vec<u32>; 8] = Default::default();
    for (i, p) in particles.iter().enumerate() {
        octant_members[cell.octant_of(p.pos.min(cell.max).max(cell.min))].push(i as u32);
    }

    // Build the eight subtrees in parallel. Each worker gets an owned copy
    // of its octant's particles (indices remapped on splice).
    let subtrees: Vec<Option<(usize, Tree, Vec<u32>)>> = fork_join(8, |oct| {
        let members = &octant_members[oct];
        if members.is_empty() {
            return None;
        }
        let local: Vec<Particle> = members.iter().map(|&i| particles[i as usize]).collect();
        let sub = build_in_cell(&local, cell.octant(oct), params);
        Some((oct, sub, members.clone()))
    });

    // Splice: new arena = [root] ++ subtree arenas (ids offset), order =
    // concatenation with indices mapped back to the global slice, keys
    // re-prefixed under the root.
    let mut nodes: Vec<Node> = Vec::with_capacity(1 + n / params.leaf_capacity.max(1));
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut root_children = [NIL; 8];
    let mut mass = 0.0;
    let mut weighted = Vec3::ZERO;
    nodes.push(Node {
        cell,
        key: NodeKey::ROOT,
        mass: 0.0,
        com: Vec3::ZERO,
        children: [NIL; 8],
        child_mask: 0,
        start: 0,
        end: n as u32,
    });
    for entry in subtrees.into_iter().flatten() {
        let (oct, sub, members) = entry;
        if sub.is_empty() {
            continue;
        }
        let id_offset = nodes.len() as u32;
        let pos_offset = order.len() as u32;
        root_children[oct] = id_offset;
        for node in &sub.nodes {
            let mut children = node.children;
            for c in children.iter_mut() {
                if *c != NIL {
                    *c += id_offset;
                }
            }
            // Re-prefix the key: subtree keys start at ROOT; the subtree
            // root actually sits at ROOT.child(oct) (possibly deeper after
            // collapsing — preserved by path splicing).
            let key = NodeKey::from_path(
                &std::iter::once(oct as u8).chain(node.key.path()).collect::<Vec<u8>>(),
            );
            nodes.push(Node {
                cell: node.cell,
                key,
                mass: node.mass,
                com: node.com,
                children,
                // offsetting child ids never changes occupancy
                child_mask: node.child_mask,
                start: node.start + pos_offset,
                end: node.end + pos_offset,
            });
        }
        order.extend(sub.order.iter().map(|&local_i| members[local_i as usize]));
        let sub_root = &sub.nodes[0];
        mass += sub_root.mass;
        weighted += sub_root.com * sub_root.mass;
    }
    nodes[0].set_children(root_children);
    nodes[0].mass = mass;
    nodes[0].com = if mass > 0.0 { weighted / mass } else { cell.center() };
    Tree { nodes, order, root_cell: cell }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};
    use bhut_tree::BarnesHutMac;

    #[test]
    fn parallel_build_is_valid() {
        let set = uniform_cube(3000, 1.0, 5);
        let cell = set.bounding_cube().unwrap();
        let t = par_build_in_cell(&set.particles, cell, BuildParams::default());
        t.check_invariants(set.len()).unwrap();
        assert_eq!(t.root().count() as usize, set.len());
        assert!((t.root().mass - set.total_mass()).abs() < 1e-9);
    }

    #[test]
    fn matches_sequential_physics() {
        let set = plummer(PlummerSpec { n: 2000, seed: 3, ..Default::default() });
        let cell = set.bounding_cube().unwrap();
        let par = par_build_in_cell(&set.particles, cell, BuildParams::default());
        let seq = build_in_cell(&set.particles, cell, BuildParams::default());
        let mac = BarnesHutMac::new(0.6);
        for p in set.iter().take(100) {
            let (a, _) =
                bhut_tree::potential_at(&par, &set.particles, p.pos, Some(p.id), &mac, 1e-4);
            let (b, _) =
                bhut_tree::potential_at(&seq, &set.particles, p.pos, Some(p.id), &mac, 1e-4);
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn matches_sequential_structure() {
        // Same multiset of (key, particle set) leaves.
        let set = uniform_cube(800, 1.0, 9);
        let cell = set.bounding_cube().unwrap();
        let par = par_build_in_cell(&set.particles, cell, BuildParams::default());
        let seq = build_in_cell(&set.particles, cell, BuildParams::default());
        let leaves = |t: &Tree| {
            let mut v: Vec<(u64, Vec<u32>)> = t
                .nodes
                .iter()
                .filter(|n| n.is_leaf())
                .map(|n| {
                    let mut ps = t.order[n.start as usize..n.end as usize].to_vec();
                    ps.sort_unstable();
                    (n.key.raw(), ps)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(leaves(&par), leaves(&seq));
    }

    #[test]
    fn small_inputs_fall_back() {
        let set = uniform_cube(4, 1.0, 1);
        let cell = set.bounding_cube().unwrap();
        let t = par_build_in_cell(&set.particles, cell, BuildParams::default());
        t.check_invariants(4).unwrap();
        assert!(t.root().is_leaf());
    }

    #[test]
    fn empty_octants_are_fine() {
        // All particles crammed in one octant.
        let set = uniform_cube(500, 1.0, 2);
        let mut clustered = set.clone();
        for p in &mut clustered.particles {
            p.pos *= 0.25; // everything in the low octant
        }
        let cell = Aabb::origin_cube(1.0);
        let t = par_build_in_cell(&clustered.particles, cell, BuildParams::default());
        t.check_invariants(500).unwrap();
        let children: Vec<_> = t.children_of(0).collect();
        assert_eq!(children.len(), 1);
    }
}
