//! Minimal fork-join helpers over std scoped threads.
//!
//! We deliberately avoid a global thread pool: each parallel region spawns
//! scoped workers, which keeps lifetimes simple (borrows of the particle
//! arrays flow straight in) and matches the bulk-synchronous structure of a
//! treecode time-step. Thread counts are small (≤ cores), so spawn cost is
//! negligible next to a force phase.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(thread_index)` on `threads` scoped workers and collect results in
/// thread order.
pub fn fork_join<R: Send>(threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    assert!(threads > 0);
    if threads == 1 {
        return vec![f(0)];
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|t| s.spawn(move || f(t))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Partition `&mut [T]` into `parts` contiguous chunks with the given
/// boundaries (`bounds[i]..bounds[i+1]`), handing each to a worker.
pub fn for_each_zone<T: Send, R: Send>(
    data: &mut [T],
    bounds: &[usize],
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let parts = bounds.len() - 1;
    assert!(parts > 0 && bounds[parts] == data.len());
    if parts == 1 {
        return vec![f(0, data)];
    }
    // Split the slice along the boundaries, then run scoped workers.
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(parts);
    let mut rest = data;
    let mut prev = 0;
    for &b in &bounds[1..] {
        let (head, tail) = rest.split_at_mut(b - prev);
        chunks.push(head);
        rest = tail;
        prev = b;
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> =
            chunks.into_iter().enumerate().map(|(t, chunk)| s.spawn(move || f(t, chunk))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// A shared work counter for block self-scheduling: each call hands out the
/// next block of `block` indices below `total`.
pub struct BlockScheduler {
    next: AtomicUsize,
    total: usize,
    block: usize,
}

impl BlockScheduler {
    pub fn new(total: usize, block: usize) -> Self {
        BlockScheduler { next: AtomicUsize::new(0), total, block: block.max(1) }
    }

    /// The next `[start, end)` block, or `None` when exhausted.
    pub fn grab(&self) -> Option<(usize, usize)> {
        let start = self.next.fetch_add(self.block, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some((start, (start + self.block).min(self.total)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fork_join_collects_in_order() {
        let out = fork_join(4, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn fork_join_single_thread_runs_inline() {
        let out = fork_join(1, |t| t + 7);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn zones_cover_disjoint_slices() {
        let mut data: Vec<u32> = (0..100).collect();
        let bounds = vec![0, 30, 30, 77, 100];
        let lens = for_each_zone(&mut data, &bounds, |t, chunk| {
            for v in chunk.iter_mut() {
                *v += 1000 * (t as u32 + 1);
            }
            chunk.len()
        });
        assert_eq!(lens, vec![30, 0, 47, 23]);
        assert_eq!(data[0], 1000);
        assert_eq!(data[30], 3030);
        assert_eq!(data[99], 4099);
    }

    #[test]
    #[should_panic]
    fn zones_require_full_coverage() {
        let mut data = [0u8; 10];
        let _ = for_each_zone(&mut data, &[0, 5], |_, _| ());
    }

    #[test]
    fn scheduler_hands_out_every_index_once() {
        let sched = BlockScheduler::new(1000, 7);
        let seen = AtomicU64::new(0);
        fork_join(4, |_| {
            let mut local = 0u64;
            while let Some((a, b)) = sched.grab() {
                local += (a..b).map(|i| i as u64).sum::<u64>();
            }
            seen.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), (0..1000u64).sum());
    }

    #[test]
    fn scheduler_empty() {
        let sched = BlockScheduler::new(0, 8);
        assert_eq!(sched.grab(), None);
    }
}
