//! The unified tree/particle partition the force engine consumes.
//!
//! Whatever the scheme — SPSA/SPDA cluster grids or DPDA costzones — the
//! force-computation phase only needs to know three things (§3.1–3.2):
//!
//! 1. the **branch nodes**: the coarsest tree nodes owned exclusively by one
//!    processor ("the shaded nodes… referred to as branch nodes"),
//! 2. which processor owns each tree node (branch subtrees), with the *top*
//!    of the tree — everything above the branches — replicated on all
//!    processors after the merge/broadcast phases, and
//! 3. which processor drives the traversal of each particle.
//!
//! [`Partition::from_clusters`] derives this for the static cluster grid;
//! [`Partition::costzones`] implements the DPDA split: per-node interaction
//! loads are spread over the in-order (Z-curve) particle sequence, prefix
//! sums locate the `iW/p` boundaries, and maximal single-owner subtrees
//! become the branches.

use crate::domain::ClusterGrid;
use bhut_morton::NodeKey;
use bhut_tree::{NodeId, Tree, NIL};

/// One branch node: the root of a processor-owned subtree.
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    pub node: NodeId,
    pub key: NodeKey,
    pub owner: usize,
    /// Originating cluster for cluster-based schemes; `u32::MAX` for
    /// costzones partitions.
    pub cluster: u32,
}

/// Ownership maps for one decomposition of one tree.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Number of processors.
    pub p: usize,
    /// Branch nodes in Z (in-order) order.
    pub branches: Vec<BranchInfo>,
    /// Owner per tree node; `-1` marks replicated top nodes.
    pub owner_of_node: Vec<i32>,
    /// Owner (traversal driver) per particle.
    pub owner_of_particle: Vec<usize>,
    /// Replicated top nodes (`owner_of_node == -1`), in walk order.
    pub top_nodes: Vec<NodeId>,
}

impl Partition {
    /// Build the partition induced by a cluster grid and a cluster→processor
    /// assignment. The tree must have been built with
    /// `min_split_level == grid.level()` over `grid.cell` so every non-empty
    /// subdomain has an explicit node at the branch level.
    pub fn from_clusters(
        tree: &Tree,
        grid: &ClusterGrid,
        owner_of_cluster: &[usize],
        p: usize,
    ) -> Partition {
        assert_eq!(owner_of_cluster.len(), grid.r(), "one owner per cluster");
        let level = grid.level();
        let mut owner_of_node = vec![-1i32; tree.len()];
        let mut branches = Vec::new();
        let mut top_nodes = Vec::new();
        if tree.is_empty() {
            return Partition {
                p,
                branches,
                owner_of_node,
                owner_of_particle: Vec::new(),
                top_nodes,
            };
        }
        // Walk the top of the tree; stop descending at branch level.
        let mut stack = vec![0 as NodeId];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            if node.key.level() == level {
                let cluster = grid.cluster_of(node.cell.center());
                let owner = owner_of_cluster[cluster as usize];
                branches.push(BranchInfo { node: id, key: node.key, owner, cluster });
                mark_subtree(tree, id, owner as i32, &mut owner_of_node);
            } else {
                debug_assert!(
                    node.key.level() < level,
                    "tree skipped the branch level (built without min_split_level?)"
                );
                top_nodes.push(id);
                for &c in node.children.iter().rev() {
                    if c != NIL {
                        stack.push(c);
                    }
                }
            }
        }
        branches.sort_by_key(|b| tree.node(b.node).start);
        // Particles are driven by the owner of their cluster.
        let owner_of_particle = (0..tree.order.len()).map(|_| 0).collect::<Vec<_>>();
        let mut part = Partition { p, branches, owner_of_node, owner_of_particle, top_nodes };
        for b in &part.branches {
            for &pi in tree.particles_under(b.node) {
                part.owner_of_particle[pi as usize] = b.owner;
            }
        }
        part
    }

    /// DPDA costzones: split the in-order particle sequence at load
    /// boundaries `iW/p` (§3.3.3) and carve maximal single-owner subtrees as
    /// branches. `node_loads[id]` is the number of interactions node `id`
    /// took part in during the previous time-step; when all-zero (first
    /// iteration) the split degenerates to equal particle counts.
    pub fn costzones(tree: &Tree, node_loads: &[u64], p: usize) -> Partition {
        let weights = particle_weights_from_node_loads(tree, node_loads);
        Self::costzones_weighted(tree, &weights, p)
    }

    /// Costzones from per-*particle* weights (indexed by particle index).
    /// This is the form that survives tree rebuilds between time-steps: the
    /// driver converts the previous step's node loads to particle weights
    /// and re-applies them to the fresh tree.
    pub fn costzones_weighted(tree: &Tree, particle_weight: &[f64], p: usize) -> Partition {
        let n = tree.order.len();
        assert_eq!(particle_weight.len(), n);
        let mut owner_of_node = vec![-1i32; tree.len()];
        if n == 0 {
            return Partition {
                p,
                branches: Vec::new(),
                owner_of_node,
                owner_of_particle: Vec::new(),
                top_nodes: Vec::new(),
            };
        }
        // Weight per in-order position (epsilon keeps all-zero loads
        // count-based).
        let weight: Vec<f64> =
            tree.order.iter().map(|&pi| particle_weight[pi as usize] + 1e-12).collect();
        let total: f64 = weight.iter().sum();
        // zone_of_position[t] = which processor owns in-order position t.
        let mut zone_of_position = vec![0usize; n];
        let mut acc = 0.0;
        let per = total / p as f64;
        let mut zone = 0usize;
        for (t, w) in weight.iter().enumerate() {
            // close the zone when the *next* particle would overshoot
            if acc >= per * (zone + 1) as f64 && zone + 1 < p {
                zone += 1;
            }
            acc += w;
            zone_of_position[t] = zone;
        }
        // Owner per particle (positions → original indices).
        let mut owner_of_particle = vec![0usize; n];
        for (t, &pi) in tree.order.iter().enumerate() {
            owner_of_particle[pi as usize] = zone_of_position[t];
        }
        // Branches: maximal subtrees whose position range sits in one zone.
        let mut branches = Vec::new();
        let mut top_nodes = Vec::new();
        let mut stack = vec![0 as NodeId];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            let z0 = zone_of_position[node.start as usize];
            let z1 = zone_of_position[node.end as usize - 1];
            if z0 == z1 || node.is_leaf() {
                // A leaf spanning a boundary cannot be split further; its
                // owner is the zone of its first particle (particle owners
                // stay per the zone map — driving and serving may differ).
                let owner = z0;
                branches.push(BranchInfo { node: id, key: node.key, owner, cluster: u32::MAX });
                mark_subtree(tree, id, owner as i32, &mut owner_of_node);
            } else {
                top_nodes.push(id);
                for &c in node.children.iter().rev() {
                    if c != NIL {
                        stack.push(c);
                    }
                }
            }
        }
        branches.sort_by_key(|b| tree.node(b.node).start);
        Partition { p, branches, owner_of_node, owner_of_particle, top_nodes }
    }

    /// Particle indices owned by each processor.
    pub fn particles_by_owner(&self) -> Vec<Vec<u32>> {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.p];
        for (pi, &q) in self.owner_of_particle.iter().enumerate() {
            lists[q].push(pi as u32);
        }
        lists
    }

    /// Branch count per processor (the paper keeps this "of the order of
    /// hundreds or less" per processor, §4.2.3).
    pub fn branches_per_owner(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.p];
        for b in &self.branches {
            counts[b.owner] += 1;
        }
        counts
    }

    /// Structural sanity checks; returns the first violation.
    pub fn check(&self, tree: &Tree) -> Result<(), String> {
        let mut covered = 0u32;
        for b in &self.branches {
            let node = tree.node(b.node);
            covered += node.count();
            if self.owner_of_node[b.node as usize] != b.owner as i32 {
                return Err(format!("branch {} owner mismatch", b.node));
            }
        }
        if covered as usize != tree.order.len() {
            return Err(format!("branches cover {covered} of {} particles", tree.order.len()));
        }
        for &t in &self.top_nodes {
            if self.owner_of_node[t as usize] != -1 {
                return Err(format!("top node {t} has an owner"));
            }
        }
        if self.owner_of_particle.iter().any(|&q| q >= self.p) {
            return Err("particle owner out of range".into());
        }
        Ok(())
    }
}

/// Spread per-node interaction loads onto per-particle weights: each node's
/// load is divided equally among the particles of its subtree. This is how
/// the previous time-step's tree loads survive a rebuild (§3.3: "The number
/// of force computations associated with a part of the tree in one time-step
/// can be used to balance load in the next time-step").
pub fn particle_weights_from_node_loads(tree: &Tree, node_loads: &[u64]) -> Vec<f64> {
    assert_eq!(node_loads.len(), tree.len());
    let n = tree.order.len();
    let mut weights = vec![0.0f64; n];
    if n == 0 {
        return weights;
    }
    let mut stack = vec![(0 as NodeId, 0.0f64)];
    while let Some((id, inherited)) = stack.pop() {
        let node = tree.node(id);
        let share = inherited + node_loads[id as usize] as f64 / node.count() as f64;
        if node.is_leaf() {
            for t in node.start..node.end {
                weights[tree.order[t as usize] as usize] += share;
            }
        } else {
            for &c in &node.children {
                if c != NIL {
                    stack.push((c, share));
                }
            }
        }
    }
    weights
}

/// Mark every node of the subtree rooted at `root` with `owner`.
fn mark_subtree(tree: &Tree, root: NodeId, owner: i32, owner_of_node: &mut [i32]) {
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        owner_of_node[id as usize] = owner;
        for c in tree.children_of(id) {
            stack.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::spsa_assignment;
    use bhut_geom::{uniform_cube, Aabb};
    use bhut_tree::build::{build_in_cell, BuildParams};

    fn setup(c: u32, n: usize) -> (Tree, ClusterGrid, bhut_geom::ParticleSet) {
        let set = uniform_cube(n, 100.0, 7);
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(c, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        (tree, grid, set)
    }

    #[test]
    fn cluster_partition_covers_everything() {
        let (tree, grid, set) = setup(4, 800);
        let owners = spsa_assignment(&grid, 4);
        let part = Partition::from_clusters(&tree, &grid, &owners, 4);
        part.check(&tree).unwrap();
        assert_eq!(part.owner_of_particle.len(), set.len());
        // every branch is at the grid level
        for b in &part.branches {
            assert_eq!(b.key.level(), grid.level());
            assert!(b.cluster != u32::MAX);
        }
        // all four processors hold something for a uniform distribution
        let counts = part.branches_per_owner();
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn cluster_partition_particle_owner_matches_cluster_owner() {
        let (tree, grid, set) = setup(4, 500);
        let owners = spsa_assignment(&grid, 4);
        let part = Partition::from_clusters(&tree, &grid, &owners, 4);
        for (pi, p) in set.particles.iter().enumerate() {
            let cl = grid.cluster_of(p.pos) as usize;
            assert_eq!(part.owner_of_particle[pi], owners[cl], "particle {pi}");
        }
    }

    #[test]
    fn top_nodes_are_above_branches() {
        let (tree, grid, _) = setup(8, 2000);
        let owners = spsa_assignment(&grid, 16);
        let part = Partition::from_clusters(&tree, &grid, &owners, 16);
        for &t in &part.top_nodes {
            assert!(tree.node(t).key.level() < grid.level());
        }
        // union of top + owned = all nodes
        let tops = part.owner_of_node.iter().filter(|&&o| o == -1).count();
        assert_eq!(tops, part.top_nodes.len());
    }

    #[test]
    fn costzones_equal_counts_without_loads() {
        let (tree, _, set) = setup(4, 1000);
        let loads = vec![0u64; tree.len()];
        let part = Partition::costzones(&tree, &loads, 4);
        part.check(&tree).unwrap();
        let lists = part.particles_by_owner();
        for l in &lists {
            let frac = l.len() as f64 / set.len() as f64;
            assert!((frac - 0.25).abs() < 0.05, "zone got {frac}");
        }
    }

    #[test]
    fn costzones_balances_weighted_loads() {
        let (tree, _, _) = setup(4, 2000);
        // Put heavy load on the first half of the in-order sequence by
        // loading the leaves there.
        let mut loads = vec![0u64; tree.len()];
        for (id, node) in tree.nodes.iter().enumerate() {
            if node.is_leaf() && (node.end as usize) < 1000 {
                loads[id] = 1000 * node.count() as u64;
            }
        }
        let part = Partition::costzones(&tree, &loads, 4);
        part.check(&tree).unwrap();
        let lists = part.particles_by_owner();
        // Heavily loaded front half should be split among more processors:
        // processor 0 gets far fewer particles than processor 3.
        assert!(
            lists[0].len() * 2 < lists[3].len(),
            "{:?}",
            lists.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn costzones_zones_are_contiguous_in_order() {
        let (tree, _, _) = setup(4, 600);
        let loads = vec![1u64; tree.len()];
        let part = Partition::costzones(&tree, &loads, 8);
        let zones: Vec<usize> =
            tree.order.iter().map(|&pi| part.owner_of_particle[pi as usize]).collect();
        // non-decreasing along the Z-curve
        assert!(zones.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn costzones_single_processor() {
        let (tree, _, _) = setup(4, 300);
        let part = Partition::costzones(&tree, &vec![0; tree.len()], 1);
        part.check(&tree).unwrap();
        assert_eq!(part.branches.len(), 1);
        assert_eq!(part.branches[0].node, 0);
        assert!(part.top_nodes.is_empty());
    }

    #[test]
    fn empty_tree_partitions() {
        let cell = Aabb::origin_cube(1.0);
        let tree = build_in_cell(&[], cell, BuildParams::default());
        let grid = ClusterGrid::new(4, cell);
        let part = Partition::from_clusters(&tree, &grid, &[0; 16], 4);
        assert!(part.branches.is_empty());
        let part = Partition::costzones(&tree, &[], 4);
        assert!(part.branches.is_empty());
    }
}
