//! Ownership-aware traversal: the computational kernel of function shipping.
//!
//! [`eval_owned`] walks the tree for one particle the way a processor in the
//! paper's formulation can (§3.2): freely through the replicated top and its
//! own branch subtrees, treating *remote* branch nodes as opaque records —
//! MAC-acceptable from their broadcast mass/COM/series, but on MAC failure
//! emitted to `remote` for shipping instead of being expanded. [`eval_from`]
//! is the serving side: the full traversal of one owned subtree for a
//! shipped particle.
//!
//! Both return the paper's flop count for the work performed
//! (`14/MAC + (13 + 16k²)/interaction`, §5.2.1) so the simulated machine can
//! charge virtual time, and optionally accumulate per-node interaction loads
//! for the DPDA balancer.

use bhut_geom::{Particle, Vec3};
use bhut_multipole::{interaction_flops, MultipoleTree, MAC_FLOPS};
use bhut_tree::traverse::{accel_kernel, potential_kernel};
use bhut_tree::{Mac, NodeId, Tree, NIL};

/// Everything the evaluation kernels need to see, shared by all processors
/// of a simulated machine. (In the real machine each processor holds its
/// local tree plus the replicated top; here ownership is enforced by the
/// walker against `owner_of_node`.)
pub struct EvalEnv<'a, M: Mac> {
    pub tree: &'a Tree,
    pub particles: &'a [Particle],
    /// Per-node expansions when degree > 0; monopole (mass/COM) otherwise.
    pub mtree: Option<&'a MultipoleTree>,
    pub mac: &'a M,
    pub eps: f64,
    pub degree: u32,
}

/// Result of one (partial) particle evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalResult {
    pub phi: f64,
    pub acc: Vec3,
    /// Paper-model flops performed.
    pub flops: u64,
    pub p2n: u64,
    pub p2p: u64,
    pub mac_tests: u64,
}

impl EvalResult {
    pub fn interactions(&self) -> u64 {
        self.p2n + self.p2p
    }

    pub fn merge(&mut self, o: &EvalResult) {
        self.phi += o.phi;
        self.acc += o.acc;
        self.flops += o.flops;
        self.p2n += o.p2n;
        self.p2p += o.p2p;
        self.mac_tests += o.mac_tests;
    }
}

/// Evaluate the locally computable part of the interaction of `point` and
/// emit `(owner, branch_node)` pairs for every remote subtree that must be
/// shipped. `skip_id` is the particle's own id (excluded from direct sums).
#[allow(clippy::too_many_arguments)]
pub fn eval_owned<M: Mac>(
    env: &EvalEnv<'_, M>,
    point: Vec3,
    skip_id: Option<u32>,
    me: usize,
    owner_of_node: &[i32],
    mut node_loads: Option<&mut [u64]>,
    remote: &mut Vec<(usize, NodeId)>,
) -> EvalResult {
    walk(env, 0, point, skip_id, Some((me, owner_of_node, remote)), &mut node_loads)
}

/// Serve a shipped particle: evaluate the entire subtree under `root`
/// (§3.2: "Processor 1 then computes the contribution of the entire subtree
/// rooted at node B on particle i").
pub fn eval_from<M: Mac>(
    env: &EvalEnv<'_, M>,
    root: NodeId,
    point: Vec3,
    skip_id: Option<u32>,
    mut node_loads: Option<&mut [u64]>,
) -> EvalResult {
    walk(env, root, point, skip_id, None, &mut node_loads)
}

/// Ownership context for a local walk: (my rank, node owners, remote sink).
type Ownership<'a> = (usize, &'a [i32], &'a mut Vec<(usize, NodeId)>);

fn walk<M: Mac>(
    env: &EvalEnv<'_, M>,
    root: NodeId,
    point: Vec3,
    skip_id: Option<u32>,
    mut ownership: Option<Ownership<'_>>,
    node_loads: &mut Option<&mut [u64]>,
) -> EvalResult {
    let tree = env.tree;
    let mut r = EvalResult::default();
    if tree.is_empty() {
        return r;
    }
    let mut stack: Vec<NodeId> = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        let count = node.count();
        if count == 0 {
            continue;
        }
        let is_remote = match &ownership {
            Some((me, owners, _)) => {
                let o = owners[id as usize];
                o >= 0 && o != *me as i32
            }
            None => false,
        };
        if count == 1 {
            // A singleton is a direct interaction. For remote singleton
            // branches the broadcast record (mass at COM) *is* the particle,
            // so the interaction is exact and local either way.
            if is_remote {
                r.p2p += 1;
                r.flops += interaction_flops(0);
                r.phi += potential_kernel(point, node.com, node.mass, env.eps);
                r.acc += accel_kernel(point, node.com, node.mass, env.eps);
                if let Some(loads) = node_loads.as_deref_mut() {
                    loads[id as usize] += 1;
                }
            } else {
                let pi = tree.order[node.start as usize];
                let p = &env.particles[pi as usize];
                if Some(p.id) != skip_id {
                    r.p2p += 1;
                    r.flops += interaction_flops(0);
                    r.phi += potential_kernel(point, p.pos, p.mass, env.eps);
                    r.acc += accel_kernel(point, p.pos, p.mass, env.eps);
                    if let Some(loads) = node_loads.as_deref_mut() {
                        loads[id as usize] += 1;
                    }
                }
            }
            continue;
        }
        r.mac_tests += 1;
        r.flops += MAC_FLOPS;
        if env.mac.accept(&node.cell, node.com, point) {
            r.p2n += 1;
            r.flops += interaction_flops(env.degree);
            match env.mtree {
                Some(mt) => {
                    let (phi, acc) = mt.expansions[id as usize].eval(point);
                    r.phi += phi;
                    r.acc += acc;
                }
                None => {
                    r.phi += potential_kernel(point, node.com, node.mass, env.eps);
                    r.acc += accel_kernel(point, node.com, node.mass, env.eps);
                }
            }
            if let Some(loads) = node_loads.as_deref_mut() {
                loads[id as usize] += 1;
            }
        } else if is_remote {
            // MAC failed on a remote branch: ship the particle to its owner.
            if let Some((_, owners, remote)) = &mut ownership {
                remote.push((owners[id as usize] as usize, id));
            }
        } else if node.is_leaf() {
            for &pi in tree.particles_under(id) {
                let p = &env.particles[pi as usize];
                if Some(p.id) != skip_id {
                    r.p2p += 1;
                    r.flops += interaction_flops(0);
                    r.phi += potential_kernel(point, p.pos, p.mass, env.eps);
                    r.acc += accel_kernel(point, p.pos, p.mass, env.eps);
                    if let Some(loads) = node_loads.as_deref_mut() {
                        loads[id as usize] += 1;
                    }
                }
            }
        } else {
            for &c in node.children.iter().rev() {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::spsa_assignment;
    use crate::domain::ClusterGrid;
    use crate::partition::Partition;
    use bhut_geom::{uniform_cube, Aabb, ParticleSet};
    use bhut_tree::build::{build_in_cell, BuildParams};
    use bhut_tree::BarnesHutMac;

    const EPS: f64 = 1e-6;

    fn setup(p: usize) -> (Tree, Partition, ParticleSet) {
        let set = uniform_cube(1200, 100.0, 13);
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        let owners = spsa_assignment(&grid, p);
        let part = Partition::from_clusters(&tree, &grid, &owners, p);
        (tree, part, set)
    }

    /// The fundamental function-shipping identity: local part + served
    /// remote parts == sequential evaluation.
    #[test]
    fn local_plus_remote_equals_sequential() {
        let (tree, part, set) = setup(4);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        for p in set.iter().take(50) {
            let me = part.owner_of_particle[p.id as usize];
            let mut remote = Vec::new();
            let mut total =
                eval_owned(&env, p.pos, Some(p.id), me, &part.owner_of_node, None, &mut remote);
            for &(owner, branch) in &remote {
                assert_ne!(owner, me);
                let served = eval_from(&env, branch, p.pos, Some(p.id), None);
                total.merge(&served);
            }
            let (want_phi, _) =
                bhut_tree::potential_at(&tree, &set.particles, p.pos, Some(p.id), &mac, EPS);
            let (want_acc, _) =
                bhut_tree::accel_on(&tree, &set.particles, p.pos, Some(p.id), &mac, EPS);
            assert!(
                (total.phi - want_phi).abs() < 1e-9 * want_phi.abs().max(1.0),
                "phi {} vs {}",
                total.phi,
                want_phi
            );
            assert!(total.acc.dist(want_acc) < 1e-9 * want_acc.norm().max(1.0));
        }
    }

    #[test]
    fn single_processor_never_ships() {
        let (tree, part, set) = setup(1);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let mut remote = Vec::new();
        for p in set.iter().take(20) {
            let _ = eval_owned(&env, p.pos, Some(p.id), 0, &part.owner_of_node, None, &mut remote);
        }
        assert!(remote.is_empty());
    }

    #[test]
    fn remote_requests_shrink_with_looser_mac() {
        let (tree, part, set) = setup(16);
        let count_remote = |alpha: f64| -> usize {
            let mac = BarnesHutMac::new(alpha);
            let env = EvalEnv {
                tree: &tree,
                particles: &set.particles,
                mtree: None,
                mac: &mac,
                eps: EPS,
                degree: 0,
            };
            let mut total = 0;
            for p in set.iter() {
                let me = part.owner_of_particle[p.id as usize];
                let mut remote = Vec::new();
                let _ =
                    eval_owned(&env, p.pos, Some(p.id), me, &part.owner_of_node, None, &mut remote);
                total += remote.len();
            }
            total
        };
        // §5.2.3: larger α turns far-field work into accepted local
        // interactions, reducing communication.
        assert!(count_remote(1.0) < count_remote(0.5));
    }

    #[test]
    fn flop_accounting_matches_counters() {
        let (tree, part, set) = setup(4);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let p = &set.particles[42];
        let me = part.owner_of_particle[42];
        let mut remote = Vec::new();
        let r = eval_owned(&env, p.pos, Some(p.id), me, &part.owner_of_node, None, &mut remote);
        assert_eq!(r.flops, r.mac_tests * MAC_FLOPS + (r.p2n + r.p2p) * interaction_flops(0));
    }

    #[test]
    fn node_loads_accumulate() {
        let (tree, part, set) = setup(4);
        let mac = BarnesHutMac::new(0.8);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let mut loads = vec![0u64; tree.len()];
        let mut interactions = 0;
        for p in set.iter().take(30) {
            let me = part.owner_of_particle[p.id as usize];
            let mut remote = Vec::new();
            let r = eval_owned(
                &env,
                p.pos,
                Some(p.id),
                me,
                &part.owner_of_node,
                Some(&mut loads),
                &mut remote,
            );
            interactions += r.interactions();
            for &(_, branch) in &remote {
                let s = eval_from(&env, branch, p.pos, Some(p.id), Some(&mut loads));
                interactions += s.interactions();
            }
        }
        assert_eq!(loads.iter().sum::<u64>(), interactions);
    }
}
