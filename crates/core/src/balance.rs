//! Processor-assignment strategies and per-iteration rebalancing.
//!
//! * [`spsa_assignment`] — §3.3.1: cluster `(i, j)` goes to processor
//!   `(gray(i, d/2), gray(j, d/2))` on a `d`-cube; with `r > p` the indices
//!   wrap (modular assignment), scattering adjacent dense clusters over
//!   distinct processors.
//! * [`spda_initial`] / [`spda_rebalance`] — §3.3.2: clusters ordered along
//!   the Morton (or, for the ablation, Hilbert) curve, carved into `p`
//!   contiguous runs of ≈`W/p` measured load.
//! * DPDA's rebalancing lives in [`crate::partition::Partition::costzones`];
//!   this module adds the cost accounting shared by all schemes
//!   ([`movement_cost`]).

use crate::domain::ClusterGrid;
use bhut_machine::{CostModel, Topology};
use bhut_morton::subdomain_to_processor_2d;

/// Which parallel formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Static partitioning, static (gray-code modular) assignment.
    Spsa,
    /// Static partitioning, dynamic Morton-ordered assignment.
    Spda,
    /// Dynamic partitioning (costzones), dynamic assignment.
    Dpda,
}

impl Scheme {
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Spsa => "SPSA",
            Scheme::Spda => "SPDA",
            Scheme::Dpda => "DPDA",
        }
    }
}

/// Space-filling curve used to order clusters in SPDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curve {
    Morton,
    Hilbert,
}

/// SPSA: gray-code modular mapping of the `c×c` grid onto `p = 2^d`
/// processors.
///
/// # Panics
/// If `p` is not a power of two.
pub fn spsa_assignment(grid: &ClusterGrid, p: usize) -> Vec<usize> {
    assert!(p.is_power_of_two(), "SPSA requires a hypercube (power-of-two p)");
    let d = p.trailing_zeros();
    (0..grid.r() as u32)
        .map(|cl| {
            let (i, j) = grid.coords(cl);
            subdomain_to_processor_2d(i as u64, j as u64, d) as usize
        })
        .collect()
}

/// SPDA initial assignment (no loads known yet): equal-length contiguous
/// runs of the curve order.
pub fn spda_initial(grid: &ClusterGrid, p: usize, curve: Curve) -> Vec<usize> {
    let order = curve_order(grid, curve);
    let r = order.len();
    let mut owners = vec![0usize; r];
    for (pos, &cl) in order.iter().enumerate() {
        owners[cl as usize] = (pos * p / r).min(p - 1);
    }
    owners
}

/// SPDA rebalance: given per-cluster loads measured in the previous
/// iteration, carve the curve order into `p` contiguous runs of ≈`W/p` load
/// each (§3.3.2: processors import/export clusters at the ends of their
/// runs until loads match the global average).
pub fn spda_rebalance(grid: &ClusterGrid, loads: &[f64], p: usize, curve: Curve) -> Vec<usize> {
    assert_eq!(loads.len(), grid.r());
    let order = curve_order(grid, curve);
    let total: f64 = loads.iter().sum();
    let per = (total / p as f64).max(f64::MIN_POSITIVE);
    let mut owners = vec![0usize; loads.len()];
    let mut acc = 0.0;
    let mut q = 0usize;
    for &cl in &order {
        // Close the current run when the boundary falls nearer to `acc`
        // than to `acc + load` (round-to-nearest, avoiding the systematic
        // overshoot of a pure greedy rule).
        let l = loads[cl as usize];
        let boundary = per * (q + 1) as f64;
        if q + 1 < p && acc + 0.5 * l >= boundary {
            q += 1;
        }
        owners[cl as usize] = q;
        acc += l;
    }
    owners
}

fn curve_order(grid: &ClusterGrid, curve: Curve) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..grid.r() as u32).collect();
    match curve {
        Curve::Morton => ids.sort_by_key(|&c| grid.morton_of(c)),
        Curve::Hilbert => ids.sort_by_key(|&c| grid.hilbert_of(c)),
    }
    ids
}

/// Charge the clock cost of moving reassigned data between processors:
/// `moved[src][dst]` items of `words_per_item` each travel point-to-point.
/// Returns `(messages, words)` for the report.
pub fn movement_cost<T: Topology>(
    clocks: &mut [f64],
    moved: &[Vec<u64>],
    words_per_item: u64,
    topo: &T,
    cost: &CostModel,
) -> (u64, u64) {
    let p = topo.p();
    assert_eq!(moved.len(), p);
    let mut msgs = 0u64;
    let mut words = 0u64;
    // Each pair exchanges one message; receivers see the max arrival.
    let mut arrivals: Vec<f64> = clocks.to_vec();
    for (src, row) in moved.iter().enumerate() {
        assert_eq!(row.len(), p);
        for (dst, &count) in row.iter().enumerate() {
            if count == 0 || src == dst {
                continue;
            }
            let w = count * words_per_item;
            msgs += 1;
            words += w;
            clocks[src] += cost.message_time(0, w) - cost.t_h * 0.0; // sender occupancy
            let arrival = clocks[src] + cost.t_h * topo.hops(src, dst) as f64;
            arrivals[dst] = arrivals[dst].max(arrival);
        }
    }
    for (c, a) in clocks.iter_mut().zip(arrivals) {
        *c = c.max(a);
    }
    (msgs, words)
}

/// Count items that change owner between two assignments, as a `p×p`
/// movement matrix. `weight[i]` is how many items entry `i` represents
/// (particles per cluster, or 1 per particle).
pub fn movement_matrix(old: &[usize], new: &[usize], weight: &[u64], p: usize) -> Vec<Vec<u64>> {
    assert_eq!(old.len(), new.len());
    assert_eq!(old.len(), weight.len());
    let mut m = vec![vec![0u64; p]; p];
    for ((&o, &n), &w) in old.iter().zip(new).zip(weight) {
        if o != n {
            m[o][n] += w;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::Aabb;
    use bhut_machine::Hypercube;

    fn grid(c: u32) -> ClusterGrid {
        ClusterGrid::new(c, Aabb::origin_cube(100.0))
    }

    #[test]
    fn spsa_round_robins_all_processors() {
        let g = grid(8); // 64 clusters
        let owners = spsa_assignment(&g, 16);
        // every processor gets exactly r/p = 4 clusters
        let mut counts = vec![0usize; 16];
        for &o in &owners {
            counts[o] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn spsa_adjacent_clusters_differ_in_processor() {
        // The modular gray mapping sends neighboring clusters to
        // neighboring (hence distinct) processors — the scattering that
        // provides SPSA's statistical balance.
        let g = grid(16);
        let owners = spsa_assignment(&g, 256);
        for j in 0..16u32 {
            for i in 0..15u32 {
                let a = owners[(j * 16 + i) as usize];
                let b = owners[(j * 16 + i + 1) as usize];
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn spda_initial_contiguous_runs() {
        let g = grid(8);
        let owners = spda_initial(&g, 4, Curve::Morton);
        // along the Morton order, owner ids are non-decreasing
        let order = g.morton_order();
        let seq: Vec<usize> = order.iter().map(|&c| owners[c as usize]).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]));
        let mut counts = vec![0usize; 4];
        for &o in &owners {
            counts[o] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16), "{counts:?}");
    }

    #[test]
    fn spda_rebalance_moves_boundaries_toward_load() {
        let g = grid(8);
        // all load in the first cluster of the Morton order
        let order = g.morton_order();
        let mut loads = vec![1.0; 64];
        loads[order[0] as usize] = 1000.0;
        let owners = spda_rebalance(&g, &loads, 4, Curve::Morton);
        // processor 0 should own only the hot cluster (plus maybe a couple)
        let p0: usize = owners.iter().filter(|&&o| o == 0).count();
        assert!(p0 <= 3, "processor 0 got {p0} clusters");
        // still contiguous
        let seq: Vec<usize> = order.iter().map(|&c| owners[c as usize]).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn spda_rebalance_even_loads_even_runs() {
        let g = grid(8);
        let owners = spda_rebalance(&g, &vec![1.0; 64], 8, Curve::Morton);
        let mut counts = vec![0usize; 8];
        for &o in &owners {
            counts[o] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8), "{counts:?}");
    }

    #[test]
    fn hilbert_curve_also_partitions() {
        let g = grid(8);
        let owners = spda_initial(&g, 4, Curve::Hilbert);
        let mut counts = vec![0usize; 4];
        for &o in &owners {
            counts[o] += 1;
        }
        assert_eq!(counts, vec![16; 4]);
    }

    #[test]
    fn movement_matrix_counts_changes() {
        let old = vec![0, 0, 1, 1];
        let new = vec![0, 1, 1, 0];
        let w = vec![10, 20, 30, 40];
        let m = movement_matrix(&old, &new, &w, 2);
        assert_eq!(m[0][1], 20);
        assert_eq!(m[1][0], 40);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn movement_cost_charges_both_ends() {
        let topo = Hypercube::new(4);
        let cost = CostModel::unit();
        let mut clocks = vec![0.0; 4];
        let mut moved = vec![vec![0u64; 4]; 4];
        moved[0][1] = 5;
        let (msgs, words) = movement_cost(&mut clocks, &moved, 2, &topo, &cost);
        assert_eq!(msgs, 1);
        assert_eq!(words, 10);
        assert!(clocks[0] > 0.0);
        assert!(clocks[1] >= clocks[0]);
        assert_eq!(clocks[2], 0.0);
    }
}
