//! The data-shipping comparator (§4.2).
//!
//! In the owner-computes paradigm the requesting processor *fetches* the
//! children of every rejected remote node — paying `Θ(k²)` series words per
//! node — and caches them in a hash table. The paper argues (and Tables 6/7
//! corroborate) that function shipping wins because its communication volume
//! is independent of the multipole degree.
//!
//! We reproduce the comparison with an exact volume model: the *same*
//! traversals are replayed against the partition, but instead of shipping
//! particles we count the remote nodes whose data would have to be fetched.
//! Each distinct `(processor, node)` fetch is paid once (an ideal, perfectly
//! warm cache — generous to data shipping; a real bounded cache would evict
//! and refetch, §4.2.4).

use crate::evalcore::EvalEnv;
use crate::partition::Partition;
use bhut_geom::Particle;
use bhut_multipole::flops::{series_words_3d, FUNCTION_SHIP_WORDS, RESULT_WORDS};
use bhut_tree::{Mac, NodeId, Tree, NIL};
use std::collections::HashSet;

/// Communication volumes (in words) of the two paradigms for one force
/// phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShippingComparison {
    /// Words moved by function shipping: requests + replies.
    pub function_words: u64,
    /// Words moved by data shipping: fetched node records.
    pub data_words: u64,
    /// Remote particle shipments.
    pub shipped_particles: u64,
    /// Distinct remote nodes fetched.
    pub fetched_nodes: u64,
}

/// Walk the whole force phase and tally both paradigms' volumes at multipole
/// degree `degree`.
pub fn compare_shipping<M: Mac>(
    env: &EvalEnv<'_, M>,
    partition: &Partition,
    degree: u32,
) -> ShippingComparison {
    let tree = env.tree;
    let mut cmp = ShippingComparison::default();
    if tree.is_empty() {
        return cmp;
    }
    // Per requesting processor: the set of remote nodes it would fetch.
    let mut fetched: Vec<HashSet<NodeId>> = (0..partition.p).map(|_| HashSet::new()).collect();

    for (pi, particle) in env.particles.iter().enumerate() {
        let me = partition.owner_of_particle[pi];
        // Function shipping: walk, stop at remote branches.
        let mut remote = Vec::new();
        let _ = crate::evalcore::eval_owned(
            env,
            particle.pos,
            Some(particle.id),
            me,
            &partition.owner_of_node,
            None,
            &mut remote,
        );
        cmp.shipped_particles += remote.len() as u64;
        cmp.function_words += remote.len() as u64 * (FUNCTION_SHIP_WORDS + RESULT_WORDS);

        // Data shipping: continue *into* remote subtrees, fetching every
        // node the traversal touches (its record must be local to apply the
        // MAC / read children). Fetches are deduplicated per processor.
        for &(_, branch) in &remote {
            walk_fetching(env, particle, branch, me, &mut fetched);
        }
    }
    for set in &fetched {
        cmp.fetched_nodes += set.len() as u64;
    }
    cmp.data_words = cmp.fetched_nodes * series_words_3d(degree);
    cmp
}

/// Continue the traversal below a remote branch, recording fetched nodes.
fn walk_fetching<M: Mac>(
    env: &EvalEnv<'_, M>,
    particle: &Particle,
    root: NodeId,
    me: usize,
    fetched: &mut [HashSet<NodeId>],
) {
    let tree: &Tree = env.tree;
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        if node.count() == 0 {
            continue;
        }
        // The node's record must be resident to test/evaluate it.
        fetched[me].insert(id);
        if node.count() == 1 {
            continue;
        }
        if env.mac.accept(&node.cell, node.com, particle.pos) {
            continue;
        }
        if node.is_leaf() {
            continue; // leaf particle data fetched with the node record
        }
        for &c in &node.children {
            if c != NIL {
                stack.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::spsa_assignment;
    use crate::domain::ClusterGrid;
    use bhut_geom::{uniform_cube, Aabb};
    use bhut_tree::build::{build_in_cell, BuildParams};
    use bhut_tree::BarnesHutMac;

    fn comparison(degree: u32, alpha: f64) -> ShippingComparison {
        let p = 16;
        let set = uniform_cube(1500, 100.0, 17);
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        let part = Partition::from_clusters(&tree, &grid, &spsa_assignment(&grid, p), p);
        let mac = BarnesHutMac::new(alpha);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: 1e-6,
            degree,
        };
        compare_shipping(&env, &part, degree)
    }

    #[test]
    fn function_shipping_volume_is_degree_independent() {
        let d0 = comparison(0, 0.7);
        let d5 = comparison(5, 0.7);
        assert_eq!(d0.function_words, d5.function_words);
        assert_eq!(d0.shipped_particles, d5.shipped_particles);
    }

    #[test]
    fn data_shipping_volume_grows_quadratically_with_degree() {
        let d2 = comparison(2, 0.7);
        let d6 = comparison(6, 0.7);
        assert_eq!(d2.fetched_nodes, d6.fetched_nodes);
        let ratio = d6.data_words as f64 / d2.data_words as f64;
        let expect = series_words_3d(6) as f64 / series_words_3d(2) as f64;
        assert!((ratio - expect).abs() < 1e-9);
        assert!(ratio > 4.0);
    }

    #[test]
    fn function_shipping_wins_at_high_degree() {
        // §4.2.1: "data-shipping schemes require significantly higher
        // communication than function shipping" for multipoles.
        let c = comparison(6, 0.7);
        assert!(
            c.function_words < c.data_words,
            "function {} vs data {}",
            c.function_words,
            c.data_words
        );
    }

    #[test]
    fn volumes_are_nonzero_and_consistent() {
        let c = comparison(4, 0.7);
        assert!(c.shipped_particles > 0);
        assert_eq!(c.function_words, c.shipped_particles * 8);
        assert!(c.fetched_nodes > 0);
    }
}
