//! Static domain decomposition into a cluster grid.
//!
//! §3.3.1: the simulated domain is partitioned into `r > p` subdomains
//! ("clusters"). The paper's cluster counts (16×16 … 256×256) are 2-D grids
//! over the domain: a cluster is a *column* of the 3-D domain in `x, y`.
//! Each cluster corresponds to the set of oct-tree cells at level `log₂ c`
//! that share its `(i, j)` footprint, so cluster ownership induces tree-node
//! ownership at (and below) that level.

use bhut_geom::{Aabb, Particle, Vec3};
use bhut_morton::{encode_2d, hilbert_index_2d};

/// A `c×c` grid of column clusters over the domain cube (`c` a power of
/// two).
#[derive(Debug, Clone, Copy)]
pub struct ClusterGrid {
    /// Clusters per axis.
    pub c: u32,
    /// The domain cube the grid tiles (the tree's root cell).
    pub cell: Aabb,
}

impl ClusterGrid {
    /// # Panics
    /// If `c` is not a power of two (cluster boundaries must align with
    /// oct-tree cells).
    pub fn new(c: u32, cell: Aabb) -> Self {
        assert!(c.is_power_of_two(), "cluster grid side must be a power of two, got {c}");
        ClusterGrid { c, cell }
    }

    /// Total number of clusters `r = c²`.
    #[inline]
    pub fn r(&self) -> usize {
        (self.c * self.c) as usize
    }

    /// The oct-tree level whose cells have this grid's footprint.
    #[inline]
    pub fn level(&self) -> u32 {
        self.c.trailing_zeros()
    }

    /// Grid coordinates of the cluster containing `p` (clamped to the grid).
    #[inline]
    pub fn coords_of(&self, p: Vec3) -> (u32, u32) {
        let side = self.cell.side();
        let f = self.c as f64 / side;
        let i = (((p.x - self.cell.min.x) * f) as i64).clamp(0, self.c as i64 - 1) as u32;
        let j = (((p.y - self.cell.min.y) * f) as i64).clamp(0, self.c as i64 - 1) as u32;
        (i, j)
    }

    /// Linear cluster index (row-major) of the cluster containing `p`.
    #[inline]
    pub fn cluster_of(&self, p: Vec3) -> u32 {
        let (i, j) = self.coords_of(p);
        j * self.c + i
    }

    /// Grid coordinates from a linear index.
    #[inline]
    pub fn coords(&self, cluster: u32) -> (u32, u32) {
        (cluster % self.c, cluster / self.c)
    }

    /// Morton (Z-curve) number of a cluster — the SPDA ordering key (§3.3.2).
    #[inline]
    pub fn morton_of(&self, cluster: u32) -> u64 {
        let (i, j) = self.coords(cluster);
        encode_2d(i, j)
    }

    /// Peano–Hilbert number of a cluster (the Costzones ordering), for the
    /// curve ablation.
    #[inline]
    pub fn hilbert_of(&self, cluster: u32) -> u64 {
        let (i, j) = self.coords(cluster);
        hilbert_index_2d(i, j, self.level())
    }

    /// All cluster indices sorted along the Morton curve — "this ordering can
    /// be computed in advance and stored in a sorted list".
    pub fn morton_order(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.r() as u32).collect();
        ids.sort_by_key(|&c| self.morton_of(c));
        ids
    }

    /// Bin every particle to its cluster: returns `cluster_of_particle` and
    /// per-cluster particle lists (indices into `particles`).
    pub fn bin_particles(&self, particles: &[Particle]) -> (Vec<u32>, Vec<Vec<u32>>) {
        let mut of = Vec::with_capacity(particles.len());
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.r()];
        for (idx, p) in particles.iter().enumerate() {
            let c = self.cluster_of(p.pos);
            of.push(c);
            lists[c as usize].push(idx as u32);
        }
        (of, lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::uniform_cube;

    fn grid(c: u32) -> ClusterGrid {
        ClusterGrid::new(c, Aabb::origin_cube(100.0))
    }

    #[test]
    fn basic_shape() {
        let g = grid(16);
        assert_eq!(g.r(), 256);
        assert_eq!(g.level(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = grid(12);
    }

    #[test]
    fn coords_roundtrip() {
        let g = grid(8);
        for cl in 0..g.r() as u32 {
            let (i, j) = g.coords(cl);
            assert_eq!(j * 8 + i, cl);
        }
    }

    #[test]
    fn cluster_of_respects_boundaries() {
        let g = grid(4); // 25-unit cells
        assert_eq!(g.coords_of(Vec3::new(0.0, 0.0, 50.0)), (0, 0));
        assert_eq!(g.coords_of(Vec3::new(24.9, 0.0, 0.0)), (0, 0));
        assert_eq!(g.coords_of(Vec3::new(25.1, 0.0, 0.0)), (1, 0));
        assert_eq!(g.coords_of(Vec3::new(99.9, 99.9, 0.0)), (3, 3));
        // z is ignored: clusters are columns
        assert_eq!(
            g.cluster_of(Vec3::new(10.0, 10.0, 1.0)),
            g.cluster_of(Vec3::new(10.0, 10.0, 99.0))
        );
        // out-of-domain points clamp
        assert_eq!(g.coords_of(Vec3::new(-5.0, 200.0, 0.0)), (0, 3));
    }

    #[test]
    fn binning_partitions_particles() {
        let set = uniform_cube(500, 100.0, 3);
        let g = grid(8);
        let (of, lists) = g.bin_particles(&set.particles);
        assert_eq!(of.len(), 500);
        let total: usize = lists.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        for (cl, list) in lists.iter().enumerate() {
            for &pi in list {
                assert_eq!(of[pi as usize], cl as u32);
            }
        }
    }

    #[test]
    fn morton_order_is_permutation_and_z_shaped() {
        let g = grid(4);
        let order = g.morton_order();
        assert_eq!(order.len(), 16);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>());
        // First four clusters in Z order = the 2×2 block at the origin.
        let first: Vec<(u32, u32)> = order[..4].iter().map(|&c| g.coords(c)).collect();
        assert_eq!(first, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn hilbert_order_is_permutation() {
        let g = grid(8);
        let mut ids: Vec<u32> = (0..64).collect();
        ids.sort_by_key(|&c| g.hilbert_of(c));
        let keys: Vec<u64> = ids.iter().map(|&c| g.hilbert_of(c)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }
}
