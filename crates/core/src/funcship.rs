//! The function-shipping force computation as a BSP program (§3.2).
//!
//! Each virtual processor traverses the tree for its own particles. When a
//! traversal fails the MAC at a *remote* branch node, the particle's
//! coordinates (3 words) and the branch key are dropped into a **bin** for
//! the owning processor; a bin is transmitted when it reaches
//! [`ForceConfig::bin_size`] entries ("In our implementations, we typically
//! collect 100 particles before communicating them"). At most **one** bin
//! may be outstanding per source–destination pair ("we do not allow two bins
//! to be outstanding between the same source–destination pair"): if a bin
//! fills while its predecessor is unanswered, the processor stalls local
//! work and serves incoming requests instead — which is exactly what a step
//! of this program does anyway.
//!
//! The serving processor resolves the key through its branch-lookup table
//! (§4.2.3), computes the contribution of the whole subtree, and returns the
//! accumulated potential and force (one reply message per request bin).

use crate::branch::{BranchLookup, SortedLookup};
use crate::evalcore::{eval_from, eval_owned, EvalEnv, EvalResult};
use crate::partition::Partition;
use bhut_geom::Vec3;
use bhut_machine::{Ctx, Machine, Program, RunReport, Status, Topology};
use bhut_multipole::flops::{FUNCTION_SHIP_WORDS, RESULT_WORDS};
use bhut_tree::{Mac, NodeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Tunables of the shipping protocol.
#[derive(Debug, Clone, Copy)]
pub struct ForceConfig {
    /// Particles per request bin (the paper uses 100).
    pub bin_size: usize,
    /// Hard cap on own particles traversed per superstep.
    pub batch: usize,
    /// Work quantum per superstep, in model flops: the batch loop stops once
    /// this much local work is charged, so message handling interleaves at
    /// a period of a few message latencies regardless of multipole degree
    /// (the paper's machines service remote requests via interrupts —
    /// "processors must periodically process remote work requests").
    pub quantum_flops: u64,
}

impl Default for ForceConfig {
    fn default() -> Self {
        ForceConfig { bin_size: 100, batch: 16, quantum_flops: 4096 }
    }
}

/// One shipped particle.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Raw branch key (resolved by the owner's lookup table).
    pub key_raw: u64,
    pub point: Vec3,
    /// Particle id to exclude from direct sums (self-interaction guard).
    pub skip: u32,
    /// Requester-local result slot, echoed back in the reply.
    pub slot: u32,
}

/// One returned contribution.
#[derive(Debug, Clone, Copy)]
pub struct Reply {
    pub slot: u32,
    pub phi: f64,
    pub acc: Vec3,
}

/// Protocol messages.
pub enum ShipMsg {
    Requests(Vec<Request>),
    Replies(Vec<Reply>),
}

/// Aggregate counters harvested from one processor after the run.
#[derive(Debug, Clone, Default)]
pub struct ProcOutcome {
    /// `(particle index, potential, acceleration)` for owned particles.
    pub results: Vec<(u32, f64, Vec3)>,
    pub own_flops: u64,
    pub service_flops: u64,
    pub requests_sent: u64,
    pub requests_served: u64,
    pub p2n: u64,
    pub p2p: u64,
    pub mac_tests: u64,
    /// Flops attributed per cluster (empty when the scheme is clusterless).
    pub cluster_flops: Vec<u64>,
}

/// The per-processor program.
pub struct ForceProgram<'a, M: Mac> {
    me: usize,
    env: &'a EvalEnv<'a, M>,
    owner_of_node: &'a [i32],
    lookup: SortedLookup,
    my_particles: Vec<u32>,
    cluster_of_particle: Option<&'a [u32]>,
    cluster_of_branch: Option<&'a HashMap<NodeId, u32>>,
    node_loads: Option<Rc<RefCell<Vec<u64>>>>,
    cfg: ForceConfig,
    // protocol state
    cursor: usize,
    acc: Vec<(f64, Vec3)>,
    pending_replies: u64,
    bins: Vec<Vec<Request>>,
    outstanding: Vec<u32>,
    scratch_remote: Vec<(usize, NodeId)>,
    pub out: ProcOutcome,
}

impl<'a, M: Mac> ForceProgram<'a, M> {
    fn serve(&mut self, reqs: &[Request], ctx: &mut Ctx<'_, ShipMsg>, src: usize) {
        let mut replies = Vec::with_capacity(reqs.len());
        for req in reqs {
            let root = self
                .lookup
                .find(req.key_raw)
                .expect("request for a branch this processor does not own");
            let mut loads_guard = self.node_loads.as_ref().map(|l| l.borrow_mut());
            let r = eval_from(
                self.env,
                root,
                req.point,
                Some(req.skip),
                loads_guard.as_deref_mut().map(|v| &mut v[..]),
            );
            drop(loads_guard);
            ctx.charge_flops(r.flops);
            self.tally(&r, true, self.cluster_of_branch.and_then(|m| m.get(&root).copied()));
            replies.push(Reply { slot: req.slot, phi: r.phi, acc: r.acc });
        }
        self.out.requests_served += reqs.len() as u64;
        ctx.send(src, replies.len() as u64 * RESULT_WORDS, ShipMsg::Replies(replies));
    }

    fn tally(&mut self, r: &EvalResult, service: bool, cluster: Option<u32>) {
        if service {
            self.out.service_flops += r.flops;
        } else {
            self.out.own_flops += r.flops;
        }
        self.out.p2n += r.p2n;
        self.out.p2p += r.p2p;
        self.out.mac_tests += r.mac_tests;
        if let Some(cl) = cluster {
            if let Some(v) = self.out.cluster_flops.get_mut(cl as usize) {
                *v += r.flops;
            }
        }
    }

    fn flush(&mut self, dst: usize, ctx: &mut Ctx<'_, ShipMsg>) {
        let bin = std::mem::take(&mut self.bins[dst]);
        debug_assert!(!bin.is_empty());
        self.out.requests_sent += bin.len() as u64;
        self.outstanding[dst] += 1;
        ctx.send(dst, bin.len() as u64 * FUNCTION_SHIP_WORDS, ShipMsg::Requests(bin));
    }

    /// True if some bin is full but cannot be sent (flow-control stall).
    fn stalled(&self) -> bool {
        self.bins.iter().zip(&self.outstanding).any(|(b, &o)| b.len() >= self.cfg.bin_size && o > 0)
    }

    fn locally_complete(&self) -> bool {
        self.cursor == self.my_particles.len()
            && self.pending_replies == 0
            && self.bins.iter().all(Vec::is_empty)
    }

    /// Harvest results once the run is over.
    fn finalize(&mut self) {
        if self.out.results.is_empty() && !self.my_particles.is_empty() {
            self.out.results = self
                .my_particles
                .iter()
                .zip(&self.acc)
                .map(|(&pi, &(phi, acc))| (pi, phi, acc))
                .collect();
        }
    }
}

impl<M: Mac> Program for ForceProgram<'_, M> {
    type Msg = ShipMsg;

    fn step(&mut self, ctx: &mut Ctx<'_, ShipMsg>) -> Status {
        // 1. Handle incoming traffic.
        for env in ctx.inbox() {
            match env.payload {
                ShipMsg::Requests(reqs) => self.serve(&reqs, ctx, env.src),
                ShipMsg::Replies(reps) => {
                    self.outstanding[env.src] = self.outstanding[env.src].saturating_sub(1);
                    for rep in reps {
                        let slot = rep.slot as usize;
                        self.acc[slot].0 += rep.phi;
                        self.acc[slot].1 += rep.acc;
                        self.pending_replies -= 1;
                    }
                }
            }
        }

        // 2. Traverse own particles (bounded work quantum, stall on flow
        //    control).
        let mut processed = 0;
        let mut step_flops = 0u64;
        while self.cursor < self.my_particles.len()
            && processed < self.cfg.batch
            && step_flops < self.cfg.quantum_flops
            && !self.stalled()
        {
            let slot = self.cursor;
            let pi = self.my_particles[slot];
            let particle = &self.env.particles[pi as usize];
            self.scratch_remote.clear();
            let mut remote = std::mem::take(&mut self.scratch_remote);
            let mut loads_guard = self.node_loads.as_ref().map(|l| l.borrow_mut());
            let r = eval_owned(
                self.env,
                particle.pos,
                Some(particle.id),
                self.me,
                self.owner_of_node,
                loads_guard.as_deref_mut().map(|v| &mut v[..]),
                &mut remote,
            );
            drop(loads_guard);
            ctx.charge_flops(r.flops);
            step_flops += r.flops;
            let cl = self.cluster_of_particle.map(|c| c[pi as usize]);
            self.tally(&r, false, cl);
            self.acc[slot].0 += r.phi;
            self.acc[slot].1 += r.acc;
            for &(owner, branch) in &remote {
                let key_raw = self.env.tree.node(branch).key.raw();
                self.bins[owner].push(Request {
                    key_raw,
                    point: particle.pos,
                    skip: particle.id,
                    slot: slot as u32,
                });
                self.pending_replies += 1;
            }
            self.scratch_remote = remote;
            self.cursor += 1;
            processed += 1;
            // Transmit any bin that just filled (flow control permitting).
            for dst in 0..self.bins.len() {
                if self.bins[dst].len() >= self.cfg.bin_size && self.outstanding[dst] == 0 {
                    self.flush(dst, ctx);
                }
            }
        }

        // 3. Out of local work: drain partial bins.
        if self.cursor == self.my_particles.len() {
            for dst in 0..self.bins.len() {
                if !self.bins[dst].is_empty() && self.outstanding[dst] == 0 {
                    self.flush(dst, ctx);
                }
            }
        }

        if self.locally_complete() {
            self.finalize();
            // Stay alive (Blocked) to serve remote requests; global
            // quiescence terminates the run.
            Status::Blocked
        } else if self.cursor < self.my_particles.len() && !self.stalled() {
            Status::Ready
        } else {
            Status::Blocked
        }
    }
}

/// Everything [`run_force_phase`] returns.
#[derive(Debug, Clone, Default)]
pub struct ForceRun {
    pub report: RunReport,
    /// Potential per particle (indexed by particle index).
    pub potentials: Vec<f64>,
    /// Acceleration per particle.
    pub accels: Vec<Vec3>,
    pub p2n: u64,
    pub p2p: u64,
    pub mac_tests: u64,
    pub requests: u64,
    pub own_flops: u64,
    pub service_flops: u64,
    /// Per-cluster flops (for the SPDA balancer), if clusters were given.
    pub cluster_flops: Vec<u64>,
    /// Per-node interaction loads (for the DPDA balancer), if requested.
    pub node_loads: Option<Vec<u64>>,
}

/// Execute the force-computation phase for one partition on one machine.
#[allow(clippy::too_many_arguments)]
pub fn run_force_phase<T: Topology, M: Mac>(
    machine: &Machine<T>,
    env: &EvalEnv<'_, M>,
    partition: &Partition,
    cluster_of_particle: Option<&[u32]>,
    num_clusters: usize,
    track_node_loads: bool,
    cfg: ForceConfig,
) -> ForceRun {
    let p = machine.p();
    assert_eq!(partition.p, p, "partition built for a different machine size");
    let node_loads = track_node_loads.then(|| Rc::new(RefCell::new(vec![0u64; env.tree.len()])));
    let cluster_of_branch: HashMap<NodeId, u32> = partition
        .branches
        .iter()
        .filter(|b| b.cluster != u32::MAX)
        .map(|b| (b.node, b.cluster))
        .collect();
    let by_owner = partition.particles_by_owner();

    let programs: Vec<ForceProgram<'_, M>> = (0..p)
        .map(|me| {
            let mine = by_owner[me].clone();
            let lookup = SortedLookup::new(
                partition.branches.iter().filter(|b| b.owner == me).map(|b| (b.key.raw(), b.node)),
            );
            ForceProgram {
                me,
                env,
                owner_of_node: &partition.owner_of_node,
                lookup,
                acc: vec![(0.0, Vec3::ZERO); mine.len()],
                my_particles: mine,
                cluster_of_particle,
                cluster_of_branch: cluster_of_particle.map(|_| &cluster_of_branch),
                node_loads: node_loads.clone(),
                cfg,
                cursor: 0,
                pending_replies: 0,
                bins: vec![Vec::new(); p],
                outstanding: vec![0; p],
                scratch_remote: Vec::new(),
                out: ProcOutcome {
                    cluster_flops: vec![
                        0;
                        if cluster_of_particle.is_some() { num_clusters } else { 0 }
                    ],
                    ..Default::default()
                },
            }
        })
        .collect();

    let (report, programs) = machine.run_programs(programs);

    let n = env.particles.len();
    let mut run = ForceRun {
        report,
        potentials: vec![0.0; n],
        accels: vec![Vec3::ZERO; n],
        cluster_flops: vec![0; if cluster_of_particle.is_some() { num_clusters } else { 0 }],
        ..Default::default()
    };
    for mut prog in programs {
        prog.finalize();
        for (pi, phi, acc) in &prog.out.results {
            run.potentials[*pi as usize] = *phi;
            run.accels[*pi as usize] = *acc;
        }
        run.p2n += prog.out.p2n;
        run.p2p += prog.out.p2p;
        run.mac_tests += prog.out.mac_tests;
        run.requests += prog.out.requests_sent;
        run.own_flops += prog.out.own_flops;
        run.service_flops += prog.out.service_flops;
        for (a, b) in run.cluster_flops.iter_mut().zip(&prog.out.cluster_flops) {
            *a += b;
        }
    }
    run.node_loads = node_loads.map(|l| Rc::try_unwrap(l).expect("sole owner").into_inner());
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{spda_initial, spsa_assignment, Curve};
    use crate::domain::ClusterGrid;
    use bhut_geom::{uniform_cube, Aabb, ParticleSet};
    use bhut_machine::{CostModel, Hypercube};
    use bhut_tree::build::{build_in_cell, BuildParams};
    use bhut_tree::{BarnesHutMac, Tree};

    const EPS: f64 = 1e-6;

    fn setup(p: usize, n: usize) -> (Tree, ClusterGrid, ParticleSet, Vec<usize>) {
        let set = uniform_cube(n, 100.0, 21);
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        let owners = spsa_assignment(&grid, p);
        (tree, grid, set, owners)
    }

    fn sequential_reference(
        tree: &Tree,
        set: &ParticleSet,
        mac: &BarnesHutMac,
    ) -> (Vec<f64>, Vec<Vec3>) {
        set.particles
            .iter()
            .map(|p| {
                let (phi, _) =
                    bhut_tree::potential_at(tree, &set.particles, p.pos, Some(p.id), mac, EPS);
                let (acc, _) =
                    bhut_tree::accel_on(tree, &set.particles, p.pos, Some(p.id), mac, EPS);
                (phi, acc)
            })
            .unzip()
    }

    #[test]
    fn parallel_results_match_sequential() {
        let p = 16;
        let (tree, grid, set, owners) = setup(p, 1500);
        let part = crate::partition::Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        let run = run_force_phase(
            &machine,
            &env,
            &part,
            None,
            0,
            false,
            ForceConfig { bin_size: 20, batch: 16, ..Default::default() },
        );
        let (want_phi, want_acc) = sequential_reference(&tree, &set, &mac);
        for i in 0..set.len() {
            assert!(
                (run.potentials[i] - want_phi[i]).abs() < 1e-9 * want_phi[i].abs().max(1.0),
                "particle {i}: {} vs {}",
                run.potentials[i],
                want_phi[i]
            );
            assert!(run.accels[i].dist(want_acc[i]) < 1e-9 * want_acc[i].norm().max(1.0));
        }
        assert!(run.requests > 0, "16 processors must ship something");
        assert!(run.report.messages > 0);
    }

    #[test]
    fn single_processor_sends_nothing() {
        let (tree, grid, set, _) = setup(1, 400);
        let part = crate::partition::Partition::from_clusters(&tree, &grid, &vec![0; 64], 1);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(1), CostModel::ncube2());
        let run = run_force_phase(&machine, &env, &part, None, 0, false, ForceConfig::default());
        assert_eq!(run.requests, 0);
        assert_eq!(run.report.messages, 0);
        assert_eq!(run.service_flops, 0);
    }

    #[test]
    fn smaller_bins_mean_more_messages_same_words() {
        let p = 8;
        let (tree, grid, set, _) = setup(p, 1200);
        let owners = spda_initial(&grid, p, Curve::Morton);
        let part = crate::partition::Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(0.6);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        let run_with = |bin_size: usize| {
            run_force_phase(
                &machine,
                &env,
                &part,
                None,
                0,
                false,
                ForceConfig { bin_size, batch: 32, ..Default::default() },
            )
        };
        let small = run_with(5);
        let large = run_with(200);
        assert_eq!(small.requests, large.requests, "work must not depend on bin size");
        assert!(small.report.messages > large.report.messages);
        // identical physics
        for i in 0..set.len() {
            assert!((small.potentials[i] - large.potentials[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn node_loads_cover_all_interactions() {
        let p = 4;
        let (tree, grid, set, owners) = setup(p, 800);
        let part = crate::partition::Partition::from_clusters(&tree, &grid, &owners, p);
        let mac = BarnesHutMac::new(0.8);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        let run = run_force_phase(&machine, &env, &part, None, 0, true, ForceConfig::default());
        let loads = run.node_loads.unwrap();
        assert_eq!(loads.iter().sum::<u64>(), run.p2n + run.p2p);
    }

    #[test]
    fn cluster_flops_sum_to_total() {
        let p = 4;
        let (tree, grid, set, owners) = setup(p, 600);
        let part = crate::partition::Partition::from_clusters(&tree, &grid, &owners, p);
        let (cluster_of, _) = grid.bin_particles(&set.particles);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: None,
            mac: &mac,
            eps: EPS,
            degree: 0,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        let run = run_force_phase(
            &machine,
            &env,
            &part,
            Some(&cluster_of),
            grid.r(),
            false,
            ForceConfig::default(),
        );
        let by_cluster: u64 = run.cluster_flops.iter().sum();
        assert_eq!(by_cluster, run.own_flops + run.service_flops);
    }
}

#[cfg(test)]
mod multipole_tests {
    use super::*;
    use crate::balance::spsa_assignment;
    use crate::domain::ClusterGrid;
    use crate::partition::Partition;
    use bhut_geom::{uniform_cube, Aabb};
    use bhut_machine::{CostModel, Hypercube};
    use bhut_multipole::MultipoleTree;
    use bhut_tree::build::{build_in_cell, BuildParams};
    use bhut_tree::BarnesHutMac;

    /// Degree-4 function shipping equals the sequential degree-4 evaluation:
    /// the serving processor's expansion evaluations are identical to the
    /// ones the owner of the particle would have performed.
    #[test]
    fn parallel_multipole_matches_sequential() {
        let p = 8;
        let set = uniform_cube(900, 100.0, 57);
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        let mt = MultipoleTree::new(&tree, &set.particles, 4);
        let part = Partition::from_clusters(&tree, &grid, &spsa_assignment(&grid, p), p);
        let mac = BarnesHutMac::new(0.7);
        let env = EvalEnv {
            tree: &tree,
            particles: &set.particles,
            mtree: Some(&mt),
            mac: &mac,
            eps: 1e-4,
            degree: 4,
        };
        let machine = Machine::new(Hypercube::new(p), CostModel::cm5());
        let run = run_force_phase(&machine, &env, &part, None, 0, false, ForceConfig::default());
        for particle in set.iter() {
            let (phi, acc, _) =
                mt.eval(&tree, &set.particles, particle.pos, Some(particle.id), &mac, 1e-4);
            let got_phi = run.potentials[particle.id as usize];
            let got_acc = run.accels[particle.id as usize];
            assert!(
                (got_phi - phi).abs() < 1e-9 * phi.abs().max(1.0),
                "particle {}: {got_phi} vs {phi}",
                particle.id
            );
            assert!(got_acc.dist(acc) < 1e-9 * acc.norm().max(1.0));
        }
        // degree-4 interactions cost 13+16·16 in the model
        assert!(run.own_flops > run.p2n * 200, "flop accounting looks monopole-priced");
    }
}
