//! Parallel formulations of the Barnes–Hut method — the paper's primary
//! contribution (system **S6** in `DESIGN.md`).
//!
//! Three formulations, all built on the *function-shipping* paradigm (§3.2):
//! particle coordinates travel to the processor that owns a subtree, the
//! accumulated potential/force travels back, and tree data never moves.
//!
//! * **SPSA** (§3.3.1) — static `c×c` domain clusters, gray-code modular
//!   assignment to a hypercube; load balance by oversubscription.
//! * **SPDA** (§3.3.2) — the same static clusters, reassigned each time-step
//!   as contiguous runs of the Morton ordering with ≈`W/p` measured load
//!   each.
//! * **DPDA** (§3.3.3) — costzones on message passing: per-node interaction
//!   counts summed up the tree, load boundaries `iW/p` located by in-order
//!   traversal, particles exchanged with one all-to-all personalized
//!   communication.
//!
//! Module map:
//!
//! * [`domain`] — the static `c×c` cluster grid and particle↦cluster binning.
//! * [`partition`] — the unified [`partition::Partition`] (branch nodes,
//!   node/particle ownership) that the force engine consumes; builders for
//!   cluster-based schemes and for costzones.
//! * [`branch`] — branch-node key lookup: hashed and sorted-table schemes
//!   (§4.2.3).
//! * [`evalcore`] — ownership-aware local traversal + remote-subtree service
//!   evaluation, with the paper's flop accounting.
//! * [`funcship`] — the function-shipping force computation as a BSP
//!   [`bhut_machine::Program`]: request bins (default 100 particles), one
//!   outstanding bin per destination pair, reply accumulation.
//! * [`dataship`] — the data-shipping comparator: communication-volume and
//!   time model for the owner-computes paradigm (§4.2).
//! * [`merge`] — distributed tree construction accounting: hierarchical
//!   (non-replicated) merge and the all-to-all broadcast of top levels
//!   (§3.1).
//! * [`balance`] — the three assignment strategies and their per-iteration
//!   rebalancing costs.
//! * [`driver`] — one simulated time-step end-to-end, with the Table-3 phase
//!   breakdown.
//! * [`kruskal`] — the Kruskal–Weiss completion-time model of §4.1.

pub mod balance;
pub mod branch;
pub mod dataship;
pub mod domain;
pub mod driver;
pub mod evalcore;
pub mod funcship;
pub mod kruskal;
pub mod merge;
pub mod partition;

pub use balance::Scheme;
pub use domain::ClusterGrid;
pub use driver::{IterationOutcome, ParallelSim, PhaseTimes, SimConfig};
pub use partition::Partition;
