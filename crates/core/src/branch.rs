//! Branch-node lookup: the two key-location schemes of §4.2.3.
//!
//! "We implement two schemes for locating branch nodes. Both schemes compute
//! a unique key for each branch node. The first scheme maintains a hash
//! table of these keys along with pointers to the branch nodes themselves.
//! The second scheme maintains a sorted table of keys. Branch nodes are
//! located using a binary search of this sorted table." The paper found no
//! significant performance difference because each lookup amortizes over an
//! entire subtree interaction; `bench_branch_lookup` reproduces that
//! comparison.

use bhut_tree::NodeId;
use std::collections::HashMap;

/// Resolve a branch key (raw `NodeKey` bits) to the local tree node.
pub trait BranchLookup {
    fn find(&self, key_raw: u64) -> Option<NodeId>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hash-table lookup ("a hashed list of pointers that point to the actual
/// branch nodes", §3.2).
#[derive(Debug, Clone, Default)]
pub struct HashedLookup {
    map: HashMap<u64, NodeId>,
}

impl HashedLookup {
    pub fn new(entries: impl IntoIterator<Item = (u64, NodeId)>) -> Self {
        HashedLookup { map: entries.into_iter().collect() }
    }
}

impl BranchLookup for HashedLookup {
    #[inline]
    fn find(&self, key_raw: u64) -> Option<NodeId> {
        self.map.get(&key_raw).copied()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Sorted-table lookup with binary search.
#[derive(Debug, Clone, Default)]
pub struct SortedLookup {
    table: Vec<(u64, NodeId)>,
}

impl SortedLookup {
    pub fn new(entries: impl IntoIterator<Item = (u64, NodeId)>) -> Self {
        let mut table: Vec<(u64, NodeId)> = entries.into_iter().collect();
        table.sort_unstable_by_key(|&(k, _)| k);
        table.dedup_by_key(|&mut (k, _)| k);
        SortedLookup { table }
    }
}

impl BranchLookup for SortedLookup {
    #[inline]
    fn find(&self, key_raw: u64) -> Option<NodeId> {
        self.table.binary_search_by_key(&key_raw, |&(k, _)| k).ok().map(|i| self.table[i].1)
    }

    fn len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_morton::NodeKey;

    fn entries() -> Vec<(u64, NodeId)> {
        let mut v = Vec::new();
        for oct in 0..8u8 {
            let k = NodeKey::ROOT.child(oct);
            v.push((k.raw(), 100 + oct as NodeId));
            v.push((k.child(3).raw(), 200 + oct as NodeId));
        }
        v
    }

    #[test]
    fn both_schemes_agree() {
        let e = entries();
        let h = HashedLookup::new(e.clone());
        let s = SortedLookup::new(e.clone());
        assert_eq!(h.len(), e.len());
        assert_eq!(s.len(), e.len());
        for (k, id) in &e {
            assert_eq!(h.find(*k), Some(*id));
            assert_eq!(s.find(*k), Some(*id));
        }
        let missing = NodeKey::ROOT.child(1).child(1).raw();
        assert_eq!(h.find(missing), None);
        assert_eq!(s.find(missing), None);
    }

    #[test]
    fn empty_lookup() {
        let h = HashedLookup::default();
        let s = SortedLookup::default();
        assert!(h.is_empty() && s.is_empty());
        assert_eq!(h.find(1), None);
        assert_eq!(s.find(1), None);
    }

    #[test]
    fn sorted_dedups() {
        let s = SortedLookup::new(vec![(5, 1), (5, 2), (7, 3)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.find(7), Some(3));
    }
}
