//! The Kruskal–Weiss completion-time model (§4.1).
//!
//! For `r` independent subtasks with mean `μ` and standard deviation `σ`
//! allocated `r/p` at a time to `p` processors:
//!
//! ```text
//! T_p ≈ (r/p)·μ + σ·sqrt(2·(r/p)·log p)
//! ```
//!
//! The first term is essential computation, the second the load-imbalance
//! overhead. Requiring the second to grow no faster than the first yields
//! the paper's cluster-count rule `r ≳ p·log p` — "we can balance load among
//! processors by allocating Θ(log p) clusters to each processor".
//! Experiment A1 checks the model against measured cluster loads.

/// Expected completion time of `r` subtasks (mean `mu`, std-dev `sigma`) on
/// `p` processors.
pub fn kruskal_weiss_time(r: usize, p: usize, mu: f64, sigma: f64) -> f64 {
    assert!(r > 0 && p > 0);
    let rp = r as f64 / p as f64;
    let lg = (p as f64).ln().max(0.0);
    rp * mu + sigma * (2.0 * rp * lg).sqrt()
}

/// The load-imbalance overhead term alone.
pub fn imbalance_term(r: usize, p: usize, sigma: f64) -> f64 {
    let rp = r as f64 / p as f64;
    sigma * (2.0 * rp * (p as f64).ln().max(0.0)).sqrt()
}

/// Predicted efficiency: essential / (essential + overhead).
pub fn predicted_efficiency(r: usize, p: usize, mu: f64, sigma: f64) -> f64 {
    let essential = (r as f64 / p as f64) * mu;
    essential / kruskal_weiss_time(r, p, mu, sigma)
}

/// The minimum cluster count for the overhead to stay a bounded fraction of
/// essential work: `r ≥ p·log₂ p` (the paper's `r ≳ p log p`).
pub fn min_clusters_for_balance(p: usize) -> usize {
    let lg = (p as f64).log2().ceil().max(1.0) as usize;
    p * lg
}

/// Mean and standard deviation of a load sample.
pub fn mean_std(loads: &[f64]) -> (f64, f64) {
    assert!(!loads.is_empty());
    let n = loads.len() as f64;
    let mean = loads.iter().sum::<f64>() / n;
    let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_tasks_have_no_overhead() {
        let t = kruskal_weiss_time(1024, 16, 2.0, 0.0);
        assert!((t - 128.0).abs() < 1e-12);
        assert_eq!(imbalance_term(1024, 16, 0.0), 0.0);
    }

    #[test]
    fn efficiency_increases_with_r() {
        // §4.1: "on increasing r, essential computation grows faster than
        // the overhead and consequently, the efficiency of the system
        // increases."
        let p = 64;
        let e1 = predicted_efficiency(p * 2, p, 1.0, 1.0);
        let e2 = predicted_efficiency(p * 8, p, 1.0, 1.0);
        let e3 = predicted_efficiency(p * 64, p, 1.0, 1.0);
        assert!(e1 < e2 && e2 < e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn efficiency_decreases_with_p_at_fixed_r() {
        let r = 4096;
        let e1 = predicted_efficiency(r, 16, 1.0, 1.0);
        let e2 = predicted_efficiency(r, 256, 1.0, 1.0);
        assert!(e2 < e1);
    }

    #[test]
    fn min_cluster_rule() {
        assert_eq!(min_clusters_for_balance(16), 64);
        assert_eq!(min_clusters_for_balance(256), 2048);
        // At the rule's r the efficiency is bounded away from zero and
        // stays constant as p grows (σ = μ case): r/p = log₂ p makes both
        // terms scale together — that is the point of the r ≳ p log p rule.
        let base = predicted_efficiency(min_clusters_for_balance(16), 16, 1.0, 1.0);
        assert!(base > 0.4, "efficiency {base}");
        for p in [64usize, 256, 1024] {
            let e = predicted_efficiency(min_clusters_for_balance(p), p, 1.0, 1.0);
            assert!((e - base).abs() < 0.1, "p={p}: efficiency {e} vs base {base}");
        }
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!((m, s), (2.0, 0.0));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }
}
