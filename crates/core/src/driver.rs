//! One simulated time-step, end to end.
//!
//! [`ParallelSim::run_iteration`] executes the phase sequence of Fig. 4 —
//! local tree construction, tree merge, all-to-all broadcast, force
//! computation, load balancing — charging each phase to the per-processor
//! virtual clocks and reporting the Table-3 breakdown. Scheme state (SPDA
//! cluster assignments, DPDA particle weights) carries across iterations, so
//! "single iteration" timings after a warm-up mirror the paper's protocol
//! (§5.1: "We allow the simulation to run a few time-steps before timing an
//! iteration").

use crate::balance::{
    movement_cost, movement_matrix, spda_initial, spda_rebalance, spsa_assignment, Curve, Scheme,
};
use crate::domain::ClusterGrid;
use crate::evalcore::EvalEnv;
use crate::funcship::{run_force_phase, ForceConfig, ForceRun};
use crate::merge::{broadcast_top, expansion_cost, hierarchical_merge, local_tree_cost};
use crate::partition::{particle_weights_from_node_loads, Partition};
use bhut_geom::{Particle, Vec3};
use bhut_machine::topology::Collective;
use bhut_machine::{Collectives, Machine, Topology};
use bhut_multipole::{interaction_flops, MultipoleTree, MAC_FLOPS};
use bhut_obs::{phase as obs_phase, Counters, Span, StepProfile};
use bhut_tree::build::{build_in_cell, BuildParams};
use bhut_tree::BarnesHutMac;

/// Configuration of one parallel simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub scheme: Scheme,
    /// Clusters per axis (`c`; `r = c²`). Ignored by DPDA.
    pub clusters_per_axis: u32,
    /// The Barnes–Hut α-criterion.
    pub alpha: f64,
    /// Multipole degree (0 = monopole force computation, §5.1).
    pub degree: u32,
    /// Plummer softening length.
    pub eps: f64,
    /// Leaf bucket size `s`.
    pub leaf_capacity: usize,
    /// Shipping protocol tunables.
    pub force: ForceConfig,
    /// SPDA ordering curve.
    pub curve: Curve,
    /// Declared simulation domain. When set, the cluster grid and tree root
    /// tile this box (the paper's fixed 100³ domain); otherwise the data's
    /// bounding cube is used.
    pub domain: Option<bhut_geom::Aabb>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheme: Scheme::Spda,
            clusters_per_axis: 16,
            alpha: 0.67,
            degree: 0,
            eps: 1e-4,
            leaf_capacity: 8,
            force: ForceConfig::default(),
            curve: Curve::Morton,
            domain: None,
        }
    }
}

/// The Table-3 phase breakdown (seconds of simulated machine time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    pub local_tree: f64,
    pub tree_merge: f64,
    pub broadcast: f64,
    pub force: f64,
    pub load_balance: f64,
    pub total: f64,
}

/// Everything one iteration produces.
#[derive(Debug, Clone, Default)]
pub struct IterationOutcome {
    pub phases: PhaseTimes,
    /// Final per-processor clocks.
    pub clocks: Vec<f64>,
    pub potentials: Vec<f64>,
    pub accels: Vec<Vec3>,
    /// Total force computations `F` (particle–node + particle–particle).
    pub interactions: u64,
    pub mac_tests: u64,
    /// Particles shipped to remote processors.
    pub requests: u64,
    pub messages: u64,
    pub words: u64,
    /// Modeled sequential time for the same physics.
    pub serial_time: f64,
    pub efficiency: f64,
    pub speedup: f64,
    /// max/mean processor time in the force phase.
    pub imbalance: f64,
    /// Particles that changed owner in the balancing phase.
    pub moved_particles: u64,
    /// Per-rank virtual-clock spans for each phase, in the same schema as
    /// the threaded executor's wall-clock profiles (`wall_s` is the total
    /// simulated machine time; `per_worker` counters are not tracked on the
    /// simulated path, only totals).
    pub profile: StepProfile,
}

impl IterationOutcome {
    /// The iteration's phase breakdown folded onto the canonical
    /// build/exchange/force/balance groups — the machine model's
    /// *prediction* that the real multi-process backend is compared
    /// against (see [`bhut_machine::phases`]).
    pub fn phase_shares(&self) -> bhut_machine::PhaseShares {
        bhut_machine::PhaseShares::from_profile(&self.profile)
    }
}

/// Scheme state carried across iterations.
#[derive(Debug, Clone, Default)]
struct SchemeState {
    /// SPDA/SPSA: cluster → processor.
    cluster_owners: Option<Vec<usize>>,
    /// DPDA: per-particle load weights from the previous step.
    particle_weights: Option<Vec<f64>>,
}

/// A parallel Barnes–Hut simulation bound to one simulated machine.
pub struct ParallelSim<T: Topology> {
    pub machine: Machine<T>,
    pub config: SimConfig,
    state: SchemeState,
}

impl<T: Topology> ParallelSim<T> {
    pub fn new(machine: Machine<T>, config: SimConfig) -> Self {
        ParallelSim { machine, config, state: SchemeState::default() }
    }

    /// Reset carried state (e.g. when switching datasets).
    pub fn reset(&mut self) {
        self.state = SchemeState::default();
    }

    /// Execute one time-step's tree construction + force computation + load
    /// balancing on the simulated machine.
    pub fn run_iteration(&mut self, particles: &[Particle]) -> IterationOutcome {
        let p = self.machine.p();
        let cfg = self.config;
        let cost = self.machine.cost;
        let topo = &self.machine.topo;
        let coll = Collectives::new(topo, cost);

        let cell = cfg.domain.unwrap_or_else(|| {
            bhut_geom::Aabb::bounding_cube(particles.iter().map(|q| q.pos), 0.0)
                .unwrap_or_else(|| bhut_geom::Aabb::origin_cube(1.0))
        });
        let grid = ClusterGrid::new(cfg.clusters_per_axis, cell);
        let min_split = match cfg.scheme {
            Scheme::Dpda => 0,
            _ => grid.level(),
        };
        let tree = build_in_cell(
            particles,
            cell,
            BuildParams {
                leaf_capacity: cfg.leaf_capacity,
                collapse: true,
                min_split_level: min_split,
            },
        );
        let mtree = (cfg.degree > 0).then(|| MultipoleTree::new(&tree, particles, cfg.degree));

        // --- partition under the current assignment ---
        let cluster_info: Option<(Vec<usize>, Vec<u32>)> = match cfg.scheme {
            Scheme::Spsa => {
                let owners = self
                    .state
                    .cluster_owners
                    .get_or_insert_with(|| spsa_assignment(&grid, p))
                    .clone();
                let (of, _) = grid.bin_particles(particles);
                Some((owners, of))
            }
            Scheme::Spda => {
                let owners = self
                    .state
                    .cluster_owners
                    .get_or_insert_with(|| spda_initial(&grid, p, cfg.curve))
                    .clone();
                let (of, _) = grid.bin_particles(particles);
                Some((owners, of))
            }
            Scheme::Dpda => None,
        };
        let partition = match &cluster_info {
            Some((owners, _)) => Partition::from_clusters(&tree, &grid, owners, p),
            None => {
                let weights = self
                    .state
                    .particle_weights
                    .clone()
                    .unwrap_or_else(|| vec![0.0; particles.len()]);
                Partition::costzones_weighted(&tree, &weights, p)
            }
        };
        debug_assert!(partition.check(&tree).is_ok());

        let mut clocks = vec![0.0f64; p];
        let mut phases = PhaseTimes::default();
        let maxc = |c: &[f64]| c.iter().copied().fold(0.0, f64::max);

        // Per-rank span capture: `marks[r]` is rank r's clock at the last
        // phase boundary; each phase emits one span per rank from its mark
        // to its current clock (virtual seconds — same schema as the
        // wall-clock profiles from the threaded executor).
        let mut profile = StepProfile::new(p);
        let mut marks = vec![0.0f64; p];
        fn snap_phase(
            profile: &mut StepProfile,
            marks: &mut [f64],
            clocks: &[f64],
            superstep: u64,
            name: &str,
        ) {
            for (r, (&m, &c)) in marks.iter().zip(clocks.iter()).enumerate() {
                profile.record(Span::new(r, superstep, name, m, c));
            }
            marks.copy_from_slice(clocks);
        }

        // --- phase 1: local tree construction ---
        let counts: Vec<usize> = partition.particles_by_owner().iter().map(Vec::len).collect();
        let depth = tree.depth();
        local_tree_cost(&mut clocks, &counts, depth, &cost);
        phases.local_tree = maxc(&clocks);
        snap_phase(&mut profile, &mut marks, &clocks, 0, obs_phase::LOCAL_TREE);

        // --- phase 2: tree merge (+ expansion upward pass) ---
        let t0 = maxc(&clocks);
        let (merge_msgs, merge_words) =
            hierarchical_merge(&mut clocks, &tree, &partition, topo, &cost, cfg.degree);
        expansion_cost(&mut clocks, &tree, &partition, &cost, cfg.degree);
        phases.tree_merge = maxc(&clocks) - t0;
        snap_phase(&mut profile, &mut marks, &clocks, 1, obs_phase::TREE_MERGE);

        // --- phase 3: all-to-all broadcast of the top ---
        let t0 = maxc(&clocks);
        broadcast_top(&mut clocks, &partition, &coll, cfg.degree, cfg.scheme != Scheme::Spsa);
        phases.broadcast = maxc(&clocks) - t0;
        snap_phase(&mut profile, &mut marks, &clocks, 2, obs_phase::BROADCAST);

        // --- phase 4: force computation (BSP) ---
        let t0 = maxc(&clocks);
        // barrier into the phase — advance the span marks too, so the wait
        // at the barrier is profiled as idle time rather than force work
        for c in clocks.iter_mut() {
            *c = t0;
        }
        marks.copy_from_slice(&clocks);
        let mac = BarnesHutMac::new(cfg.alpha);
        let env = EvalEnv {
            tree: &tree,
            particles,
            mtree: mtree.as_ref(),
            mac: &mac,
            eps: cfg.eps,
            degree: cfg.degree,
        };
        let track_loads = cfg.scheme == Scheme::Dpda;
        let run: ForceRun = run_force_phase(
            &self.machine,
            &env,
            &partition,
            cluster_info.as_ref().map(|(_, of)| of.as_slice()),
            grid.r(),
            track_loads,
            cfg.force,
        );
        for (c, f) in clocks.iter_mut().zip(&run.report.clocks) {
            *c += f;
        }
        phases.force = maxc(&clocks) - t0;
        snap_phase(&mut profile, &mut marks, &clocks, 3, obs_phase::FORCE);
        let force_imbalance = {
            let mean =
                run.report.clocks.iter().sum::<f64>() / run.report.clocks.len().max(1) as f64;
            if mean > 0.0 {
                run.report.parallel_time() / mean
            } else {
                1.0
            }
        };

        // --- phase 5: load balancing ---
        let t0 = maxc(&clocks);
        let mut moved_particles = 0u64;
        let mut balance_msgs = 0u64;
        let mut balance_words = 0u64;
        match cfg.scheme {
            Scheme::Spsa => {} // load balance is implicit (Table 3: zero)
            Scheme::Spda => {
                let (owners, _) = cluster_info.as_ref().expect("cluster scheme");
                let loads: Vec<f64> = run.cluster_flops.iter().map(|&f| f as f64).collect();
                // global load sum + per-proc target (one all-reduce)
                let per_proc_load: Vec<f64> = {
                    let mut v = vec![0.0; p];
                    for (cl, &l) in loads.iter().enumerate() {
                        v[owners[cl]] += l;
                    }
                    v
                };
                let _w = coll.all_reduce_f64(&mut clocks, &per_proc_load, |a, b| a + b);
                let new_owners = spda_rebalance(&grid, &loads, p, cfg.curve);
                // each processor broadcasts its new run start (one word)
                coll.broadcast_time(&mut clocks, 1);
                // move cluster data (particles, 8 words each)
                let cluster_sizes: Vec<u64> = {
                    let (_, lists) = grid.bin_particles(particles);
                    lists.iter().map(|l| l.len() as u64).collect()
                };
                let moved = movement_matrix(owners, &new_owners, &cluster_sizes, p);
                moved_particles = moved.iter().flatten().sum();
                let (m, w) = movement_cost(&mut clocks, &moved, 8, topo, &cost);
                balance_msgs = m;
                balance_words = w;
                self.state.cluster_owners = Some(new_owners);
            }
            Scheme::Dpda => {
                let node_loads = run.node_loads.as_ref().expect("DPDA tracks loads");
                // upward load sum: ~2 flops per node, parallel over owners
                for c in clocks.iter_mut() {
                    *c += cost.compute_time(2 * (tree.len() as u64 / p.max(1) as u64 + 1));
                }
                // broadcast branch loads (2 words per branch)
                let mut contrib: Vec<Vec<u64>> = vec![Vec::new(); p];
                for b in &partition.branches {
                    contrib[b.owner].push(node_loads[b.node as usize]);
                }
                let _ = coll.all_to_all_broadcast(&mut clocks, &contrib, 2);
                // boundary location: each processor scans its local tree
                for c in clocks.iter_mut() {
                    *c += cost.compute_time(5 * depth as u64 * p as u64);
                }
                let weights = particle_weights_from_node_loads(&tree, node_loads);
                let new_part = Partition::costzones_weighted(&tree, &weights, p);
                moved_particles = partition
                    .owner_of_particle
                    .iter()
                    .zip(&new_part.owner_of_particle)
                    .filter(|(a, b)| a != b)
                    .count() as u64;
                // one all-to-all personalized exchange of moved particles
                let mut max_pair = 0u64;
                {
                    let mut pairs = vec![vec![0u64; p]; p];
                    for (o, n) in
                        partition.owner_of_particle.iter().zip(&new_part.owner_of_particle)
                    {
                        if o != n {
                            pairs[*o][*n] += 1;
                        }
                    }
                    for row in &pairs {
                        for &v in row {
                            max_pair = max_pair.max(v);
                        }
                    }
                }
                let t = topo.collective_time(Collective::AllToAllPersonalized, max_pair * 8, &cost);
                let m = maxc(&clocks);
                for c in clocks.iter_mut() {
                    *c = m + t;
                }
                balance_words = moved_particles * 8;
                balance_msgs = p as u64 * (p as u64 - 1);
                self.state.particle_weights = Some(weights);
            }
        }
        phases.load_balance = maxc(&clocks) - t0;
        phases.total = maxc(&clocks);
        snap_phase(&mut profile, &mut marks, &clocks, 4, obs_phase::LOAD_BALANCE);

        // --- sequential model for efficiency ---
        // Parallel eval flops minus the redundant MAC re-test per shipped
        // particle at the serving side.
        let eval_flops = run.own_flops + run.service_flops - run.requests * MAC_FLOPS;
        let serial_build = cost.compute_time((15 + 2 * depth as u64) * particles.len() as u64);
        let serial_expansion = if cfg.degree > 0 {
            let coeffs = bhut_multipole::Expansion::num_coeffs(cfg.degree) as u64;
            let mut f = 0u64;
            for node in &tree.nodes {
                f += if node.is_leaf() { 4 * coeffs * node.count() as u64 } else { 8 * coeffs };
            }
            cost.compute_time(f)
        } else {
            0.0
        };
        let serial_time = cost.compute_time(eval_flops) + serial_build + serial_expansion;
        let efficiency = serial_time / (p as f64 * phases.total);
        let speedup = serial_time / phases.total;

        profile.wall_s = phases.total;
        profile.totals = Counters {
            p2p: run.p2p,
            m2p: run.p2n,
            mac_tests: run.mac_tests,
            requests: run.requests,
            messages: run.report.messages + merge_msgs + balance_msgs,
            words: run.report.words + merge_words + balance_words,
            ..Counters::default()
        };

        IterationOutcome {
            phases,
            clocks,
            potentials: run.potentials,
            accels: run.accels,
            interactions: run.p2n + run.p2p,
            mac_tests: run.mac_tests,
            requests: run.requests,
            messages: run.report.messages + merge_msgs + balance_msgs,
            words: run.report.words + merge_words + balance_words,
            serial_time,
            efficiency,
            speedup,
            imbalance: force_imbalance,
            moved_particles,
            profile,
        }
    }

    /// Modeled flops of one particle–cluster interaction at this config's
    /// degree (for reporting).
    pub fn flops_per_interaction(&self) -> u64 {
        interaction_flops(self.config.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{multi_gaussian, uniform_cube, GaussianSpec};
    use bhut_machine::{CostModel, Hypercube};

    fn sim(scheme: Scheme, p: usize, c: u32) -> ParallelSim<Hypercube> {
        let machine = Machine::new(Hypercube::new(p), CostModel::ncube2());
        ParallelSim::new(machine, SimConfig { scheme, clusters_per_axis: c, ..Default::default() })
    }

    #[test]
    fn all_schemes_agree_on_physics() {
        let set = uniform_cube(900, 100.0, 41);
        // SPSA and SPDA share the same tree (same min_split_level), so they
        // must agree to roundoff; DPDA builds without forced splits — a
        // slightly different (still valid) tree — so it agrees to
        // approximation accuracy.
        let spsa = sim(Scheme::Spsa, 8, 8).run_iteration(&set.particles);
        let spda = sim(Scheme::Spda, 8, 8).run_iteration(&set.particles);
        let dpda = sim(Scheme::Dpda, 8, 8).run_iteration(&set.particles);
        assert_eq!(spsa.potentials.len(), set.len());
        for i in 0..set.len() {
            let want = spsa.potentials[i];
            assert!(
                (spda.potentials[i] - want).abs() < 1e-9 * want.abs().max(1.0),
                "SPDA particle {i}: {} vs {want}",
                spda.potentials[i]
            );
            assert!(
                (dpda.potentials[i] - want).abs() < 5e-3 * want.abs().max(1.0),
                "DPDA particle {i}: {} vs {want}",
                dpda.potentials[i]
            );
        }
    }

    #[test]
    fn phase_breakdown_adds_up() {
        let set = uniform_cube(600, 100.0, 42);
        let mut s = sim(Scheme::Spda, 8, 8);
        let out = s.run_iteration(&set.particles);
        let ph = out.phases;
        let sum = ph.local_tree + ph.tree_merge + ph.broadcast + ph.force + ph.load_balance;
        assert!((sum - ph.total).abs() < 1e-6 * ph.total, "phases {sum} vs total {}", ph.total);
        assert!(ph.force > ph.local_tree, "force dominates");
        assert!(out.efficiency > 0.0 && out.efficiency <= 1.2);
    }

    #[test]
    fn profile_spans_mirror_the_phase_breakdown() {
        let set = uniform_cube(600, 100.0, 46);
        let mut s = sim(Scheme::Spda, 8, 8);
        let out = s.run_iteration(&set.particles);
        let prof = &out.profile;
        assert_eq!(prof.threads, 8);
        // one span per rank per phase, in phase order
        assert_eq!(prof.spans.len(), 5 * 8);
        assert_eq!(
            prof.phases(),
            vec!["local_tree", "tree_merge", "broadcast", "force", "load_balance"]
        );
        assert!((prof.wall_s - out.phases.total).abs() < 1e-12);
        assert!((prof.makespan() - out.phases.total).abs() < 1e-9 * out.phases.total);
        // the slowest rank's force span is exactly the reported force phase
        let force_max = prof
            .spans
            .iter()
            .filter(|s| s.phase == "force")
            .map(bhut_obs::Span::duration)
            .fold(0.0, f64::max);
        assert!(
            (force_max - out.phases.force).abs() < 1e-9 * out.phases.force,
            "force span {force_max} vs phase {}",
            out.phases.force
        );
        assert_eq!(prof.totals.interactions(), out.interactions);
        assert_eq!(prof.totals.mac_tests, out.mac_tests);
        assert_eq!(prof.totals.messages, out.messages);
        assert_eq!(prof.totals.words, out.words);
        // simulated path reports totals only
        assert!(prof.per_worker.is_empty());
        assert_eq!(prof.imbalance(), 1.0);
    }

    #[test]
    fn phase_shares_fold_the_table3_breakdown() {
        let set = uniform_cube(700, 100.0, 47);
        let mut s = sim(Scheme::Spda, 8, 8);
        let out = s.run_iteration(&set.particles);
        let shares = out.phase_shares();
        assert!(shares.is_normalized(), "{shares:?}");
        assert!(shares.force > shares.build, "force dominates the prediction");
        // Busy-time shares: each group is the sum over ranks of its phases'
        // spans, so the force group must match the profile's share directly.
        let prof = &out.profile;
        let total: f64 = prof.spans.iter().map(bhut_obs::Span::duration).sum();
        assert!((shares.force - prof.phase_total("force") / total).abs() < 1e-12);
    }

    #[test]
    fn spsa_has_zero_balance_time() {
        let set = uniform_cube(500, 100.0, 43);
        let mut s = sim(Scheme::Spsa, 8, 8);
        let out = s.run_iteration(&set.particles);
        assert_eq!(out.phases.load_balance, 0.0);
        assert_eq!(out.moved_particles, 0);
    }

    #[test]
    fn spda_improves_on_irregular_load_after_warmup() {
        // A clustered distribution: SPDA's second iteration (with measured
        // loads) should balance at least as well as its first.
        let set = multi_gaussian(GaussianSpec {
            n: 1500,
            clusters: 2,
            concentration_side: 10.0,
            seed: 9,
            ..Default::default()
        });
        let mut s = sim(Scheme::Spda, 8, 8);
        let first = s.run_iteration(&set.particles);
        let second = s.run_iteration(&set.particles);
        assert!(
            second.imbalance <= first.imbalance * 1.05,
            "imbalance {} -> {}",
            first.imbalance,
            second.imbalance
        );
        assert!(first.moved_particles > 0, "rebalancing should move clusters");
    }

    #[test]
    fn dpda_second_iteration_balances_better() {
        let set = multi_gaussian(GaussianSpec {
            n: 1500,
            clusters: 1,
            concentration_side: 6.0,
            seed: 10,
            ..Default::default()
        });
        let mut s = sim(Scheme::Dpda, 8, 8);
        let first = s.run_iteration(&set.particles);
        let second = s.run_iteration(&set.particles);
        assert!(
            second.imbalance <= first.imbalance * 1.05,
            "imbalance {} -> {}",
            first.imbalance,
            second.imbalance
        );
    }

    #[test]
    fn more_processors_reduce_parallel_time() {
        let set = uniform_cube(2000, 100.0, 44);
        let t4 = sim(Scheme::Spda, 4, 8).run_iteration(&set.particles).phases.total;
        let t16 = sim(Scheme::Spda, 16, 8).run_iteration(&set.particles).phases.total;
        assert!(t16 < t4, "p=4: {t4}, p=16: {t16}");
    }

    #[test]
    fn higher_degree_increases_time_and_efficiency() {
        let set = uniform_cube(1200, 100.0, 45);
        let run_at = |degree: u32| {
            let machine = Machine::new(Hypercube::new(16), CostModel::cm5());
            let mut s = ParallelSim::new(
                machine,
                SimConfig { scheme: Scheme::Dpda, degree, ..Default::default() },
            );
            let _ = s.run_iteration(&set.particles); // warm-up
            s.run_iteration(&set.particles)
        };
        let d0 = run_at(0);
        let d4 = run_at(4);
        assert!(d4.phases.total > d0.phases.total, "degree-4 must cost more");
        assert!(
            d4.efficiency > d0.efficiency * 0.98,
            "efficiency should not degrade with degree: {} -> {}",
            d0.efficiency,
            d4.efficiency
        );
    }
}
