//! Distributed tree construction: cost accounting for the merge and
//! broadcast phases (§3.1, Table 3 rows 1–3).
//!
//! After each processor builds its subdomain trees locally, the *top* of the
//! global tree (everything above the branch nodes) must be assembled:
//!
//! * [`local_tree_cost`] — the embarrassingly parallel local build.
//! * [`hierarchical_merge`] — the non-replicated construction of §3.1.2:
//!   each top node has a designated owner (the owner of its first branch
//!   descendant); owners of the other child subtrees send their records up,
//!   level by level. With SPSA's gray-code mapping these transfers are
//!   hypercube-neighbor hops; with SPDA's Morton runs the senders scatter —
//!   reproducing the paper's observation that SPDA's merge costs more
//!   (Table 3).
//! * [`broadcast_top`] — the all-to-all broadcast that replicates the
//!   assembled top levels (and branch records) everywhere.
//!
//! Node records carry `5 + C(k+3,3)` words: key, mass, COM, plus the degree-k
//! series coefficients.

use crate::partition::Partition;
use bhut_machine::{Collectives, CostModel, Topology};
use bhut_multipole::Expansion;
use bhut_tree::{Tree, NIL};

/// Words in one communicated node record at multipole degree `k`.
pub fn record_words(degree: u32) -> u64 {
    5 + Expansion::num_coeffs(degree) as u64
}

/// Flops to combine one child record into a parent (mass/COM update plus an
/// M2M shift of the series).
pub fn combine_flops(degree: u32) -> u64 {
    10 + 4 * Expansion::num_coeffs(degree) as u64
}

/// Charge each processor for building its local trees: ≈`15 + 2·depth` flops
/// per owned particle (sort + insertion path).
pub fn local_tree_cost(
    clocks: &mut [f64],
    particles_per_proc: &[usize],
    tree_depth: u32,
    cost: &CostModel,
) {
    assert_eq!(clocks.len(), particles_per_proc.len());
    let per_particle = 15 + 2 * tree_depth as u64;
    for (c, &n) in clocks.iter_mut().zip(particles_per_proc) {
        *c += cost.compute_time(per_particle * n as u64);
    }
}

/// The non-replicated hierarchical merge. Returns `(messages, words)`.
pub fn hierarchical_merge<T: Topology>(
    clocks: &mut [f64],
    tree: &Tree,
    partition: &Partition,
    topo: &T,
    cost: &CostModel,
    degree: u32,
) -> (u64, u64) {
    if tree.is_empty() || partition.top_nodes.is_empty() {
        return (0, 0);
    }
    // Designated owner of every node: owner of its first (Z-order) branch
    // descendant == owner of its first particle's zone for costzones, or of
    // the first branch under it. Compute by propagating from branches up.
    let mut designated: Vec<i32> = partition.owner_of_node.clone();
    // top nodes in walk (pre-order) order: process bottom-up by reversing.
    for &t in partition.top_nodes.iter().rev() {
        let node = tree.node(t);
        let first_child = node.children.iter().copied().find(|&c| c != NIL);
        if let Some(fc) = first_child {
            designated[t as usize] = designated[fc as usize];
        }
    }
    let words = record_words(degree);
    let mut msgs = 0u64;
    let mut total_words = 0u64;
    // Bottom-up: children owners send their records to the parent's
    // designated owner, which combines them.
    for &t in partition.top_nodes.iter().rev() {
        let node = tree.node(t);
        let dst = designated[t as usize];
        debug_assert!(dst >= 0);
        let dst = dst as usize;
        for &c in &node.children {
            if c == NIL {
                continue;
            }
            let src = designated[c as usize];
            debug_assert!(src >= 0);
            let src = src as usize;
            if src != dst {
                msgs += 1;
                total_words += words;
                clocks[src] += cost.message_time(0, words);
                let arrival = clocks[src] + cost.t_h * topo.hops(src, dst) as f64;
                clocks[dst] = clocks[dst].max(arrival);
            }
            clocks[dst] += cost.compute_time(combine_flops(degree));
        }
    }
    (msgs, total_words)
}

/// All-to-all broadcast of the assembled top: every processor contributes
/// the records of the top nodes it designated-owns plus its branch records;
/// everyone ends with the replicated top. Also charges the redundant local
/// recomputation of the top levels (the broadcast-based construction of
/// §3.1.1 when `recompute` is set).
pub fn broadcast_top<T: Topology>(
    clocks: &mut [f64],
    partition: &Partition,
    coll: &Collectives<'_, T>,
    degree: u32,
    recompute: bool,
) {
    let p = clocks.len();
    let words = record_words(degree);
    // Contribution per processor: its branch records (the top nodes are
    // derived from them on arrival).
    let mut contrib: Vec<Vec<u64>> = vec![Vec::new(); p];
    for b in &partition.branches {
        contrib[b.owner].push(b.key.raw());
    }
    let _ = coll.all_to_all_broadcast(clocks, &contrib, words);
    if recompute {
        // Everyone rebuilds the top levels from the broadcast branch set:
        // redundant but latency-free (§3.1.1 — "some redundant computation
        // but relatively small overhead").
        let flops = partition.top_nodes.len() as u64 * combine_flops(degree) * 2;
        for c in clocks.iter_mut() {
            *c += coll.cost.compute_time(flops);
        }
    }
}

/// Charge the upward multipole pass (P2M at leaves, M2M inside): every
/// processor computes expansions for its own subtrees; the replicated top is
/// recomputed by everyone after the broadcast.
pub fn expansion_cost(
    clocks: &mut [f64],
    tree: &Tree,
    partition: &Partition,
    cost: &CostModel,
    degree: u32,
) {
    if degree == 0 || tree.is_empty() {
        return;
    }
    let coeffs = Expansion::num_coeffs(degree) as u64;
    // P2M: ~4 flops per coefficient per particle; M2M: ~8·coeffs per node.
    let mut per_proc = vec![0u64; clocks.len()];
    let mut top_flops = 0u64;
    for (id, node) in tree.nodes.iter().enumerate() {
        let flops = if node.is_leaf() { 4 * coeffs * node.count() as u64 } else { 8 * coeffs };
        match partition.owner_of_node[id] {
            -1 => top_flops += flops,
            q => per_proc[q as usize] += flops,
        }
    }
    for (c, f) in clocks.iter_mut().zip(&per_proc) {
        *c += cost.compute_time(f + top_flops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{spda_initial, spsa_assignment, Curve};
    use crate::domain::ClusterGrid;
    use bhut_geom::{multi_gaussian, uniform_cube, Aabb, GaussianSpec};
    use bhut_machine::Hypercube;
    use bhut_tree::build::{build_in_cell, BuildParams};

    fn setup(p: usize, owners: &dyn Fn(&ClusterGrid, usize) -> Vec<usize>) -> (Tree, Partition) {
        let set = uniform_cube(2000, 100.0, 31);
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        let o = owners(&grid, p);
        let part = Partition::from_clusters(&tree, &grid, &o, p);
        (tree, part)
    }

    #[test]
    fn record_sizes() {
        assert_eq!(record_words(0), 6);
        assert!(record_words(4) > record_words(3));
    }

    #[test]
    fn local_tree_cost_proportional_to_particles() {
        let cost = CostModel::unit();
        let mut clocks = vec![0.0; 2];
        local_tree_cost(&mut clocks, &[10, 20], 5, &cost);
        assert!((clocks[1] - 2.0 * clocks[0]).abs() < 1e-9);
    }

    #[test]
    fn merge_charges_communication() {
        let p = 16;
        let topo = Hypercube::new(p);
        let cost = CostModel::ncube2();
        let (tree, part) = setup(p, &|g, p| spsa_assignment(g, p));
        let mut clocks = vec![0.0; p];
        let (msgs, words) = hierarchical_merge(&mut clocks, &tree, &part, &topo, &cost, 0);
        assert!(msgs > 0);
        assert_eq!(words, msgs * record_words(0));
        assert!(clocks.iter().any(|&c| c > 0.0));
    }

    #[test]
    fn spda_merge_costs_at_least_spsa() {
        // Table 3: "The tree-merging cost is higher for the SPDA scheme" —
        // scattered owners serialize at the combiners.
        let p = 16;
        let topo = Hypercube::new(p);
        let cost = CostModel::ncube2();
        // Irregular distribution exaggerates the asymmetry.
        let set =
            multi_gaussian(GaussianSpec { n: 3000, clusters: 4, seed: 5, ..Default::default() });
        let cell = Aabb::origin_cube(100.0);
        let grid = ClusterGrid::new(8, cell);
        let params =
            BuildParams { leaf_capacity: 8, collapse: true, min_split_level: grid.level() };
        let tree = build_in_cell(&set.particles, cell, params);
        let spsa = Partition::from_clusters(&tree, &grid, &spsa_assignment(&grid, p), p);
        let spda =
            Partition::from_clusters(&tree, &grid, &spda_initial(&grid, p, Curve::Morton), p);
        let mut c1 = vec![0.0; p];
        let mut c2 = vec![0.0; p];
        hierarchical_merge(&mut c1, &tree, &spsa, &topo, &cost, 0);
        hierarchical_merge(&mut c2, &tree, &spda, &topo, &cost, 0);
        let t1 = c1.iter().copied().fold(0.0, f64::max);
        let t2 = c2.iter().copied().fold(0.0, f64::max);
        assert!(t2 >= t1 * 0.5, "spsa {t1} vs spda {t2}"); // same order of magnitude
    }

    #[test]
    fn broadcast_top_charges_everyone_equally() {
        let p = 16;
        let topo = Hypercube::new(p);
        let cost = CostModel::ncube2();
        let (_, part) = setup(p, &|g, p| spsa_assignment(g, p));
        let coll = Collectives::new(&topo, cost);
        let mut clocks = vec![0.0; p];
        broadcast_top(&mut clocks, &part, &coll, 4, true);
        assert!(clocks[0] > 0.0);
        assert!(clocks.iter().all(|&c| (c - clocks[0]).abs() < 1e-12));
    }

    #[test]
    fn higher_degree_broadcast_costs_more() {
        let p = 16;
        let topo = Hypercube::new(p);
        let cost = CostModel::ncube2();
        let (_, part) = setup(p, &|g, p| spsa_assignment(g, p));
        let coll = Collectives::new(&topo, cost);
        let mut c0 = vec![0.0; p];
        let mut c4 = vec![0.0; p];
        broadcast_top(&mut c0, &part, &coll, 0, false);
        broadcast_top(&mut c4, &part, &coll, 4, false);
        assert!(c4[0] > c0[0]);
    }

    #[test]
    fn expansion_cost_zero_for_monopole() {
        let p = 4;
        let cost = CostModel::unit();
        let (tree, part) = setup(p, &|g, p| spsa_assignment(g, p));
        let mut clocks = vec![0.0; p];
        expansion_cost(&mut clocks, &tree, &part, &cost, 0);
        assert!(clocks.iter().all(|&c| c == 0.0));
        expansion_cost(&mut clocks, &tree, &part, &cost, 3);
        assert!(clocks.iter().all(|&c| c > 0.0));
    }
}
