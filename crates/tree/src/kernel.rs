//! Vectorized slab kernels for the grouped-walk SoA interaction lists.
//!
//! These are the SIMD counterparts of [`crate::group::accel_batch_m2p`] /
//! [`crate::group::accel_batch_p2p`]. They iterate the *padded* slabs
//! ([`bhut_simd::AlignedF64Slab::padded`]) so the lane loops never straddle a
//! ragged tail: padding sentinels carry zero mass, so their lanes contribute
//! exactly zero.
//!
//! Each kernel has up to three bodies dispatched at runtime by
//! [`bhut_simd::isa`]:
//!
//! * a **portable** body on the [`bhut_simd`] lane types — safe code, the
//!   correctness reference, and the only path on non-x86_64 or under the
//!   `force-scalar` feature;
//! * an **AVX2** body in `core::arch` intrinsics. Autovectorizing the
//!   portable body inside a `#[target_feature]` clone looks tempting but is
//!   fragile in practice — LLVM's SLP pass splits the compare/sqrt chain
//!   into per-lane branches (sinking the "expensive" sqrt behind the `r² >
//!   0` guard), which re-scalarizes the hot loop. Explicit intrinsics make
//!   the 256-bit shape unconditional.
//! * an **AVX-512** body for the f64 kernels only: the same chunk
//!   arithmetic at eight lanes, with each 512-bit result split lo/hi into
//!   the 256-bit accumulators in lane order — i.e. exactly the operations
//!   the AVX2 body would perform on two consecutive 4-lane chunks, so the
//!   wider tier changes nothing but speed. (The f32 kernels run their AVX2
//!   body under this tier.)
//!
//! All bodies perform the *same IEEE operations in the same order* —
//! correctly-rounded add/sub/mul (plus the one fused
//! negative-multiply-add inside the NR rsqrt below, where `f64::mul_add`
//! and `vfnmadd` compute the identical IEEE fma) and lane-order horizontal
//! sums. LLVM never contracts anything else into an FMA without fast-math,
//! so dispatch changes speed, never results.
//!
//! The arithmetic differs from the scalar kernels only in two deliberate
//! ways:
//!
//! * **Division-free rsqrt** — one `inv ≈ 1/√r²` from
//!   [`bhut_simd::rsqrt_nr_f64`] (magic-constant seed + four
//!   Newton–Raphson steps, ≤2 ulp) feeds both halves of the kernel:
//!   `φ -= m·inv` and `w = m·inv³`, instead of the scalar `m/(r²·√r²)` /
//!   `-m/√r²`. `vsqrtpd`/`vdivpd` share one unpipelined divider port that
//!   caps the f64 kernel at roughly half its mul/add throughput; the NR
//!   form is pure mul/FMA and lifts that ceiling on wide parts (it is
//!   about neutral on AVX2-only parts, which trade the divider for port
//!   pressure — one arithmetic family for every tier is what keeps
//!   dispatch bit-stable). Same math as the scalar kernels, different
//!   rounding (≤ a few ulp per interaction), which is why
//!   grouped-vs-scalar equivalence is asserted at ≤1e-12 relative rather
//!   than bitwise. The f32 kernels keep the exact sqrt+div: the f32
//!   divider is cheap enough that NR would cost more than it saves.
//! * **Lane-order summation** — four (f64) or eight (f32) partial
//!   accumulators reduced in fixed lane order at the end.
//!
//! The `r² = 0` singularity (unsoftened self-interaction) and the zero-mass
//! padding sentinels are both neutralized without branches: `r²` is clamped
//! to a tiny positive floor ([`bhut_simd::R2_FLOOR_F64`]) so the rsqrt runs
//! unconditionally on every lane and never produces an Inf or NaN, while
//! the padding sentinels' zero mass multiplies their lanes away to exactly
//! `+0.0`. The clamp is a bitwise no-op on every physical lane —
//! a single `max` replaces the compare/blend dance a conditional guard
//! would need (and which LLVM happily re-branches, see above).
//!
//! The `_f32` variants implement [`bhut_simd::KernelPrecision::MixedF32`]:
//! eight f32 lanes per chunk with each chunk widened into f64 accumulators
//! ([`bhut_simd::F64w`]), so single-precision roundoff does not compound
//! with slab length.

use bhut_simd::{F32_LANES, F64_LANES};

/// Monopole M2P over a padded f64 slab: returns `(ax, ay, az, phi)` at
/// `(px, py, pz)` with Plummer softening `eps2 = ε²`.
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_slab_m2p_f64(
    px: f64,
    py: f64,
    pz: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    eps2: f64,
) -> (f64, f64, f64, f64) {
    debug_assert_eq!(xs.len() % F64_LANES, 0, "slab must be padded to the lane width");
    // SAFETY (both arms): `isa()` returned the tier only after runtime
    // feature detection (AVX-512F implies the AVX2+FMA tier).
    #[cfg(target_arch = "x86_64")]
    match bhut_simd::isa() {
        bhut_simd::Isa::Avx512 => {
            return unsafe { avx512::accel_slab_m2p_f64(px, py, pz, xs, ys, zs, ms, eps2) }
        }
        bhut_simd::Isa::Avx2 => {
            return unsafe { avx2::accel_slab_m2p_f64(px, py, pz, xs, ys, zs, ms, eps2) }
        }
        bhut_simd::Isa::Portable => {}
    }
    portable::accel_slab_m2p_f64(px, py, pz, xs, ys, zs, ms, eps2)
}

/// Monopole P2P over a padded f64 particle slab: as [`accel_slab_m2p_f64`],
/// with the lane whose id equals `target_id` masked to zero mass. Padding
/// sentinels carry id `u32::MAX` and zero mass, so they contribute nothing
/// either way.
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_slab_p2p_f64(
    px: f64,
    py: f64,
    pz: f64,
    target_id: u32,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    ids: &[u32],
    eps2: f64,
) -> (f64, f64, f64, f64) {
    debug_assert_eq!(xs.len() % F64_LANES, 0, "slab must be padded to the lane width");
    debug_assert_eq!(xs.len(), ids.len());
    // SAFETY (both arms): `isa()` returned the tier only after runtime
    // feature detection (AVX-512F implies the AVX2+FMA tier).
    #[cfg(target_arch = "x86_64")]
    match bhut_simd::isa() {
        bhut_simd::Isa::Avx512 => {
            return unsafe {
                avx512::accel_slab_p2p_f64(px, py, pz, target_id, xs, ys, zs, ms, ids, eps2)
            }
        }
        bhut_simd::Isa::Avx2 => {
            return unsafe {
                avx2::accel_slab_p2p_f64(px, py, pz, target_id, xs, ys, zs, ms, ids, eps2)
            }
        }
        bhut_simd::Isa::Portable => {}
    }
    portable::accel_slab_p2p_f64(px, py, pz, target_id, xs, ys, zs, ms, ids, eps2)
}

/// A borrowed view of one padded SoA slab (positions + masses), bundling the
/// four parallel slices the f64 kernels walk together.
#[derive(Clone, Copy)]
pub struct SlabView<'a> {
    pub xs: &'a [f64],
    pub ys: &'a [f64],
    pub zs: &'a [f64],
    pub ms: &'a [f64],
}

impl<'a> SlabView<'a> {
    /// An empty view (a zero-length slab is trivially padded).
    pub const EMPTY: SlabView<'static> = SlabView { xs: &[], ys: &[], zs: &[], ms: &[] };
}

/// Fused per-member evaluation: one call accumulates the accepted-node M2P
/// slab, the id-masked near-field P2P slab, and the member's private tail
/// segment into a *single* set of lane accumulators, reduced by one
/// horizontal sum at the end.
///
/// This is the hot entry point of the grouped executor. Relative to three
/// separate kernel calls it saves two dispatches, two splat preambles and
/// two horizontal-sum reductions per member — overhead that dominates once
/// the slabs themselves vectorize. The summation *grouping* differs from
/// three separate calls (one running sum instead of three partial sums added
/// scalar), so results agree to a few ulp, not bitwise; grouped-vs-scalar
/// equivalence stays ≤1e-12 as before.
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_slab_member_f64(
    px: f64,
    py: f64,
    pz: f64,
    target_id: u32,
    nodes: SlabView<'_>,
    parts: SlabView<'_>,
    ids: &[u32],
    tail: SlabView<'_>,
    eps2: f64,
) -> (f64, f64, f64, f64) {
    debug_assert_eq!(nodes.xs.len() % F64_LANES, 0, "node slab must be padded");
    debug_assert_eq!(parts.xs.len() % F64_LANES, 0, "particle slab must be padded");
    debug_assert_eq!(tail.xs.len() % F64_LANES, 0, "tail segment must be padded");
    debug_assert_eq!(parts.xs.len(), ids.len());
    // SAFETY (both arms): `isa()` returned the tier only after runtime
    // feature detection (AVX-512F implies the AVX2+FMA tier).
    #[cfg(target_arch = "x86_64")]
    match bhut_simd::isa() {
        bhut_simd::Isa::Avx512 => {
            return unsafe {
                avx512::accel_slab_member_f64(px, py, pz, target_id, nodes, parts, ids, tail, eps2)
            }
        }
        bhut_simd::Isa::Avx2 => {
            return unsafe {
                avx2::accel_slab_member_f64(px, py, pz, target_id, nodes, parts, ids, tail, eps2)
            }
        }
        bhut_simd::Isa::Portable => {}
    }
    portable::accel_slab_member_f64(px, py, pz, target_id, nodes, parts, ids, tail, eps2)
}

/// Mixed-precision M2P: f32 lane arithmetic over the f32 mirror slabs, each
/// 8-lane chunk widened into f64 accumulators. Returns f64
/// `(ax, ay, az, phi)`.
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_slab_m2p_f32(
    px: f32,
    py: f32,
    pz: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    ms: &[f32],
    eps2: f32,
) -> (f64, f64, f64, f64) {
    debug_assert_eq!(xs.len() % F32_LANES, 0, "slab must be padded to the lane width");
    #[cfg(target_arch = "x86_64")]
    if bhut_simd::isa() != bhut_simd::Isa::Portable {
        // SAFETY: both non-portable tiers runtime-detected AVX2+FMA.
        return unsafe { avx2::accel_slab_m2p_f32(px, py, pz, xs, ys, zs, ms, eps2) };
    }
    portable::accel_slab_m2p_f32(px, py, pz, xs, ys, zs, ms, eps2)
}

/// Mixed-precision P2P over the f32 mirror slabs, target id masked as in
/// [`accel_slab_p2p_f64`].
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_slab_p2p_f32(
    px: f32,
    py: f32,
    pz: f32,
    target_id: u32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    ms: &[f32],
    ids: &[u32],
    eps2: f32,
) -> (f64, f64, f64, f64) {
    debug_assert_eq!(xs.len() % F32_LANES, 0, "slab must be padded to the lane width");
    debug_assert_eq!(xs.len(), ids.len());
    #[cfg(target_arch = "x86_64")]
    if bhut_simd::isa() != bhut_simd::Isa::Portable {
        // SAFETY: both non-portable tiers runtime-detected AVX2+FMA.
        return unsafe {
            avx2::accel_slab_p2p_f32(px, py, pz, target_id, xs, ys, zs, ms, ids, eps2)
        };
    }
    portable::accel_slab_p2p_f32(px, py, pz, target_id, xs, ys, zs, ms, ids, eps2)
}

/// The safe lane-type bodies: correctness reference and non-AVX2 fallback.
mod portable {
    use super::SlabView;
    use bhut_simd::{
        masked_mass_f32, masked_mass_f64, F32s, F64s, F64w, F32_LANES, F64_LANES, R2_FLOOR_F32,
        R2_FLOOR_F64,
    };

    #[allow(clippy::too_many_arguments)]
    pub fn accel_slab_member_f64(
        px: f64,
        py: f64,
        pz: f64,
        target_id: u32,
        nodes: SlabView<'_>,
        parts: SlabView<'_>,
        ids: &[u32],
        tail: SlabView<'_>,
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (F64s::splat(px), F64s::splat(py), F64s::splat(pz));
        let eps2v = F64s::splat(eps2);
        let floorv = F64s::splat(R2_FLOOR_F64);
        let (mut axv, mut ayv, mut azv) = (F64s::zero(), F64s::zero(), F64s::zero());
        let mut phv = F64s::zero();
        for slab in [nodes, tail] {
            for i in (0..slab.xs.len()).step_by(F64_LANES) {
                let dx = F64s::load(&slab.xs[i..]).sub(pxv);
                let dy = F64s::load(&slab.ys[i..]).sub(pyv);
                let dz = F64s::load(&slab.zs[i..]).sub(pzv);
                let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz)).add(eps2v);
                let inv = r2.max(floorv).rsqrt_nr();
                let im = F64s::load(&slab.ms[i..]).mul(inv);
                phv = phv.add(im);
                let w = im.mul(inv).mul(inv);
                axv = axv.add(dx.mul(w));
                ayv = ayv.add(dy.mul(w));
                azv = azv.add(dz.mul(w));
            }
        }
        for i in (0..parts.xs.len()).step_by(F64_LANES) {
            let dx = F64s::load(&parts.xs[i..]).sub(pxv);
            let dy = F64s::load(&parts.ys[i..]).sub(pyv);
            let dz = F64s::load(&parts.zs[i..]).sub(pzv);
            let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz)).add(eps2v);
            let inv = r2.max(floorv).rsqrt_nr();
            let im = masked_mass_f64(&parts.ms[i..], &ids[i..], target_id).mul(inv);
            phv = phv.add(im);
            let w = im.mul(inv).mul(inv);
            axv = axv.add(dx.mul(w));
            ayv = ayv.add(dy.mul(w));
            azv = azv.add(dz.mul(w));
        }
        (axv.hsum(), ayv.hsum(), azv.hsum(), -phv.hsum())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn accel_slab_m2p_f64(
        px: f64,
        py: f64,
        pz: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (F64s::splat(px), F64s::splat(py), F64s::splat(pz));
        let eps2v = F64s::splat(eps2);
        let floorv = F64s::splat(R2_FLOOR_F64);
        let (mut axv, mut ayv, mut azv) = (F64s::zero(), F64s::zero(), F64s::zero());
        let mut phv = F64s::zero();
        for i in (0..xs.len()).step_by(F64_LANES) {
            let dx = F64s::load(&xs[i..]).sub(pxv);
            let dy = F64s::load(&ys[i..]).sub(pyv);
            let dz = F64s::load(&zs[i..]).sub(pzv);
            let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz)).add(eps2v);
            let inv = r2.max(floorv).rsqrt_nr();
            let im = F64s::load(&ms[i..]).mul(inv);
            phv = phv.add(im);
            let w = im.mul(inv).mul(inv);
            axv = axv.add(dx.mul(w));
            ayv = ayv.add(dy.mul(w));
            azv = azv.add(dz.mul(w));
        }
        (axv.hsum(), ayv.hsum(), azv.hsum(), -phv.hsum())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn accel_slab_p2p_f64(
        px: f64,
        py: f64,
        pz: f64,
        target_id: u32,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        ids: &[u32],
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (F64s::splat(px), F64s::splat(py), F64s::splat(pz));
        let eps2v = F64s::splat(eps2);
        let floorv = F64s::splat(R2_FLOOR_F64);
        let (mut axv, mut ayv, mut azv) = (F64s::zero(), F64s::zero(), F64s::zero());
        let mut phv = F64s::zero();
        for i in (0..xs.len()).step_by(F64_LANES) {
            let dx = F64s::load(&xs[i..]).sub(pxv);
            let dy = F64s::load(&ys[i..]).sub(pyv);
            let dz = F64s::load(&zs[i..]).sub(pzv);
            let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz)).add(eps2v);
            let inv = r2.max(floorv).rsqrt_nr();
            let im = masked_mass_f64(&ms[i..], &ids[i..], target_id).mul(inv);
            phv = phv.add(im);
            let w = im.mul(inv).mul(inv);
            axv = axv.add(dx.mul(w));
            ayv = ayv.add(dy.mul(w));
            azv = azv.add(dz.mul(w));
        }
        (axv.hsum(), ayv.hsum(), azv.hsum(), -phv.hsum())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn accel_slab_m2p_f32(
        px: f32,
        py: f32,
        pz: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        ms: &[f32],
        eps2: f32,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (F32s::splat(px), F32s::splat(py), F32s::splat(pz));
        let eps2v = F32s::splat(eps2);
        let floorv = F32s::splat(R2_FLOOR_F32);
        let (mut axw, mut ayw, mut azw) = (F64w::zero(), F64w::zero(), F64w::zero());
        let mut phw = F64w::zero();
        for i in (0..xs.len()).step_by(F32_LANES) {
            let dx = F32s::load(&xs[i..]).sub(pxv);
            let dy = F32s::load(&ys[i..]).sub(pyv);
            let dz = F32s::load(&zs[i..]).sub(pzv);
            let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz)).add(eps2v);
            let inv = r2.max(floorv).rsqrt();
            let im = F32s::load(&ms[i..]).mul(inv);
            phw.add_widened(im);
            let w = im.mul(inv).mul(inv);
            axw.add_widened(dx.mul(w));
            ayw.add_widened(dy.mul(w));
            azw.add_widened(dz.mul(w));
        }
        (axw.hsum(), ayw.hsum(), azw.hsum(), -phw.hsum())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn accel_slab_p2p_f32(
        px: f32,
        py: f32,
        pz: f32,
        target_id: u32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        ms: &[f32],
        ids: &[u32],
        eps2: f32,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (F32s::splat(px), F32s::splat(py), F32s::splat(pz));
        let eps2v = F32s::splat(eps2);
        let floorv = F32s::splat(R2_FLOOR_F32);
        let (mut axw, mut ayw, mut azw) = (F64w::zero(), F64w::zero(), F64w::zero());
        let mut phw = F64w::zero();
        for i in (0..xs.len()).step_by(F32_LANES) {
            let dx = F32s::load(&xs[i..]).sub(pxv);
            let dy = F32s::load(&ys[i..]).sub(pyv);
            let dz = F32s::load(&zs[i..]).sub(pzv);
            let r2 = dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz)).add(eps2v);
            let inv = r2.max(floorv).rsqrt();
            let im = masked_mass_f32(&ms[i..], &ids[i..], target_id).mul(inv);
            phw.add_widened(im);
            let w = im.mul(inv).mul(inv);
            axw.add_widened(dx.mul(w));
            ayw.add_widened(dy.mul(w));
            azw.add_widened(dz.mul(w));
        }
        (axw.hsum(), ayw.hsum(), azw.hsum(), -phw.hsum())
    }
}

/// Explicit 256-bit bodies. Every operation here is the correctly-rounded
/// IEEE counterpart of the portable body's, executed in the same order, so
/// the two paths return bit-identical results (asserted in the tests on
/// AVX2 hardware).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::SlabView;
    use core::arch::x86_64::*;

    /// `rsqrt_nr(max(r², floor))` — the branch-free singularity guard plus
    /// the division-free Newton–Raphson rsqrt shared by all f64 kernels.
    /// `_mm256_max_pd` has the `a > b ? a : b` convention the portable
    /// [`bhut_simd::F64s::max`] mirrors; the seed/refine sequence is
    /// op-for-op [`bhut_simd::rsqrt_nr_f64`] (`_mm256_sub_epi64` is the
    /// wrapping subtract, `_mm256_fnmadd_pd(a, b, c)` is the IEEE
    /// `fma(-a, b, c)` that `f64::mul_add` computes) — so the bodies stay
    /// bit-identical.
    #[inline(always)]
    pub(super) unsafe fn floored_rsqrt_pd(r2: __m256d) -> __m256d {
        let x = _mm256_max_pd(r2, _mm256_set1_pd(bhut_simd::R2_FLOOR_F64));
        let xh = _mm256_mul_pd(_mm256_set1_pd(0.5), x);
        let three_half = _mm256_set1_pd(1.5);
        let mut y = _mm256_castsi256_pd(_mm256_sub_epi64(
            _mm256_set1_epi64x(bhut_simd::RSQRT_MAGIC_F64 as i64),
            _mm256_srli_epi64::<1>(_mm256_castpd_si256(x)),
        ));
        for _ in 0..4 {
            let t = _mm256_mul_pd(y, y);
            let r = _mm256_fnmadd_pd(xh, t, three_half);
            y = _mm256_mul_pd(y, r);
        }
        y
    }

    #[inline(always)]
    unsafe fn floored_rsqrt_ps(r2: __m256) -> __m256 {
        let clamped = _mm256_max_ps(r2, _mm256_set1_ps(bhut_simd::R2_FLOOR_F32));
        _mm256_div_ps(_mm256_set1_ps(1.0), _mm256_sqrt_ps(clamped))
    }

    /// Horizontal sum in lane order (matches the portable `hsum`).
    #[inline(always)]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        let mut a = [0.0f64; 4];
        _mm256_storeu_pd(a.as_mut_ptr(), v);
        ((a[0] + a[1]) + a[2]) + a[3]
    }

    /// 4-wide accumulator set shared by the f64 bodies.
    #[derive(Clone, Copy)]
    pub(super) struct Acc4 {
        pub(super) ax: __m256d,
        pub(super) ay: __m256d,
        pub(super) az: __m256d,
        pub(super) ph: __m256d,
    }

    impl Acc4 {
        #[inline(always)]
        pub(super) unsafe fn zero() -> Self {
            let z = _mm256_setzero_pd();
            Acc4 { ax: z, ay: z, az: z, ph: z }
        }

        #[inline(always)]
        pub(super) unsafe fn finish(self) -> (f64, f64, f64, f64) {
            (hsum_pd(self.ax), hsum_pd(self.ay), hsum_pd(self.az), -hsum_pd(self.ph))
        }
    }

    /// One 4-lane M2P chunk at slab offset `i`, accumulated into `acc`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn m2p_chunk_f64(
        acc: &mut Acc4,
        i: usize,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        pxv: __m256d,
        pyv: __m256d,
        pzv: __m256d,
        eps2v: __m256d,
    ) {
        let dx = _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), pxv);
        let dy = _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), pyv);
        let dz = _mm256_sub_pd(_mm256_loadu_pd(zs.as_ptr().add(i)), pzv);
        let r2 = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                _mm256_mul_pd(dz, dz),
            ),
            eps2v,
        );
        let inv = floored_rsqrt_pd(r2);
        let im = _mm256_mul_pd(_mm256_loadu_pd(ms.as_ptr().add(i)), inv);
        acc.ph = _mm256_add_pd(acc.ph, im);
        let w = _mm256_mul_pd(_mm256_mul_pd(im, inv), inv);
        acc.ax = _mm256_add_pd(acc.ax, _mm256_mul_pd(dx, w));
        acc.ay = _mm256_add_pd(acc.ay, _mm256_mul_pd(dy, w));
        acc.az = _mm256_add_pd(acc.az, _mm256_mul_pd(dz, w));
    }

    /// One 4-lane P2P chunk: as [`m2p_chunk_f64`] with the `target` id
    /// (an `_mm_set1_epi32` splat) masked to zero mass.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn p2p_chunk_f64(
        acc: &mut Acc4,
        i: usize,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        ids: &[u32],
        target: __m128i,
        pxv: __m256d,
        pyv: __m256d,
        pzv: __m256d,
        eps2v: __m256d,
    ) {
        let one = _mm256_set1_pd(1.0);
        let dx = _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), pxv);
        let dy = _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), pyv);
        let dz = _mm256_sub_pd(_mm256_loadu_pd(zs.as_ptr().add(i)), pzv);
        let r2 = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                _mm256_mul_pd(dz, dz),
            ),
            eps2v,
        );
        // idf = 1.0 where id != target, 0.0 where it matches: widen the
        // 4×32-bit equality mask to 64-bit lanes and andnot against 1.0
        // (the portable `masked_mass_f64` factor).
        let eq = _mm_cmpeq_epi32(_mm_loadu_si128(ids.as_ptr().add(i) as *const __m128i), target);
        let idf = _mm256_andnot_pd(_mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq)), one);
        let inv = floored_rsqrt_pd(r2);
        let m = _mm256_mul_pd(_mm256_loadu_pd(ms.as_ptr().add(i)), idf);
        let im = _mm256_mul_pd(m, inv);
        acc.ph = _mm256_add_pd(acc.ph, im);
        let w = _mm256_mul_pd(_mm256_mul_pd(im, inv), inv);
        acc.ax = _mm256_add_pd(acc.ax, _mm256_mul_pd(dx, w));
        acc.ay = _mm256_add_pd(acc.ay, _mm256_mul_pd(dy, w));
        acc.az = _mm256_add_pd(acc.az, _mm256_mul_pd(dz, w));
    }

    /// Lane-order sum of a widened pair (lanes 0–3 in `lo`, 4–7 in `hi`).
    #[inline(always)]
    unsafe fn hsum_wide(lo: __m256d, hi: __m256d) -> f64 {
        let mut a = [0.0f64; 8];
        _mm256_storeu_pd(a.as_mut_ptr(), lo);
        _mm256_storeu_pd(a.as_mut_ptr().add(4), hi);
        a.iter().fold(0.0, |acc, &x| acc + x)
    }

    /// Widen an 8-lane f32 chunk and add it to the `(lo, hi)` f64
    /// accumulator pair (the portable `F64w::add_widened`).
    #[inline(always)]
    unsafe fn add_widened(lo: &mut __m256d, hi: &mut __m256d, v: __m256) {
        *lo = _mm256_add_pd(*lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
        *hi = _mm256_add_pd(*hi, _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v)));
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accel_slab_m2p_f64(
        px: f64,
        py: f64,
        pz: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm256_set1_pd(px), _mm256_set1_pd(py), _mm256_set1_pd(pz));
        let eps2v = _mm256_set1_pd(eps2);
        let mut acc = Acc4::zero();
        for i in (0..xs.len()).step_by(4) {
            m2p_chunk_f64(&mut acc, i, xs, ys, zs, ms, pxv, pyv, pzv, eps2v);
        }
        acc.finish()
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accel_slab_p2p_f64(
        px: f64,
        py: f64,
        pz: f64,
        target_id: u32,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        ids: &[u32],
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm256_set1_pd(px), _mm256_set1_pd(py), _mm256_set1_pd(pz));
        let eps2v = _mm256_set1_pd(eps2);
        let target = _mm_set1_epi32(target_id as i32);
        let mut acc = Acc4::zero();
        for i in (0..xs.len()).step_by(4) {
            p2p_chunk_f64(&mut acc, i, xs, ys, zs, ms, ids, target, pxv, pyv, pzv, eps2v);
        }
        acc.finish()
    }

    /// Fused member body: same chunk arithmetic as the single-slab kernels,
    /// accumulated into one [`Acc4`] in the order nodes → tail → particles
    /// (matching the portable body exactly).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accel_slab_member_f64(
        px: f64,
        py: f64,
        pz: f64,
        target_id: u32,
        nodes: SlabView<'_>,
        parts: SlabView<'_>,
        ids: &[u32],
        tail: SlabView<'_>,
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm256_set1_pd(px), _mm256_set1_pd(py), _mm256_set1_pd(pz));
        let eps2v = _mm256_set1_pd(eps2);
        let target = _mm_set1_epi32(target_id as i32);
        let mut acc = Acc4::zero();
        for slab in [nodes, tail] {
            for i in (0..slab.xs.len()).step_by(4) {
                m2p_chunk_f64(
                    &mut acc, i, slab.xs, slab.ys, slab.zs, slab.ms, pxv, pyv, pzv, eps2v,
                );
            }
        }
        for i in (0..parts.xs.len()).step_by(4) {
            p2p_chunk_f64(
                &mut acc, i, parts.xs, parts.ys, parts.zs, parts.ms, ids, target, pxv, pyv, pzv,
                eps2v,
            );
        }
        acc.finish()
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn accel_slab_m2p_f32(
        px: f32,
        py: f32,
        pz: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        ms: &[f32],
        eps2: f32,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm256_set1_ps(px), _mm256_set1_ps(py), _mm256_set1_ps(pz));
        let eps2v = _mm256_set1_ps(eps2);
        let (mut axl, mut axh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut ayl, mut ayh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut azl, mut azh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut phl, mut phh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        for i in (0..xs.len()).step_by(8) {
            let dx = _mm256_sub_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), pxv);
            let dy = _mm256_sub_ps(_mm256_loadu_ps(ys.as_ptr().add(i)), pyv);
            let dz = _mm256_sub_ps(_mm256_loadu_ps(zs.as_ptr().add(i)), pzv);
            let r2 = _mm256_add_ps(
                _mm256_add_ps(
                    _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
                    _mm256_mul_ps(dz, dz),
                ),
                eps2v,
            );
            let inv = floored_rsqrt_ps(r2);
            let im = _mm256_mul_ps(_mm256_loadu_ps(ms.as_ptr().add(i)), inv);
            add_widened(&mut phl, &mut phh, im);
            let w = _mm256_mul_ps(_mm256_mul_ps(im, inv), inv);
            add_widened(&mut axl, &mut axh, _mm256_mul_ps(dx, w));
            add_widened(&mut ayl, &mut ayh, _mm256_mul_ps(dy, w));
            add_widened(&mut azl, &mut azh, _mm256_mul_ps(dz, w));
        }
        (hsum_wide(axl, axh), hsum_wide(ayl, ayh), hsum_wide(azl, azh), -hsum_wide(phl, phh))
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn accel_slab_p2p_f32(
        px: f32,
        py: f32,
        pz: f32,
        target_id: u32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        ms: &[f32],
        ids: &[u32],
        eps2: f32,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm256_set1_ps(px), _mm256_set1_ps(py), _mm256_set1_ps(pz));
        let eps2v = _mm256_set1_ps(eps2);
        let one = _mm256_set1_ps(1.0);
        let target = _mm256_set1_epi32(target_id as i32);
        let (mut axl, mut axh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut ayl, mut ayh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut azl, mut azh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut phl, mut phh) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        for i in (0..xs.len()).step_by(8) {
            let dx = _mm256_sub_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), pxv);
            let dy = _mm256_sub_ps(_mm256_loadu_ps(ys.as_ptr().add(i)), pyv);
            let dz = _mm256_sub_ps(_mm256_loadu_ps(zs.as_ptr().add(i)), pzv);
            let r2 = _mm256_add_ps(
                _mm256_add_ps(
                    _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
                    _mm256_mul_ps(dz, dz),
                ),
                eps2v,
            );
            let eq = _mm256_cmpeq_epi32(
                _mm256_loadu_si256(ids.as_ptr().add(i) as *const __m256i),
                target,
            );
            let idf = _mm256_andnot_ps(_mm256_castsi256_ps(eq), one);
            let inv = floored_rsqrt_ps(r2);
            let m = _mm256_mul_ps(_mm256_loadu_ps(ms.as_ptr().add(i)), idf);
            let im = _mm256_mul_ps(m, inv);
            add_widened(&mut phl, &mut phh, im);
            let w = _mm256_mul_ps(_mm256_mul_ps(im, inv), inv);
            add_widened(&mut axl, &mut axh, _mm256_mul_ps(dx, w));
            add_widened(&mut ayl, &mut ayh, _mm256_mul_ps(dy, w));
            add_widened(&mut azl, &mut azh, _mm256_mul_ps(dz, w));
        }
        (hsum_wide(axl, axh), hsum_wide(ayl, ayh), hsum_wide(azl, azh), -hsum_wide(phl, phh))
    }
}

/// Explicit 512-bit bodies for the f64 kernels. Same chunk arithmetic as
/// [`avx2`] at eight lanes: every elementwise op is the correctly-rounded
/// IEEE counterpart of two consecutive 4-lane AVX2 chunks, and each 512-bit
/// result is folded lo-then-hi into the shared 256-bit [`avx2::Acc4`] — the
/// exact accumulation order of the narrower body — so this tier is bitwise
/// the AVX2 (and portable) result, just faster. The win is real only
/// because the NR rsqrt is pure mul/FMA: with a hardware sqrt+div the
/// 256-bit-wide divider would serialize the doubled lanes right back.
///
/// Slabs are padded to [`bhut_simd::PAD_MULTIPLE`] (8) in practice, but the
/// public contract only promises a multiple of [`F64_LANES`] (4), so each
/// loop finishes a possible trailing 4-lane chunk with the AVX2 helper.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::avx2::{self, Acc4};
    use super::SlabView;
    use core::arch::x86_64::*;

    /// Eight-lane [`avx2::floored_rsqrt_pd`]: same clamp, same seed
    /// subtract, same four FNMA-refined Newton steps.
    #[inline(always)]
    unsafe fn floored_rsqrt_pd8(r2: __m512d) -> __m512d {
        let x = _mm512_max_pd(r2, _mm512_set1_pd(bhut_simd::R2_FLOOR_F64));
        let xh = _mm512_mul_pd(_mm512_set1_pd(0.5), x);
        let three_half = _mm512_set1_pd(1.5);
        let mut y = _mm512_castsi512_pd(_mm512_sub_epi64(
            _mm512_set1_epi64(bhut_simd::RSQRT_MAGIC_F64 as i64),
            _mm512_srli_epi64::<1>(_mm512_castpd_si512(x)),
        ));
        for _ in 0..4 {
            let t = _mm512_mul_pd(y, y);
            let r = _mm512_fnmadd_pd(xh, t, three_half);
            y = _mm512_mul_pd(y, r);
        }
        y
    }

    /// Fold an 8-lane value into a 4-lane accumulator, low half first —
    /// the order the AVX2 body adds its two consecutive chunks in.
    #[inline(always)]
    unsafe fn add_lo_hi(acc: &mut __m256d, v: __m512d) {
        *acc = _mm256_add_pd(*acc, _mm512_castpd512_pd256(v));
        *acc = _mm256_add_pd(*acc, _mm512_extractf64x4_pd::<1>(v));
    }

    /// One 8-lane M2P chunk at slab offset `i`, accumulated into `acc`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn m2p_chunk8_f64(
        acc: &mut Acc4,
        i: usize,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        pxv: __m512d,
        pyv: __m512d,
        pzv: __m512d,
        eps2v: __m512d,
    ) {
        let dx = _mm512_sub_pd(_mm512_loadu_pd(xs.as_ptr().add(i)), pxv);
        let dy = _mm512_sub_pd(_mm512_loadu_pd(ys.as_ptr().add(i)), pyv);
        let dz = _mm512_sub_pd(_mm512_loadu_pd(zs.as_ptr().add(i)), pzv);
        let r2 = _mm512_add_pd(
            _mm512_add_pd(
                _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)),
                _mm512_mul_pd(dz, dz),
            ),
            eps2v,
        );
        let inv = floored_rsqrt_pd8(r2);
        let im = _mm512_mul_pd(_mm512_loadu_pd(ms.as_ptr().add(i)), inv);
        add_lo_hi(&mut acc.ph, im);
        let w = _mm512_mul_pd(_mm512_mul_pd(im, inv), inv);
        add_lo_hi(&mut acc.ax, _mm512_mul_pd(dx, w));
        add_lo_hi(&mut acc.ay, _mm512_mul_pd(dy, w));
        add_lo_hi(&mut acc.az, _mm512_mul_pd(dz, w));
    }

    /// One 8-lane P2P chunk: as [`m2p_chunk8_f64`] with the `target` id
    /// (an `_mm256_set1_epi32` splat over the eight 32-bit ids) masked to
    /// zero mass. The andnot runs in the integer domain
    /// (`_mm512_andnot_si512` is AVX-512F; the `_pd` form is not) — bitwise
    /// the same operation as the AVX2 body's `_mm256_andnot_pd`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn p2p_chunk8_f64(
        acc: &mut Acc4,
        i: usize,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        ids: &[u32],
        target: __m256i,
        pxv: __m512d,
        pyv: __m512d,
        pzv: __m512d,
        eps2v: __m512d,
    ) {
        let one = _mm512_set1_pd(1.0);
        let dx = _mm512_sub_pd(_mm512_loadu_pd(xs.as_ptr().add(i)), pxv);
        let dy = _mm512_sub_pd(_mm512_loadu_pd(ys.as_ptr().add(i)), pyv);
        let dz = _mm512_sub_pd(_mm512_loadu_pd(zs.as_ptr().add(i)), pzv);
        let r2 = _mm512_add_pd(
            _mm512_add_pd(
                _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)),
                _mm512_mul_pd(dz, dz),
            ),
            eps2v,
        );
        let eq =
            _mm256_cmpeq_epi32(_mm256_loadu_si256(ids.as_ptr().add(i) as *const __m256i), target);
        let idf = _mm512_castsi512_pd(_mm512_andnot_si512(
            _mm512_cvtepi32_epi64(eq),
            _mm512_castpd_si512(one),
        ));
        let inv = floored_rsqrt_pd8(r2);
        let m = _mm512_mul_pd(_mm512_loadu_pd(ms.as_ptr().add(i)), idf);
        let im = _mm512_mul_pd(m, inv);
        add_lo_hi(&mut acc.ph, im);
        let w = _mm512_mul_pd(_mm512_mul_pd(im, inv), inv);
        add_lo_hi(&mut acc.ax, _mm512_mul_pd(dx, w));
        add_lo_hi(&mut acc.ay, _mm512_mul_pd(dy, w));
        add_lo_hi(&mut acc.az, _mm512_mul_pd(dz, w));
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn accel_slab_m2p_f64(
        px: f64,
        py: f64,
        pz: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm512_set1_pd(px), _mm512_set1_pd(py), _mm512_set1_pd(pz));
        let eps2v = _mm512_set1_pd(eps2);
        let mut acc = Acc4::zero();
        let n8 = xs.len() & !7;
        for i in (0..n8).step_by(8) {
            m2p_chunk8_f64(&mut acc, i, xs, ys, zs, ms, pxv, pyv, pzv, eps2v);
        }
        if n8 < xs.len() {
            avx2::m2p_chunk_f64(
                &mut acc,
                n8,
                xs,
                ys,
                zs,
                ms,
                _mm512_castpd512_pd256(pxv),
                _mm512_castpd512_pd256(pyv),
                _mm512_castpd512_pd256(pzv),
                _mm512_castpd512_pd256(eps2v),
            );
        }
        acc.finish()
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn accel_slab_p2p_f64(
        px: f64,
        py: f64,
        pz: f64,
        target_id: u32,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ms: &[f64],
        ids: &[u32],
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm512_set1_pd(px), _mm512_set1_pd(py), _mm512_set1_pd(pz));
        let eps2v = _mm512_set1_pd(eps2);
        let target = _mm256_set1_epi32(target_id as i32);
        let mut acc = Acc4::zero();
        let n8 = xs.len() & !7;
        for i in (0..n8).step_by(8) {
            p2p_chunk8_f64(&mut acc, i, xs, ys, zs, ms, ids, target, pxv, pyv, pzv, eps2v);
        }
        if n8 < xs.len() {
            avx2::p2p_chunk_f64(
                &mut acc,
                n8,
                xs,
                ys,
                zs,
                ms,
                ids,
                _mm_set1_epi32(target_id as i32),
                _mm512_castpd512_pd256(pxv),
                _mm512_castpd512_pd256(pyv),
                _mm512_castpd512_pd256(pzv),
                _mm512_castpd512_pd256(eps2v),
            );
        }
        acc.finish()
    }

    /// Fused member body: nodes → tail → particles into one [`Acc4`],
    /// matching the AVX2 and portable bodies exactly.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn accel_slab_member_f64(
        px: f64,
        py: f64,
        pz: f64,
        target_id: u32,
        nodes: SlabView<'_>,
        parts: SlabView<'_>,
        ids: &[u32],
        tail: SlabView<'_>,
        eps2: f64,
    ) -> (f64, f64, f64, f64) {
        let (pxv, pyv, pzv) = (_mm512_set1_pd(px), _mm512_set1_pd(py), _mm512_set1_pd(pz));
        let eps2v = _mm512_set1_pd(eps2);
        let (px4, py4, pz4, eps24) = (
            _mm512_castpd512_pd256(pxv),
            _mm512_castpd512_pd256(pyv),
            _mm512_castpd512_pd256(pzv),
            _mm512_castpd512_pd256(eps2v),
        );
        let target = _mm256_set1_epi32(target_id as i32);
        let mut acc = Acc4::zero();
        for slab in [nodes, tail] {
            let n8 = slab.xs.len() & !7;
            for i in (0..n8).step_by(8) {
                m2p_chunk8_f64(
                    &mut acc, i, slab.xs, slab.ys, slab.zs, slab.ms, pxv, pyv, pzv, eps2v,
                );
            }
            if n8 < slab.xs.len() {
                avx2::m2p_chunk_f64(
                    &mut acc, n8, slab.xs, slab.ys, slab.zs, slab.ms, px4, py4, pz4, eps24,
                );
            }
        }
        let n8 = parts.xs.len() & !7;
        for i in (0..n8).step_by(8) {
            p2p_chunk8_f64(
                &mut acc, i, parts.xs, parts.ys, parts.zs, parts.ms, ids, target, pxv, pyv, pzv,
                eps2v,
            );
        }
        if n8 < parts.xs.len() {
            avx2::p2p_chunk_f64(
                &mut acc,
                n8,
                parts.xs,
                parts.ys,
                parts.zs,
                parts.ms,
                ids,
                _mm_set1_epi32(target_id as i32),
                px4,
                py4,
                pz4,
                eps24,
            );
        }
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{accel_batch_m2p, accel_batch_p2p};
    use bhut_geom::Vec3;
    use bhut_simd::{AlignedF32Slab, AlignedF64Slab, AlignedU32Slab, PAD_MULTIPLE};

    const EPS: f64 = 1e-3;

    struct Slabs {
        xs: AlignedF64Slab,
        ys: AlignedF64Slab,
        zs: AlignedF64Slab,
        ms: AlignedF64Slab,
        ids: AlignedU32Slab,
    }

    fn make_slabs(n: usize, seed: u64) -> Slabs {
        // Small deterministic LCG; no external RNG needed here.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = Slabs {
            xs: AlignedF64Slab::new(),
            ys: AlignedF64Slab::new(),
            zs: AlignedF64Slab::new(),
            ms: AlignedF64Slab::new(),
            ids: AlignedU32Slab::new(),
        };
        for i in 0..n {
            s.xs.push(next() * 2.0 - 1.0);
            s.ys.push(next() * 2.0 - 1.0);
            s.zs.push(next() * 2.0 - 1.0);
            s.ms.push(next() + 0.1);
            s.ids.push(i as u32);
        }
        s.xs.pad_to(PAD_MULTIPLE, 0.0);
        s.ys.pad_to(PAD_MULTIPLE, 0.0);
        s.zs.pad_to(PAD_MULTIPLE, 0.0);
        s.ms.pad_to(PAD_MULTIPLE, 0.0);
        s.ids.pad_to(PAD_MULTIPLE, u32::MAX);
        s
    }

    fn to_f32(s: &AlignedF64Slab) -> AlignedF32Slab {
        let mut out = AlignedF32Slab::new();
        for &v in s.padded() {
            out.push(v as f32);
        }
        out.pad_to(PAD_MULTIPLE, 0.0);
        out
    }

    #[test]
    fn f64_slab_kernels_match_scalar_batch_within_1e12() {
        for n in [0usize, 1, 3, 8, 37, 200] {
            let s = make_slabs(n, 42 + n as u64);
            let p = Vec3::new(0.13, -0.27, 0.61);
            let (acc_ref, phi_ref) = accel_batch_m2p(p, &s.xs, &s.ys, &s.zs, &s.ms, EPS);
            let (ax, ay, az, phi) = accel_slab_m2p_f64(
                p.x,
                p.y,
                p.z,
                s.xs.padded(),
                s.ys.padded(),
                s.zs.padded(),
                s.ms.padded(),
                EPS * EPS,
            );
            let tol = 1e-12;
            assert!(acc_ref.dist(Vec3::new(ax, ay, az)) <= tol * acc_ref.norm().max(1.0), "n={n}");
            assert!((phi - phi_ref).abs() <= tol * phi_ref.abs().max(1.0), "n={n}");

            let target = if n > 0 { (n / 2) as u32 } else { 0 };
            let (acc_ref, phi_ref) =
                accel_batch_p2p(p, target, &s.xs, &s.ys, &s.zs, &s.ms, &s.ids, EPS);
            let (ax, ay, az, phi) = accel_slab_p2p_f64(
                p.x,
                p.y,
                p.z,
                target,
                s.xs.padded(),
                s.ys.padded(),
                s.zs.padded(),
                s.ms.padded(),
                s.ids.padded(),
                EPS * EPS,
            );
            assert!(acc_ref.dist(Vec3::new(ax, ay, az)) <= tol * acc_ref.norm().max(1.0), "n={n}");
            assert!((phi - phi_ref).abs() <= tol * phi_ref.abs().max(1.0), "n={n}");
        }
    }

    fn view(s: &Slabs) -> SlabView<'_> {
        SlabView { xs: s.xs.padded(), ys: s.ys.padded(), zs: s.zs.padded(), ms: s.ms.padded() }
    }

    #[test]
    fn fused_member_kernel_matches_three_scalar_batches_within_1e12() {
        for (nn, np, nt) in [(0usize, 0usize, 0usize), (5, 3, 0), (0, 9, 17), (40, 16, 7)] {
            let nodes = make_slabs(nn, 11 + nn as u64);
            let parts = make_slabs(np, 23 + np as u64);
            let tail = make_slabs(nt, 31 + nt as u64);
            let p = Vec3::new(0.31, 0.07, -0.55);
            let target = 1u32;
            let (an, pn) = accel_batch_m2p(p, &nodes.xs, &nodes.ys, &nodes.zs, &nodes.ms, EPS);
            let (ap, pp) = accel_batch_p2p(
                p, target, &parts.xs, &parts.ys, &parts.zs, &parts.ms, &parts.ids, EPS,
            );
            let (at, pt) = accel_batch_m2p(p, &tail.xs, &tail.ys, &tail.zs, &tail.ms, EPS);
            let acc_ref = an + ap + at;
            let phi_ref = pn + pp + pt;
            let (ax, ay, az, phi) = accel_slab_member_f64(
                p.x,
                p.y,
                p.z,
                target,
                view(&nodes),
                view(&parts),
                parts.ids.padded(),
                view(&tail),
                EPS * EPS,
            );
            let tol = 1e-12;
            assert!(
                acc_ref.dist(Vec3::new(ax, ay, az)) <= tol * acc_ref.norm().max(1.0),
                "n={nn}/{np}/{nt}"
            );
            assert!((phi - phi_ref).abs() <= tol * phi_ref.abs().max(1.0), "n={nn}/{np}/{nt}");
        }
    }

    #[test]
    fn dispatched_member_kernel_is_bitwise_the_portable_body() {
        for (nn, np, nt) in [(0usize, 4usize, 0usize), (13, 16, 5), (64, 7, 33)] {
            let nodes = make_slabs(nn, 301 + nn as u64);
            let parts = make_slabs(np, 401 + np as u64);
            let tail = make_slabs(nt, 501 + nt as u64);
            let p = Vec3::new(-0.2, 0.9, 0.4);
            let target = (np / 2) as u32;
            let got = accel_slab_member_f64(
                p.x,
                p.y,
                p.z,
                target,
                view(&nodes),
                view(&parts),
                parts.ids.padded(),
                view(&tail),
                EPS * EPS,
            );
            let want = portable::accel_slab_member_f64(
                p.x,
                p.y,
                p.z,
                target,
                view(&nodes),
                view(&parts),
                parts.ids.padded(),
                view(&tail),
                EPS * EPS,
            );
            assert_eq!(got, want, "member f64, n={nn}/{np}/{nt}");
        }
    }

    #[test]
    fn dispatched_kernels_are_bitwise_the_portable_bodies() {
        // The AVX2 bodies perform the same IEEE operations in the same
        // order as the portable ones, so on AVX2 hardware the public
        // (dispatched) kernels must agree with the portable bodies bit for
        // bit. On non-AVX2 hosts both sides take the portable path and the
        // assertion is trivially true.
        for n in [0usize, 5, 8, 64, 333] {
            let s = make_slabs(n, 1000 + n as u64);
            let p = Vec3::new(-0.4, 0.8, 0.2);
            let target = (n / 3) as u32;
            let got = accel_slab_m2p_f64(
                p.x,
                p.y,
                p.z,
                s.xs.padded(),
                s.ys.padded(),
                s.zs.padded(),
                s.ms.padded(),
                EPS * EPS,
            );
            let want = portable::accel_slab_m2p_f64(
                p.x,
                p.y,
                p.z,
                s.xs.padded(),
                s.ys.padded(),
                s.zs.padded(),
                s.ms.padded(),
                EPS * EPS,
            );
            assert_eq!(got, want, "m2p f64, n={n}");
            let got = accel_slab_p2p_f64(
                p.x,
                p.y,
                p.z,
                target,
                s.xs.padded(),
                s.ys.padded(),
                s.zs.padded(),
                s.ms.padded(),
                s.ids.padded(),
                EPS * EPS,
            );
            let want = portable::accel_slab_p2p_f64(
                p.x,
                p.y,
                p.z,
                target,
                s.xs.padded(),
                s.ys.padded(),
                s.zs.padded(),
                s.ms.padded(),
                s.ids.padded(),
                EPS * EPS,
            );
            assert_eq!(got, want, "p2p f64, n={n}");

            let xs = to_f32(&s.xs);
            let ys = to_f32(&s.ys);
            let zs = to_f32(&s.zs);
            let ms = to_f32(&s.ms);
            let e2 = (EPS * EPS) as f32;
            let got = accel_slab_m2p_f32(
                p.x as f32,
                p.y as f32,
                p.z as f32,
                xs.padded(),
                ys.padded(),
                zs.padded(),
                ms.padded(),
                e2,
            );
            let want = portable::accel_slab_m2p_f32(
                p.x as f32,
                p.y as f32,
                p.z as f32,
                xs.padded(),
                ys.padded(),
                zs.padded(),
                ms.padded(),
                e2,
            );
            assert_eq!(got, want, "m2p f32, n={n}");
            let got = accel_slab_p2p_f32(
                p.x as f32,
                p.y as f32,
                p.z as f32,
                target,
                xs.padded(),
                ys.padded(),
                zs.padded(),
                ms.padded(),
                s.ids.padded(),
                e2,
            );
            let want = portable::accel_slab_p2p_f32(
                p.x as f32,
                p.y as f32,
                p.z as f32,
                target,
                xs.padded(),
                ys.padded(),
                zs.padded(),
                ms.padded(),
                s.ids.padded(),
                e2,
            );
            assert_eq!(got, want, "p2p f32, n={n}");
        }
    }

    #[test]
    fn zero_mass_padding_contributes_exactly_nothing() {
        // Same logical data, different padded tail lengths → identical sums.
        let a = make_slabs(9, 7);
        let mut b = make_slabs(9, 7);
        for s in [&mut b.xs, &mut b.ys, &mut b.zs, &mut b.ms] {
            s.pad_to(PAD_MULTIPLE * 4, 0.0);
        }
        b.ids.pad_to(PAD_MULTIPLE * 4, u32::MAX);
        let p = Vec3::new(0.5, 0.5, 0.5);
        let ra = accel_slab_m2p_f64(
            p.x,
            p.y,
            p.z,
            a.xs.padded(),
            a.ys.padded(),
            a.zs.padded(),
            a.ms.padded(),
            EPS * EPS,
        );
        let rb = accel_slab_m2p_f64(
            p.x,
            p.y,
            p.z,
            b.xs.padded(),
            b.ys.padded(),
            b.zs.padded(),
            b.ms.padded(),
            EPS * EPS,
        );
        assert_eq!(ra, rb);
    }

    #[test]
    fn unsoftened_self_interaction_is_guarded() {
        // eps = 0 and the target sitting exactly on a source: the r² = 0 lane
        // must contribute zero, not NaN.
        let s = make_slabs(5, 3);
        // Evaluate exactly on top of source 2.
        let p = Vec3::new(s.xs[2], s.ys[2], s.zs[2]);
        let (ax, ay, az, phi) = accel_slab_m2p_f64(
            p.x,
            p.y,
            p.z,
            s.xs.padded(),
            s.ys.padded(),
            s.zs.padded(),
            s.ms.padded(),
            0.0,
        );
        assert!(ax.is_finite() && ay.is_finite() && az.is_finite() && phi.is_finite());
        let (bx, by, bz, bphi) = accel_slab_p2p_f64(
            p.x,
            p.y,
            p.z,
            u32::MAX - 1, // no id matches; only the r² guard protects
            s.xs.padded(),
            s.ys.padded(),
            s.zs.padded(),
            s.ms.padded(),
            s.ids.padded(),
            0.0,
        );
        assert!(bx.is_finite() && by.is_finite() && bz.is_finite() && bphi.is_finite());
        // The f32 path hits the same guard.
        let xs = to_f32(&s.xs);
        let ys = to_f32(&s.ys);
        let zs = to_f32(&s.zs);
        let ms = to_f32(&s.ms);
        let (cx, cy, cz, cphi) = accel_slab_m2p_f32(
            p.x as f32,
            p.y as f32,
            p.z as f32,
            xs.padded(),
            ys.padded(),
            zs.padded(),
            ms.padded(),
            0.0,
        );
        assert!(cx.is_finite() && cy.is_finite() && cz.is_finite() && cphi.is_finite());
    }

    #[test]
    fn mixed_precision_tracks_f64_to_single_precision() {
        let s = make_slabs(300, 99);
        let xs = to_f32(&s.xs);
        let ys = to_f32(&s.ys);
        let zs = to_f32(&s.zs);
        let ms = to_f32(&s.ms);
        let p = Vec3::new(2.0, 2.0, 2.0); // outside the cloud: well-conditioned
        let (acc_ref, phi_ref) = accel_batch_m2p(p, &s.xs, &s.ys, &s.zs, &s.ms, EPS);
        let (ax, ay, az, phi) = accel_slab_m2p_f32(
            p.x as f32,
            p.y as f32,
            p.z as f32,
            xs.padded(),
            ys.padded(),
            zs.padded(),
            ms.padded(),
            (EPS * EPS) as f32,
        );
        // f32 lanes carry ~1e-7 relative noise per interaction; the f64
        // accumulator keeps the sum from drifting beyond ~1e-5 relative.
        let tol = 1e-5;
        assert!(
            acc_ref.dist(Vec3::new(ax, ay, az)) <= tol * acc_ref.norm(),
            "mixed {:?} vs f64 {:?}",
            (ax, ay, az),
            acc_ref
        );
        assert!((phi - phi_ref).abs() <= tol * phi_ref.abs());

        let target = 150u32;
        let (acc_ref, phi_ref) =
            accel_batch_p2p(p, target, &s.xs, &s.ys, &s.zs, &s.ms, &s.ids, EPS);
        let (ax, ay, az, phi) = accel_slab_p2p_f32(
            p.x as f32,
            p.y as f32,
            p.z as f32,
            target,
            xs.padded(),
            ys.padded(),
            zs.padded(),
            ms.padded(),
            s.ids.padded(),
            (EPS * EPS) as f32,
        );
        assert!(acc_ref.dist(Vec3::new(ax, ay, az)) <= tol * acc_ref.norm());
        assert!((phi - phi_ref).abs() <= tol * phi_ref.abs());
    }
}
