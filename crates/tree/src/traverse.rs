//! Tree traversal and force/potential evaluation.
//!
//! §2: "the multipole acceptance criterion is applied to the root of the
//! tree to determine if an interaction can be computed; if not, the node is
//! expanded and the process is repeated for each of the (four or eight)
//! children."
//!
//! The traversal core [`for_each_interaction`] is generic over an interaction
//! sink, so the same walk serves
//!
//! * monopole force / potential evaluation ([`accel_on`], [`potential_at`]),
//! * degree-k multipole evaluation (in `bhut-multipole`),
//! * per-node *load* accounting ([`accumulate_loads`]) — "each node in the
//!   tree keeps track of the number of particles it interacts with" (§3.3) —
//!   which is what the SPDA/DPDA balancers consume, and
//! * the function-shipping engine in `bhut-core`, which cuts the walk at
//!   non-local branch nodes.

use crate::mac::Mac;
use crate::node::{NodeId, Tree, NIL};
use bhut_geom::{Particle, Vec3};

/// Counters describing one (or many accumulated) traversals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Particle–node interactions (MAC accepted).
    pub p2n: u64,
    /// Particle–particle interactions (direct sums in leaves).
    pub p2p: u64,
    /// MAC evaluations performed.
    pub mac_tests: u64,
}

impl TraversalStats {
    /// Total "force computations" in the paper's sense (the `F` of
    /// Tables 1/4).
    pub fn interactions(&self) -> u64 {
        self.p2n + self.p2p
    }

    pub fn merge(&mut self, o: TraversalStats) {
        self.p2n += o.p2n;
        self.p2p += o.p2p;
        self.mac_tests += o.mac_tests;
    }
}

/// One approved interaction delivered to the traversal sink.
#[derive(Debug, Clone, Copy)]
pub enum Interaction {
    /// Evaluate the expansion of node `id` at the target.
    Node(NodeId),
    /// Direct particle–particle interaction with particle `index` (an index
    /// into the particle slice backing the tree).
    Particle(u32),
}

/// Walk the tree for a target at `point`, applying `mac`, and deliver every
/// approved interaction to `sink`. `skip_id` excludes one particle id (the
/// target itself) from direct sums.
///
/// The walk expands a node when the MAC rejects it *and* it has children;
/// a rejected leaf degenerates to direct particle–particle interactions.
/// Single-particle leaves skip the MAC and interact directly — expanding a
/// singleton buys nothing.
pub fn for_each_interaction(
    tree: &Tree,
    particles: &[Particle],
    point: Vec3,
    skip_id: Option<u32>,
    mac: &impl Mac,
    sink: impl FnMut(Interaction),
) -> TraversalStats {
    for_each_interaction_from(tree, 0, particles, point, skip_id, mac, sink)
}

/// [`for_each_interaction`] restricted to the subtree rooted at `root`. The
/// function-shipping protocol uses this at the *owning* processor: a shipped
/// particle interacts with the entire subtree under one branch node (§3.2).
pub fn for_each_interaction_from(
    tree: &Tree,
    root: NodeId,
    particles: &[Particle],
    point: Vec3,
    skip_id: Option<u32>,
    mac: &impl Mac,
    mut sink: impl FnMut(Interaction),
) -> TraversalStats {
    let mut stats = TraversalStats::default();
    if tree.is_empty() {
        return stats;
    }
    let mut stack: Vec<NodeId> = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        let count = node.count();
        if count == 0 {
            continue;
        }
        if count == 1 {
            let pi = tree.order[node.start as usize];
            if Some(particles[pi as usize].id) != skip_id {
                stats.p2p += 1;
                sink(Interaction::Particle(pi));
            }
            continue;
        }
        stats.mac_tests += 1;
        if mac.accept(&node.cell, node.com, point) {
            stats.p2n += 1;
            sink(Interaction::Node(id));
        } else if node.is_leaf() {
            for &pi in tree.particles_under(id) {
                if Some(particles[pi as usize].id) != skip_id {
                    stats.p2p += 1;
                    sink(Interaction::Particle(pi));
                }
            }
        } else {
            for &c in node.children.iter().rev() {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
    }
    stats
}

/// Monopole kernel: acceleration at `point` due to mass `m` at `src`,
/// Plummer-softened by `eps` (G = 1).
#[inline]
pub fn accel_kernel(point: Vec3, src: Vec3, m: f64, eps: f64) -> Vec3 {
    let d = src - point;
    let r2 = d.norm_sq() + eps * eps;
    if r2 == 0.0 {
        return Vec3::ZERO;
    }
    d * (m / (r2 * r2.sqrt()))
}

/// Monopole kernel: potential at `point` due to mass `m` at `src`.
#[inline]
pub fn potential_kernel(point: Vec3, src: Vec3, m: f64, eps: f64) -> f64 {
    let r2 = point.dist_sq(src) + eps * eps;
    if r2 == 0.0 {
        return 0.0;
    }
    -m / r2.sqrt()
}

/// Barnes–Hut acceleration at `point` using monopole (center-of-mass)
/// approximations for accepted nodes.
pub fn accel_on(
    tree: &Tree,
    particles: &[Particle],
    point: Vec3,
    skip_id: Option<u32>,
    mac: &impl Mac,
    eps: f64,
) -> (Vec3, TraversalStats) {
    let mut acc = Vec3::ZERO;
    let stats = for_each_interaction(tree, particles, point, skip_id, mac, |i| match i {
        Interaction::Node(id) => {
            let n = tree.node(id);
            acc += accel_kernel(point, n.com, n.mass, eps);
        }
        Interaction::Particle(pi) => {
            let p = &particles[pi as usize];
            acc += accel_kernel(point, p.pos, p.mass, eps);
        }
    });
    (acc, stats)
}

/// Barnes–Hut gravitational potential at `point` (monopole approximation).
pub fn potential_at(
    tree: &Tree,
    particles: &[Particle],
    point: Vec3,
    skip_id: Option<u32>,
    mac: &impl Mac,
    eps: f64,
) -> (f64, TraversalStats) {
    let mut phi = 0.0;
    let stats = for_each_interaction(tree, particles, point, skip_id, mac, |i| match i {
        Interaction::Node(id) => {
            let n = tree.node(id);
            phi += potential_kernel(point, n.com, n.mass, eps);
        }
        Interaction::Particle(pi) => {
            let p = &particles[pi as usize];
            phi += potential_kernel(point, p.pos, p.mass, eps);
        }
    });
    (phi, stats)
}

/// Accumulate per-node interaction loads for a batch of targets: `loads[id]`
/// gains 1 for each accepted particle–node interaction with node `id`, and
/// the *enclosing leaf* gains 1 for each direct particle–particle
/// interaction. This is the per-node load measure the DPDA costzones
/// balancer sums up the tree (§3.3.3).
pub fn accumulate_loads(
    tree: &Tree,
    particles: &[Particle],
    targets: impl IntoIterator<Item = (Vec3, Option<u32>)>,
    mac: &impl Mac,
    loads: &mut [u64],
) -> TraversalStats {
    assert_eq!(loads.len(), tree.len(), "loads slice must match node count");
    // Map each particle index to its containing leaf once.
    let mut leaf_of: Vec<NodeId> = vec![0; tree.order.len()];
    for (idx, n) in tree.nodes.iter().enumerate() {
        if n.is_leaf() {
            for &pi in tree.particles_under(idx as NodeId) {
                leaf_of[pi as usize] = idx as NodeId;
            }
        }
    }
    let mut total = TraversalStats::default();
    for (point, skip) in targets {
        let stats = for_each_interaction(tree, particles, point, skip, mac, |i| match i {
            Interaction::Node(id) => loads[id as usize] += 1,
            Interaction::Particle(pi) => loads[leaf_of[pi as usize] as usize] += 1,
        });
        total.merge(stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::direct;
    use crate::mac::BarnesHutMac;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};

    const EPS: f64 = 1e-4;

    #[test]
    fn accel_matches_direct_for_tiny_alpha() {
        // α → 0 forces full expansion: tree result equals direct summation.
        let set = uniform_cube(200, 1.0, 1);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(4));
        let mac = BarnesHutMac::new(1e-9);
        for p in set.iter().take(20) {
            let (a, _) = accel_on(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
            let exact = direct::accel_direct(&set.particles, p.pos, Some(p.id), EPS);
            assert!(a.dist(exact) <= 1e-12 * exact.norm().max(1.0), "{a:?} vs {exact:?}");
        }
    }

    #[test]
    fn accel_close_to_direct_for_typical_alpha() {
        let set = plummer(PlummerSpec { n: 1500, ..Default::default() });
        let t = build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.5);
        let mut num = 0.0;
        let mut den = 0.0;
        for p in set.iter().take(100) {
            let (a, _) = accel_on(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
            let exact = direct::accel_direct(&set.particles, p.pos, Some(p.id), EPS);
            num += a.dist_sq(exact);
            den += exact.norm_sq();
        }
        let rel = (num / den).sqrt();
        assert!(rel < 0.02, "relative force error too large: {rel}");
    }

    #[test]
    fn smaller_alpha_means_more_interactions_and_less_error() {
        let set = plummer(PlummerSpec { n: 800, seed: 5, ..Default::default() });
        let t = build(&set.particles, BuildParams::default());
        let run = |alpha: f64| -> (u64, f64) {
            let mac = BarnesHutMac::new(alpha);
            let mut inter = 0;
            let mut num = 0.0;
            let mut den = 0.0;
            for p in set.iter().take(200) {
                let (phi, st) = potential_at(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
                let exact = direct::potential_direct(&set.particles, p.pos, Some(p.id), EPS);
                inter += st.interactions();
                num += (phi - exact) * (phi - exact);
                den += exact * exact;
            }
            (inter, (num / den).sqrt())
        };
        let (i_small, e_small) = run(0.3);
        let (i_mid, _) = run(0.8);
        let (i_big, e_big) = run(1.4);
        // Interactions shrink strictly as α grows…
        assert!(i_small > i_mid && i_mid > i_big, "{i_small} {i_mid} {i_big}");
        // …and accuracy degrades between the extremes.
        assert!(e_small < e_big, "error did not grow: {e_small} vs {e_big}");
    }

    #[test]
    fn skip_id_excludes_self() {
        let set = uniform_cube(50, 1.0, 2);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(4));
        let mac = BarnesHutMac::new(1e-9); // full expansion ⇒ p2p only
        let p = &set.particles[7];
        let (_, with_skip) = accel_on(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
        let (_, no_skip) = accel_on(&t, &set.particles, p.pos, None, &mac, EPS);
        assert_eq!(with_skip.p2p + 1, no_skip.p2p);
    }

    #[test]
    fn empty_tree_yields_zero() {
        let t = build(&[], BuildParams::default());
        let (a, st) = accel_on(&t, &[], Vec3::ZERO, None, &BarnesHutMac::new(0.7), EPS);
        assert_eq!(a, Vec3::ZERO);
        assert_eq!(st.interactions(), 0);
    }

    #[test]
    fn interaction_count_scales_like_n_log_n() {
        // Average interactions per particle grows slowly (≈ log n), not
        // linearly.
        let mac = BarnesHutMac::new(0.7);
        let per = |n: usize| -> f64 {
            let set = uniform_cube(n, 1.0, 3);
            let t = build(&set.particles, BuildParams::default());
            let mut total = 0;
            for p in set.iter() {
                let (_, st) = potential_at(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
                total += st.interactions();
            }
            total as f64 / n as f64
        };
        let a = per(500);
        let b = per(4000);
        // 8× the particles should cost far less than 8× per-particle work.
        assert!(b < a * 3.0, "per-particle work grew too fast: {a} -> {b}");
    }

    #[test]
    fn loads_sum_to_total_interactions() {
        let set = uniform_cube(300, 1.0, 8);
        let t = build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.8);
        let mut loads = vec![0u64; t.len()];
        let stats = accumulate_loads(
            &t,
            &set.particles,
            set.iter().map(|p| (p.pos, Some(p.id))),
            &mac,
            &mut loads,
        );
        assert_eq!(loads.iter().sum::<u64>(), stats.interactions());
        assert!(stats.interactions() > 0);
    }

    #[test]
    fn potential_is_negative_for_positive_masses() {
        let set = uniform_cube(100, 1.0, 4);
        let t = build(&set.particles, BuildParams::default());
        let mac = BarnesHutMac::new(0.7);
        for p in set.iter().take(10) {
            let (phi, _) = potential_at(&t, &set.particles, p.pos, Some(p.id), &mac, EPS);
            assert!(phi < 0.0);
        }
    }
}
