//! Exact `O(n²)` direct summation.
//!
//! §2: "an accurate formulation of the n-body problem has a Θ(n²) complexity
//! for an n particle system". Direct summation is both the baseline the
//! hierarchical method is measured against (complexity) and the accuracy
//! reference for the fractional-error metric of §5.2.2:
//! `‖x_k − x‖ / ‖x‖` where `x` is the exact potential vector.

use crate::traverse::{accel_kernel, potential_kernel};
use bhut_geom::{Particle, Vec3};

/// Exact acceleration at `point`, excluding particle `skip_id` if given.
pub fn accel_direct(particles: &[Particle], point: Vec3, skip_id: Option<u32>, eps: f64) -> Vec3 {
    let mut acc = Vec3::ZERO;
    for p in particles {
        if Some(p.id) == skip_id {
            continue;
        }
        acc += accel_kernel(point, p.pos, p.mass, eps);
    }
    acc
}

/// Exact potential at `point`, excluding particle `skip_id` if given.
pub fn potential_direct(
    particles: &[Particle],
    point: Vec3,
    skip_id: Option<u32>,
    eps: f64,
) -> f64 {
    let mut phi = 0.0;
    for p in particles {
        if Some(p.id) == skip_id {
            continue;
        }
        phi += potential_kernel(point, p.pos, p.mass, eps);
    }
    phi
}

/// Exact accelerations for every particle (each excluding itself).
pub fn all_accels_direct(particles: &[Particle], eps: f64) -> Vec<Vec3> {
    particles.iter().map(|p| accel_direct(particles, p.pos, Some(p.id), eps)).collect()
}

/// Exact potentials for every particle (each excluding itself).
pub fn all_potentials_direct(particles: &[Particle], eps: f64) -> Vec<f64> {
    particles.iter().map(|p| potential_direct(particles, p.pos, Some(p.id), eps)).collect()
}

/// The fractional error of §5.2.2: `‖approx − exact‖ / ‖exact‖` over a
/// vector of per-particle scalars (potentials).
///
/// # Panics
/// If the slices differ in length or the exact vector is all-zero.
pub fn fractional_error(approx: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(approx.len(), exact.len());
    let num: f64 = approx.iter().zip(exact).map(|(a, e)| (a - e) * (a - e)).sum();
    let den: f64 = exact.iter().map(|e| e * e).sum();
    assert!(den > 0.0, "exact vector is zero");
    (num / den).sqrt()
}

/// Fractional error over per-particle vectors (forces/accelerations).
pub fn fractional_error_vec(approx: &[Vec3], exact: &[Vec3]) -> f64 {
    assert_eq!(approx.len(), exact.len());
    let num: f64 = approx.iter().zip(exact).map(|(a, e)| a.dist_sq(*e)).sum();
    let den: f64 = exact.iter().map(|e| e.norm_sq()).sum();
    assert!(den > 0.0, "exact vector is zero");
    (num / den).sqrt()
}

/// Total gravitational potential energy `Σ_{i<j} -m_i m_j / r_ij` (softened).
/// Used for the energy-conservation diagnostics in `bhut-sim`.
pub fn potential_energy(particles: &[Particle], eps: f64) -> f64 {
    let mut e = 0.0;
    for (i, a) in particles.iter().enumerate() {
        for b in &particles[i + 1..] {
            e += a.mass * potential_kernel(a.pos, b.pos, b.mass, eps);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::uniform_cube;

    #[test]
    fn two_body_inverse_square() {
        let particles = [
            Particle::new(0, 2.0, Vec3::ZERO, Vec3::ZERO),
            Particle::new(1, 1.0, Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO),
        ];
        // Force per unit mass on particle 1 from mass 2 at distance 2:
        // a = m/r² = 0.5 toward the origin.
        let a = accel_direct(&particles, particles[1].pos, Some(1), 0.0);
        assert!((a.x + 0.5).abs() < 1e-14);
        assert!(a.y.abs() < 1e-14 && a.z.abs() < 1e-14);
        // Potential at particle 1: -2/2 = -1.
        let phi = potential_direct(&particles, particles[1].pos, Some(1), 0.0);
        assert!((phi + 1.0).abs() < 1e-14);
    }

    #[test]
    fn newton_third_law() {
        let set = uniform_cube(30, 1.0, 5);
        let accels = all_accels_direct(&set.particles, 1e-3);
        // Total momentum change Σ m·a = 0 for internal forces.
        let total: Vec3 = set.particles.iter().zip(&accels).map(|(p, a)| *a * p.mass).sum();
        assert!(total.norm() < 1e-10, "net internal force {total:?}");
    }

    #[test]
    fn softening_regularizes_coincident_points() {
        let particles = [
            Particle::new(0, 1.0, Vec3::ZERO, Vec3::ZERO),
            Particle::new(1, 1.0, Vec3::ZERO, Vec3::ZERO),
        ];
        let a = accel_direct(&particles, Vec3::ZERO, Some(0), 1e-3);
        assert!(a.is_finite());
        let a0 = accel_direct(&particles, Vec3::ZERO, Some(0), 0.0);
        assert_eq!(a0, Vec3::ZERO); // kernel guards r=0 even unsoftened
    }

    #[test]
    fn fractional_error_basics() {
        assert_eq!(fractional_error(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        let e = fractional_error(&[1.1, 0.0], &[1.0, 0.0]);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exact vector is zero")]
    fn fractional_error_zero_reference_panics() {
        let _ = fractional_error(&[1.0], &[0.0]);
    }

    #[test]
    fn potential_energy_pairwise() {
        let particles = [
            Particle::new(0, 1.0, Vec3::ZERO, Vec3::ZERO),
            Particle::new(1, 1.0, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO),
            Particle::new(2, 1.0, Vec3::new(0.0, 1.0, 0.0), Vec3::ZERO),
        ];
        // pairs: (0,1) r=1, (0,2) r=1, (1,2) r=√2
        let expect = -1.0 - 1.0 - 1.0 / 2f64.sqrt();
        assert!((potential_energy(&particles, 0.0) - expect).abs() < 1e-12);
    }
}
