//! Multipole acceptance criteria (MACs).
//!
//! §2: "The multipole acceptance criterion for the Barnes–Hut method computes
//! the ratio of the dimension of the box to the distance of the point from
//! the center of mass of the box. If this ratio is less than some constant,
//! α, an interaction can be computed." Larger α accepts boxes at shorter
//! range — fewer expansions, faster, less accurate (Table 7 sweeps α over
//! {0.67, 0.80, 1.0}).
//!
//! [`MinDistMac`] is the variant attributed to Warren & Salmon (§2) that
//! measures distance to the *nearest point of the box*, trading a few more
//! expansions for a bounded worst-case error (the plain criterion can accept
//! a box that still contains the evaluation point's near field when the
//! center of mass sits far off-center).

use crate::mac_simd::{NodeBatch, MAC_BATCH};
use bhut_geom::{Aabb, Vec3};

/// Decides whether a particle–node interaction may be approximated by the
/// node's multipole expansion.
pub trait Mac {
    /// `true` if the node `(cell, com)` is acceptable for evaluation at
    /// `point`.
    fn accept(&self, cell: &Aabb, com: Vec3, point: Vec3) -> bool;

    /// Number of floating-point operations one acceptance test costs in the
    /// paper's machine model (§5.2.1: "The MAC routine requires 14 floating
    /// point instructions").
    fn flops(&self) -> u64 {
        14
    }
}

/// The classic Barnes–Hut α-criterion: accept iff `side / dist(com) < α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarnesHutMac {
    pub alpha: f64,
}

impl BarnesHutMac {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        BarnesHutMac { alpha }
    }
}

impl Mac for BarnesHutMac {
    #[inline]
    fn accept(&self, cell: &Aabb, com: Vec3, point: Vec3) -> bool {
        // side/dist < alpha  ⇔  side² < α² · dist²  (avoids the sqrt)
        let side = cell.side();
        let d2 = com.dist_sq(point);
        side * side < self.alpha * self.alpha * d2
    }
}

/// Warren–Salmon style minimum-distance criterion: accept iff
/// `side / dist(nearest box point) < α`. Strictly more conservative than
/// [`BarnesHutMac`] at equal α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinDistMac {
    pub alpha: f64,
}

impl MinDistMac {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        MinDistMac { alpha }
    }
}

impl Mac for MinDistMac {
    #[inline]
    fn accept(&self, cell: &Aabb, _com: Vec3, point: Vec3) -> bool {
        let side = cell.side();
        let d2 = cell.dist_sq_to(point);
        side * side < self.alpha * self.alpha * d2
    }
}

/// Outcome of testing a node against a whole *bucket* of targets at once
/// (the tight bounding box of a leaf's particles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupClass {
    /// Every point in the bucket accepts the node.
    AcceptAll,
    /// Every point in the bucket rejects the node.
    RejectAll,
    /// The bucket straddles the acceptance boundary; members must be walked
    /// individually below this node.
    Mixed,
}

/// A [`Mac`] that can classify a node against a bucket of targets in one
/// test, by bracketing the per-member distance term between its minimum and
/// maximum over the bucket.
///
/// Contract (what the grouped walk's exactness rests on): for every point
/// `p` inside `bucket`, `classify(cell, com, bucket) == AcceptAll` implies
/// `accept(cell, com, p)`, and `RejectAll` implies `!accept(cell, com, p)`.
pub trait GroupMac: Mac {
    fn classify(&self, cell: &Aabb, com: Vec3, bucket: &Aabb) -> GroupClass;

    /// Classify `batch.len()` sibling nodes against one bucket in a single
    /// call. The default loops over [`GroupMac::classify`] (so every
    /// implementor is automatically correct); the concrete MACs override it
    /// with the lane-parallel bodies in [`crate::mac_simd`], which are
    /// bitwise-identical decision for decision. Lanes at index ≥
    /// `batch.len()` are unspecified.
    fn classify_batch(&self, batch: &NodeBatch, bucket: &Aabb) -> [GroupClass; MAC_BATCH] {
        let mut out = [GroupClass::Mixed; MAC_BATCH];
        for (j, slot) in out.iter_mut().enumerate().take(batch.len()) {
            *slot = self.classify(&batch.cell(j), batch.com(j), bucket);
        }
        out
    }
}

impl GroupMac for BarnesHutMac {
    #[inline]
    fn classify_batch(&self, batch: &NodeBatch, bucket: &Aabb) -> [GroupClass; MAC_BATCH] {
        crate::mac_simd::classify_batch_bh(self.alpha * self.alpha, batch, bucket)
    }

    #[inline]
    fn classify(&self, cell: &Aabb, com: Vec3, bucket: &Aabb) -> GroupClass {
        // Per-member test: side² < α² · dist²(com, p). Over p ∈ bucket the
        // distance to the com ranges over [dmin, dmax].
        let side = cell.side();
        let s2 = side * side;
        let a2 = self.alpha * self.alpha;
        if s2 < a2 * bucket.dist_sq_to(com) {
            GroupClass::AcceptAll
        } else if s2 >= a2 * bucket.max_dist_sq_to(com) {
            GroupClass::RejectAll
        } else {
            GroupClass::Mixed
        }
    }
}

impl GroupMac for MinDistMac {
    #[inline]
    fn classify_batch(&self, batch: &NodeBatch, bucket: &Aabb) -> [GroupClass; MAC_BATCH] {
        crate::mac_simd::classify_batch_md(self.alpha * self.alpha, batch, bucket)
    }

    #[inline]
    fn classify(&self, cell: &Aabb, _com: Vec3, bucket: &Aabb) -> GroupClass {
        // Per-member test: side² < α² · dist²(cell, p). The minimum over the
        // bucket is the box–box distance; the maximum is attained at a bucket
        // corner (dist-to-box is convex).
        let side = cell.side();
        let s2 = side * side;
        let a2 = self.alpha * self.alpha;
        if s2 < a2 * cell.dist_sq_to_box(bucket) {
            return GroupClass::AcceptAll;
        }
        let dmax2 = (0..8).map(|i| cell.dist_sq_to(bucket.corner(i))).fold(0.0, f64::max);
        if s2 >= a2 * dmax2 {
            GroupClass::RejectAll
        } else {
            GroupClass::Mixed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cell() -> Aabb {
        Aabb::origin_cube(1.0)
    }

    #[test]
    fn bh_accepts_far_rejects_near() {
        let mac = BarnesHutMac::new(1.0);
        let com = unit_cell().center();
        // dist 10 ≫ side 1 → accept
        assert!(mac.accept(&unit_cell(), com, Vec3::new(10.0, 0.5, 0.5)));
        // dist 0.6 < side 1 → reject
        assert!(!mac.accept(&unit_cell(), com, Vec3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn smaller_alpha_is_stricter() {
        let loose = BarnesHutMac::new(1.0);
        let strict = BarnesHutMac::new(0.5);
        let com = unit_cell().center();
        let p = Vec3::new(2.0, 0.5, 0.5); // dist 1.5, side 1: ratio 0.67
        assert!(loose.accept(&unit_cell(), com, p));
        assert!(!strict.accept(&unit_cell(), com, p));
    }

    #[test]
    fn threshold_is_strict_inequality() {
        // ratio exactly α must NOT accept ("less than some constant α").
        let mac = BarnesHutMac::new(0.5);
        let com = unit_cell().center();
        let p = Vec3::new(0.5 + 2.0, 0.5, 0.5); // dist = 2.0, side 1 → ratio 0.5
        assert!(!mac.accept(&unit_cell(), com, p));
    }

    #[test]
    fn min_dist_is_more_conservative() {
        let a = 0.9;
        let bh = BarnesHutMac::new(a);
        let md = MinDistMac::new(a);
        // A point whose distance to the COM passes but whose distance to the
        // box surface fails.
        let com = Vec3::new(0.1, 0.1, 0.1); // off-center COM
        let p = Vec3::new(-1.1, 0.5, 0.5); // 1.26 from com, 1.1 from box
        assert!(bh.accept(&unit_cell(), com, p));
        assert!(!md.accept(&unit_cell(), com, p));
        // Generally: md accepting implies bh would accept at the same α for
        // any com inside the cell (dist-to-box ≤ dist-to-com)… spot check:
        for i in 0..20 {
            let p = Vec3::new(1.0 + 0.2 * i as f64, 0.3, 0.7);
            if md.accept(&unit_cell(), unit_cell().center(), p) {
                assert!(bh.accept(&unit_cell(), unit_cell().center(), p));
            }
        }
    }

    #[test]
    fn point_inside_box_never_accepted_by_min_dist() {
        let md = MinDistMac::new(10.0);
        assert!(!md.accept(&unit_cell(), unit_cell().center(), Vec3::splat(0.4)));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let _ = BarnesHutMac::new(0.0);
    }

    #[test]
    fn mac_flop_cost_matches_paper() {
        assert_eq!(BarnesHutMac::new(1.0).flops(), 14);
    }

    /// classify() must bracket accept(): AcceptAll ⇒ every sampled bucket
    /// point accepts, RejectAll ⇒ every sampled bucket point rejects.
    #[test]
    fn group_classification_is_conservative() {
        let cell = unit_cell();
        let com = Vec3::new(0.45, 0.55, 0.6); // slightly off-center
        for alpha in [0.4, 0.67, 1.0, 1.5] {
            let bh = BarnesHutMac::new(alpha);
            let md = MinDistMac::new(alpha);
            for bx in 0..40 {
                let base = Vec3::new(-2.0 + 0.2 * bx as f64, 0.3, 1.4);
                let bucket = Aabb::new(base, base + Vec3::new(0.7, 0.5, 0.3));
                // Deterministic sample grid inside the bucket, corners included.
                let samples = (0..27).map(|i| {
                    let f = |k: usize| (i / 3usize.pow(k as u32) % 3) as f64 / 2.0;
                    bucket.min
                        + Vec3::new(
                            f(0) * (bucket.max.x - bucket.min.x),
                            f(1) * (bucket.max.y - bucket.min.y),
                            f(2) * (bucket.max.z - bucket.min.z),
                        )
                });
                for p in samples {
                    match bh.classify(&cell, com, &bucket) {
                        GroupClass::AcceptAll => assert!(bh.accept(&cell, com, p)),
                        GroupClass::RejectAll => assert!(!bh.accept(&cell, com, p)),
                        GroupClass::Mixed => {}
                    }
                    match md.classify(&cell, com, &bucket) {
                        GroupClass::AcceptAll => assert!(md.accept(&cell, com, p)),
                        GroupClass::RejectAll => assert!(!md.accept(&cell, com, p)),
                        GroupClass::Mixed => {}
                    }
                }
            }
        }
    }

    #[test]
    fn far_bucket_accepts_near_bucket_rejects() {
        let mac = BarnesHutMac::new(0.67);
        let cell = unit_cell();
        let com = cell.center();
        let far = Aabb::cube(Vec3::splat(50.0), 1.0);
        assert_eq!(mac.classify(&cell, com, &far), GroupClass::AcceptAll);
        let near = Aabb::cube(Vec3::splat(0.6), 0.4);
        assert_eq!(mac.classify(&cell, com, &near), GroupClass::RejectAll);
        // A bucket spanning the α boundary is Mixed.
        let straddling = Aabb::new(Vec3::splat(0.5), Vec3::splat(40.0));
        assert_eq!(mac.classify(&cell, com, &straddling), GroupClass::Mixed);
    }
}

#[cfg(test)]
mod comparison_tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::direct;
    use crate::traverse::potential_at;
    use bhut_geom::{plummer, PlummerSpec};

    /// The Warren–Salmon min-distance criterion buys better worst-case
    /// accuracy for more interactions at the same α (§2's discussion of
    /// MAC variants).
    #[test]
    fn min_dist_trades_work_for_accuracy() {
        let set = plummer(PlummerSpec { n: 2000, seed: 12, ..Default::default() });
        let tree = build(&set.particles, BuildParams::default());
        let eps = 1e-4;
        let run = |use_min_dist: bool| -> (u64, f64) {
            let mut inter = 0;
            let mut approx = Vec::new();
            let mut exact = Vec::new();
            for p in set.iter().take(300) {
                let (phi, st) = if use_min_dist {
                    potential_at(
                        &tree,
                        &set.particles,
                        p.pos,
                        Some(p.id),
                        &MinDistMac::new(0.8),
                        eps,
                    )
                } else {
                    potential_at(
                        &tree,
                        &set.particles,
                        p.pos,
                        Some(p.id),
                        &BarnesHutMac::new(0.8),
                        eps,
                    )
                };
                inter += st.interactions();
                approx.push(phi);
                exact.push(direct::potential_direct(&set.particles, p.pos, Some(p.id), eps));
            }
            (inter, direct::fractional_error(&approx, &exact))
        };
        let (work_bh, err_bh) = run(false);
        let (work_md, err_md) = run(true);
        assert!(work_md > work_bh, "min-dist must do more interactions: {work_md} vs {work_bh}");
        assert!(err_md < err_bh, "min-dist must be more accurate: {err_md} vs {err_bh}");
    }

    /// Worst-case guard: an off-center center of mass near the evaluation
    /// point. BH-MAC can accept the box; min-dist never accepts a box the
    /// point is close to.
    #[test]
    fn min_dist_rejects_near_boxes_regardless_of_com() {
        use bhut_geom::{Aabb, Vec3};
        let cell = Aabb::origin_cube(1.0);
        let md = MinDistMac::new(2.0); // very loose
                                       // point touching the box surface
        for p in [Vec3::new(1.0001, 0.5, 0.5), Vec3::new(0.5, -0.0001, 0.5)] {
            assert!(!md.accept(&cell, cell.center(), p), "{p:?}");
        }
    }
}
