//! Oct-tree construction.
//!
//! Two equivalent builders:
//!
//! * [`build`] / [`build_in_cell`] — bulk construction: particles are sorted
//!   once by their Morton code on a 2²¹-deep virtual grid, then the tree is
//!   carved out of the sorted sequence recursively. *Box collapsing* (§2) is
//!   the longest-common-prefix jump over runs of single-occupancy levels,
//!   which keeps the node count `O(n)` even for adversarially close particle
//!   pairs.
//! * [`build_incremental`] — the particle-injection formulation of §3.1:
//!   "Every time the domain contains more than `s` particles, it is split
//!   into eight octs… We now try to re-inject the particle into the domain."
//!   Used to mirror the paper's distributed construction; produces the same
//!   `Tree` type.
//!
//! Both builders accept an explicit root cell so the distributed formulations
//! can build *subdomain* trees that align with the global decomposition.

use crate::node::{Node, NodeId, Tree, NIL};
use bhut_geom::{Aabb, Particle, Vec3};
use bhut_morton::{encode_3d, NodeKey};

/// Tree-construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// The paper's `s`: maximum number of particles per leaf before a cell
    /// is split.
    pub leaf_capacity: usize,
    /// Enable box collapsing (skip chains of single-child cells).
    pub collapse: bool,
    /// Force splitting down to this tree level even for under-full cells —
    /// §3.1: "we artificially force the particles down to the level at which
    /// the tree node corresponding to the subtree actually exists". The
    /// distributed formulations set this to the subdomain (branch) level so
    /// every non-empty subdomain owns an explicit tree node. Collapsing is
    /// suppressed above this level.
    pub min_split_level: u32,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams { leaf_capacity: 8, collapse: true, min_split_level: 0 }
    }
}

impl BuildParams {
    /// Leaf capacity `s`, collapsing on.
    pub fn with_leaf_capacity(s: usize) -> Self {
        BuildParams { leaf_capacity: s.max(1), ..Default::default() }
    }
}

/// Grid depth of the Morton quantization: 21 levels of octants.
const MAX_LEVEL: u32 = 21;

/// Quantize a position inside `cell` to its 63-bit Morton code.
#[inline]
pub fn morton_code(cell: &Aabb, p: Vec3) -> u64 {
    let side = cell.side().max(f64::MIN_POSITIVE);
    let scale = (1u64 << MAX_LEVEL) as f64 / side;
    let q = |x: f64, lo: f64| -> u32 {
        let v = ((x - lo) * scale) as i64;
        v.clamp(0, (1 << MAX_LEVEL) - 1) as u32
    };
    encode_3d(q(p.x, cell.min.x), q(p.y, cell.min.y), q(p.z, cell.min.z))
}

/// Octant field of `code` at tree level `level` (0 = root split).
#[inline]
fn octant_at(code: u64, level: u32) -> usize {
    debug_assert!(level < MAX_LEVEL);
    ((code >> (3 * (MAX_LEVEL - 1 - level))) & 0b111) as usize
}

/// Build a tree over `particles` in the smallest enclosing cube.
pub fn build(particles: &[Particle], params: BuildParams) -> Tree {
    let cell = Aabb::bounding_cube(particles.iter().map(|p| p.pos), 0.0)
        .unwrap_or_else(|| Aabb::origin_cube(1.0));
    build_in_cell(particles, cell, params)
}

/// Build a tree over `particles` with an explicit root cell. Positions
/// outside the cell are clamped onto its surface grid (the distributed
/// formulations guarantee containment; clamping just keeps the builder
/// total).
pub fn build_in_cell(particles: &[Particle], cell: Aabb, params: BuildParams) -> Tree {
    let n = particles.len();
    if n == 0 {
        return Tree { nodes: Vec::new(), order: Vec::new(), root_cell: cell };
    }
    let mut keyed: Vec<(u64, u32)> =
        particles.iter().enumerate().map(|(i, p)| (morton_code(&cell, p.pos), i as u32)).collect();
    keyed.sort_unstable();
    let codes: Vec<u64> = keyed.iter().map(|&(c, _)| c).collect();
    let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();

    let mut b = Builder { particles, codes: &codes, order: &order, params, nodes: Vec::new() };
    b.nodes.reserve(2 * n / params.leaf_capacity.max(1) + 8);
    b.rec(cell, NodeKey::ROOT, 0, 0, n as u32);
    Tree { nodes: b.nodes, order, root_cell: cell }
}

struct Builder<'a> {
    particles: &'a [Particle],
    codes: &'a [u64],
    order: &'a [u32],
    params: BuildParams,
    nodes: Vec<Node>,
}

impl Builder<'_> {
    /// Build the subtree over `order[start..end]`; returns its arena id.
    fn rec(
        &mut self,
        mut cell: Aabb,
        mut key: NodeKey,
        mut level: u32,
        start: u32,
        end: u32,
    ) -> NodeId {
        debug_assert!(start < end);
        let count = end - start;

        // Box collapsing: jump to the deepest aligned cell that still holds
        // the whole range. Because the range is Morton-sorted, the longest
        // common prefix of the first and last codes is the common prefix of
        // all of them.
        if self.params.collapse && count > self.params.leaf_capacity as u32 {
            let mut lcp_levels = ((self.codes[start as usize] ^ self.codes[end as usize - 1])
                .leading_zeros()
                .saturating_sub(1))
                / 3;
            // Never collapse past the forced-split level: the distributed
            // formulations need explicit nodes at the subdomain level. (A
            // node entering recursion *at* that level must materialize
            // there, so the clamp includes equality.)
            if self.params.min_split_level > 0 && level <= self.params.min_split_level {
                lcp_levels = lcp_levels.min(self.params.min_split_level);
            }
            while level < lcp_levels && level < MAX_LEVEL - 1 {
                let oct = octant_at(self.codes[start as usize], level);
                cell = cell.octant(oct);
                key = key.child(oct as u8);
                level += 1;
            }
        }

        let id = self.nodes.len() as NodeId;
        let (mass, com) = self.mass_com(start, end);
        self.nodes.push(Node {
            cell,
            key,
            mass,
            com,
            children: [NIL; 8],
            child_mask: 0,
            start,
            end,
        });

        let deep_enough = level >= self.params.min_split_level;
        if (count as usize <= self.params.leaf_capacity && deep_enough) || level >= MAX_LEVEL - 1 {
            return id;
        }

        // Partition the (sorted) range by the octant field at this level and
        // recurse. Children are built in octant order so particle ranges
        // tile the parent's range along the Z-curve.
        let mut children = [NIL; 8];
        let mut lo = start;
        while lo < end {
            let oct = octant_at(self.codes[lo as usize], level);
            let mut hi = lo + 1;
            while hi < end && octant_at(self.codes[hi as usize], level) == oct {
                hi += 1;
            }
            let child_cell = cell.octant(oct);
            children[oct] = self.rec(child_cell, key.child(oct as u8), level + 1, lo, hi);
            lo = hi;
        }
        self.nodes[id as usize].set_children(children);
        id
    }

    fn mass_com(&self, start: u32, end: u32) -> (f64, Vec3) {
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        for &i in &self.order[start as usize..end as usize] {
            let p = &self.particles[i as usize];
            mass += p.mass;
            weighted += p.pos * p.mass;
        }
        let com = if mass > 0.0 {
            weighted / mass
        } else {
            // massless subtree: fall back to geometric centroid
            let mut c = Vec3::ZERO;
            for &i in &self.order[start as usize..end as usize] {
                c += self.particles[i as usize].pos;
            }
            c / (end - start) as f64
        };
        (mass, com)
    }
}

/// Incremental (particle-injection) construction, §3.1. Functionally
/// equivalent to [`build_in_cell`] with `collapse: false`; kept as a faithful
/// rendering of the paper's distributed-construction primitive and as a
/// differential-testing oracle for the bulk builder.
pub fn build_incremental(particles: &[Particle], cell: Aabb, params: BuildParams) -> Tree {
    // Mutable insertion tree with per-leaf buckets.
    enum INode {
        Leaf { bucket: Vec<u32> },
        Internal { children: [i32; 8] },
    }
    let mut inodes: Vec<(Aabb, INode)> = vec![(cell, INode::Leaf { bucket: Vec::new() })];

    let s = params.leaf_capacity.max(1);
    for (pi, p) in particles.iter().enumerate() {
        // Descend to the leaf containing p, splitting full leaves on the way
        // (split, then re-inject, exactly as §3.1 describes).
        let mut cur = 0usize;
        let mut depth = 0u32;
        loop {
            match &mut inodes[cur].1 {
                INode::Leaf { bucket } => {
                    if bucket.len() < s || depth >= MAX_LEVEL - 1 {
                        bucket.push(pi as u32);
                        break;
                    }
                    // Split: push existing particles one level down.
                    let old = std::mem::take(bucket);
                    let cell_here = inodes[cur].0;
                    let mut children = [-1i32; 8];
                    for &q in &old {
                        let oct = cell_here.octant_of(particles[q as usize].pos);
                        if children[oct] < 0 {
                            children[oct] = inodes.len() as i32;
                            inodes
                                .push((cell_here.octant(oct), INode::Leaf { bucket: Vec::new() }));
                        }
                        if let INode::Leaf { bucket } = &mut inodes[children[oct] as usize].1 {
                            bucket.push(q);
                        }
                    }
                    inodes[cur].1 = INode::Internal { children };
                    // fall through: re-inject p from this node
                }
                INode::Internal { .. } => {}
            }
            let cell_here = inodes[cur].0;
            let oct = cell_here.octant_of(p.pos.min(cell.max).max(cell.min));
            let fresh = inodes.len() as i32;
            let next = match &mut inodes[cur].1 {
                INode::Internal { children } => {
                    if children[oct] < 0 {
                        children[oct] = fresh;
                    }
                    children[oct] as usize
                }
                INode::Leaf { .. } => unreachable!("just split"),
            };
            if next == fresh as usize {
                inodes.push((cell_here.octant(oct), INode::Leaf { bucket: Vec::new() }));
            }
            cur = next;
            depth += 1;
        }
    }

    // Flatten into the arena representation by DFS in octant order.
    let mut nodes: Vec<Node> = Vec::new();
    let mut order: Vec<u32> = Vec::with_capacity(particles.len());
    flatten(&inodes, particles, 0, NodeKey::ROOT, &mut nodes, &mut order);
    // Empty tree if no particles.
    if particles.is_empty() {
        return Tree { nodes: Vec::new(), order: Vec::new(), root_cell: cell };
    }

    fn flatten(
        inodes: &[(Aabb, impl FlattenNode)],
        particles: &[Particle],
        cur: usize,
        key: NodeKey,
        nodes: &mut Vec<Node>,
        order: &mut Vec<u32>,
    ) -> NodeId {
        let id = nodes.len() as NodeId;
        let start = order.len() as u32;
        nodes.push(Node {
            cell: inodes[cur].0,
            key,
            mass: 0.0,
            com: Vec3::ZERO,
            children: [NIL; 8],
            child_mask: 0,
            start,
            end: start,
        });
        let mut children = [NIL; 8];
        match inodes[cur].1.view() {
            FlatView::Leaf(bucket) => order.extend_from_slice(bucket),
            FlatView::Internal(ch) => {
                for (oct, &c) in ch.iter().enumerate() {
                    if c >= 0 {
                        children[oct] = flatten(
                            inodes,
                            particles,
                            c as usize,
                            key.child(oct as u8),
                            nodes,
                            order,
                        );
                    }
                }
            }
        }
        let end = order.len() as u32;
        // Upward mass/COM.
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        for &i in &order[start as usize..end as usize] {
            let p = &particles[i as usize];
            mass += p.mass;
            weighted += p.pos * p.mass;
        }
        let node = &mut nodes[id as usize];
        node.set_children(children);
        node.end = end;
        node.mass = mass;
        node.com = if mass > 0.0 { weighted / mass } else { node.cell.center() };
        id
    }

    enum FlatView<'a> {
        Leaf(&'a [u32]),
        Internal(&'a [i32; 8]),
    }
    trait FlattenNode {
        fn view(&self) -> FlatView<'_>;
    }
    impl FlattenNode for INode {
        fn view(&self) -> FlatView<'_> {
            match self {
                INode::Leaf { bucket } => FlatView::Leaf(bucket),
                INode::Internal { children } => FlatView::Internal(children),
            }
        }
    }

    Tree { nodes, order, root_cell: cell }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, uniform_cube, ParticleSet, PlummerSpec};
    use proptest::prelude::*;

    fn check(tree: &Tree, set: &ParticleSet) {
        tree.check_invariants(set.len()).unwrap();
        if set.is_empty() {
            return;
        }
        let root = tree.root();
        assert_eq!(root.count() as usize, set.len());
        assert!((root.mass - set.total_mass()).abs() < 1e-9 * set.total_mass().max(1.0));
        let com = set.center_of_mass().unwrap();
        assert!(root.com.dist(com) < 1e-9 * (1.0 + com.norm()));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = ParticleSet::default();
        let t = build(&empty.particles, BuildParams::default());
        assert!(t.is_empty());
        check(&t, &empty);

        let one = ParticleSet::from_positions([Vec3::splat(0.5)]);
        let t = build(&one.particles, BuildParams::default());
        assert_eq!(t.len(), 1);
        assert!(t.root().is_leaf());
        check(&t, &one);
    }

    #[test]
    fn uniform_build_properties() {
        let set = uniform_cube(2000, 1.0, 3);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(8));
        check(&t, &set);
        // Every leaf within capacity.
        for n in &t.nodes {
            if n.is_leaf() {
                assert!(n.count() <= 8);
            }
        }
        // Node count is O(n) for uniform data.
        assert!(t.len() < 2 * 2000);
    }

    #[test]
    fn leaf_capacity_one() {
        let set = uniform_cube(256, 1.0, 9);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(1));
        check(&t, &set);
        for n in &t.nodes {
            if n.is_leaf() {
                assert!(n.count() <= 1);
            }
        }
    }

    #[test]
    fn adversarial_close_pair_is_bounded_by_collapsing() {
        // Two particles 1e-12 apart in a unit box: without collapsing this
        // needs ~40 levels; with collapsing the chain is skipped.
        let set = ParticleSet::from_positions([
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(0.1 + 1e-12, 0.1, 0.1),
            Vec3::new(0.9, 0.9, 0.9),
        ]);
        let t = build(&set.particles, BuildParams::with_leaf_capacity(1));
        check(&t, &set);
        assert!(t.len() <= 16, "collapsing failed: {} nodes", t.len());
    }

    #[test]
    fn coincident_particles_terminate() {
        let set = ParticleSet::from_positions(std::iter::repeat_n(Vec3::splat(0.25), 10));
        let t = build(&set.particles, BuildParams::with_leaf_capacity(2));
        check(&t, &set);
        // they can never be separated; the deepest cell holds all 10
        assert!(t.nodes.iter().any(|n| n.is_leaf() && n.count() == 10));
    }

    #[test]
    fn plummer_build() {
        let set = plummer(PlummerSpec { n: 3000, ..Default::default() });
        let t = build(&set.particles, BuildParams::default());
        check(&t, &set);
        assert!(t.depth() > 3); // strongly clustered center forces depth
    }

    #[test]
    fn incremental_matches_bulk_node_and_particle_sets() {
        let set = uniform_cube(500, 1.0, 17);
        let cell = set.bounding_cube().unwrap();
        let params = BuildParams { leaf_capacity: 4, collapse: false, min_split_level: 0 };
        let bulk = build_in_cell(&set.particles, cell, params);
        let inc = build_incremental(&set.particles, cell, params);
        check(&bulk, &set);
        check(&inc, &set);
        // Same multiset of leaf keys and per-leaf particle sets.
        let leaf_map = |t: &Tree| {
            let mut v: Vec<(u64, Vec<u32>)> = t
                .nodes
                .iter()
                .filter(|n| n.is_leaf() && n.count() > 0)
                .map(|n| {
                    let mut ps = t.order[n.start as usize..n.end as usize].to_vec();
                    ps.sort_unstable();
                    (n.key.raw(), ps)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(leaf_map(&bulk), leaf_map(&inc));
    }

    #[test]
    fn locate_finds_containing_leaf() {
        let set = uniform_cube(300, 1.0, 5);
        let t = build(&set.particles, BuildParams::default());
        for p in set.iter().take(50) {
            let id = t.locate(p.pos).unwrap();
            assert!(t.node(id).cell.contains(p.pos));
        }
        assert!(t.locate(Vec3::splat(50.0)).is_none());
    }

    #[test]
    fn walk_visits_every_node_once_in_preorder() {
        let set = uniform_cube(200, 1.0, 6);
        let t = build(&set.particles, BuildParams::default());
        let mut seen = vec![0; t.len()];
        let mut last_start = 0;
        t.walk(|id, _| {
            seen[id as usize] += 1;
            // octant-ordered DFS ⇒ node ranges appear with non-decreasing
            // start along the walk
            assert!(t.node(id).start >= last_start || t.node(id).start == 0);
            last_start = last_start.max(t.node(id).start);
        });
        assert!(seen.iter().all(|&c| c == 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn invariants_hold_for_random_sets(
            n in 0usize..400,
            s in 1usize..16,
            seed in 0u64..1000,
            collapse: bool,
        ) {
            let set = uniform_cube(n + 1, 1.0, seed);
            let t = build(&set.particles, BuildParams { leaf_capacity: s, collapse, min_split_level: 0 });
            prop_assert!(t.check_invariants(set.len()).is_ok());
        }

        #[test]
        fn morton_code_respects_cell(p in prop::array::uniform3(0.0f64..1.0)) {
            let cell = Aabb::origin_cube(1.0);
            let code = morton_code(&cell, Vec3::from_array(p));
            prop_assert!(code < (1u64 << 63));
        }
    }
}
