//! A binary treecode with controlled splits — the alternative §2 cites:
//! "There are some recent results demonstrating that it is beneficial to
//! work with binary trees as opposed to higher-order trees \[18\]. Binary
//! trees with controlled split allow better aspect ratios for partitions
//! while reducing the number of nodes in the tree."
//!
//! Each internal node splits its (tight, non-cubic) bounding box at the
//! mass-median of the longest axis. Compared to the oct-tree this yields
//! (a) fewer nodes for the same leaf capacity — splits are binary and every
//! split separates particles — and (b) partitions whose aspect ratios adapt
//! to the data. `bench_tree_variants` and the tests below quantify both.

use crate::mac::Mac;
use crate::traverse::{accel_kernel, potential_kernel, TraversalStats};
use bhut_geom::{Aabb, Particle, Vec3};

/// One node of the binary treecode.
#[derive(Debug, Clone)]
pub struct BinaryNode {
    /// Tight bounding box of the node's particles.
    pub bbox: Aabb,
    pub mass: f64,
    pub com: Vec3,
    /// Children arena ids; `None` for leaves.
    pub children: Option<(u32, u32)>,
    /// Range into [`BinaryTree::order`].
    pub start: u32,
    pub end: u32,
}

impl BinaryNode {
    pub fn count(&self) -> u32 {
        self.end - self.start
    }

    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A median-split binary treecode over a borrowed particle slice.
#[derive(Debug, Clone)]
pub struct BinaryTree {
    pub nodes: Vec<BinaryNode>,
    pub order: Vec<u32>,
}

impl BinaryTree {
    /// Build with leaf capacity `s` (median splits on the longest axis).
    pub fn build(particles: &[Particle], leaf_capacity: usize) -> BinaryTree {
        let s = leaf_capacity.max(1);
        let mut order: Vec<u32> = (0..particles.len() as u32).collect();
        let mut nodes = Vec::new();
        if particles.is_empty() {
            return BinaryTree { nodes, order };
        }
        build_rec(particles, &mut order, &mut nodes, 0, particles.len() as u32, s);
        BinaryTree { nodes, order }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn root(&self) -> &BinaryNode {
        &self.nodes[0]
    }

    /// Maximum box aspect ratio (longest/shortest side) over internal
    /// nodes — the quality measure controlled splits improve.
    pub fn max_aspect_ratio(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| !n.is_leaf())
            .map(|n| {
                let e = n.bbox.extent();
                let lo = e.min_component().max(1e-300);
                e.max_component() / lo
            })
            .fold(1.0, f64::max)
    }

    /// Monopole Barnes–Hut evaluation at `point` (same contract as
    /// `bhut_tree::potential_at`/`accel_on`).
    pub fn eval(
        &self,
        particles: &[Particle],
        point: Vec3,
        skip_id: Option<u32>,
        mac: &impl Mac,
        eps: f64,
    ) -> (f64, Vec3, TraversalStats) {
        let mut stats = TraversalStats::default();
        let mut phi = 0.0;
        let mut acc = Vec3::ZERO;
        if self.nodes.is_empty() {
            return (phi, acc, stats);
        }
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.count() == 1 {
                let pi = self.order[node.start as usize];
                let p = &particles[pi as usize];
                if Some(p.id) != skip_id {
                    stats.p2p += 1;
                    phi += potential_kernel(point, p.pos, p.mass, eps);
                    acc += accel_kernel(point, p.pos, p.mass, eps);
                }
                continue;
            }
            stats.mac_tests += 1;
            if mac.accept(&node.bbox, node.com, point) {
                stats.p2n += 1;
                phi += potential_kernel(point, node.com, node.mass, eps);
                acc += accel_kernel(point, node.com, node.mass, eps);
            } else if let Some((a, b)) = node.children {
                stack.push(b);
                stack.push(a);
            } else {
                for &pi in &self.order[node.start as usize..node.end as usize] {
                    let p = &particles[pi as usize];
                    if Some(p.id) != skip_id {
                        stats.p2p += 1;
                        phi += potential_kernel(point, p.pos, p.mass, eps);
                        acc += accel_kernel(point, p.pos, p.mass, eps);
                    }
                }
            }
        }
        (phi, acc, stats)
    }
}

fn build_rec(
    particles: &[Particle],
    order: &mut [u32],
    nodes: &mut Vec<BinaryNode>,
    start: u32,
    end: u32,
    s: usize,
) -> u32 {
    let id = nodes.len() as u32;
    let span = &order[start as usize..end as usize];
    let bbox =
        Aabb::bounding(span.iter().map(|&i| particles[i as usize].pos)).expect("non-empty range");
    let mut mass = 0.0;
    let mut weighted = Vec3::ZERO;
    for &i in span {
        let p = &particles[i as usize];
        mass += p.mass;
        weighted += p.pos * p.mass;
    }
    let com = if mass > 0.0 { weighted / mass } else { bbox.center() };
    nodes.push(BinaryNode { bbox, mass, com, children: None, start, end });

    let count = end - start;
    // Stop at capacity, or when the box has collapsed to a point
    // (coincident particles cannot be separated by any split).
    if count as usize <= s || bbox.side() == 0.0 {
        return id;
    }
    // Controlled split: mass-median along the longest axis.
    let axis = {
        let e = bbox.extent();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    };
    let mid = (count / 2) as usize;
    order[start as usize..end as usize].select_nth_unstable_by(mid, |&a, &b| {
        let pa = particles[a as usize].pos[axis];
        let pb = particles[b as usize].pos[axis];
        pa.partial_cmp(&pb).unwrap()
    });
    let split = start + mid as u32;
    let left = build_rec(particles, order, nodes, start, split, s);
    let right = build_rec(particles, order, nodes, split, end, s);
    nodes[id as usize].children = Some((left, right));
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::direct;
    use crate::mac::BarnesHutMac;
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};

    #[test]
    fn build_shape() {
        let set = uniform_cube(1000, 1.0, 3);
        let t = BinaryTree::build(&set.particles, 8);
        assert_eq!(t.root().count(), 1000);
        assert!((t.root().mass - set.total_mass()).abs() < 1e-12);
        for n in &t.nodes {
            if n.is_leaf() {
                assert!(n.count() <= 8 || n.bbox.side() == 0.0);
            } else {
                let (a, b) = n.children.unwrap();
                let (na, nb) = (&t.nodes[a as usize], &t.nodes[b as usize]);
                assert_eq!(na.count() + nb.count(), n.count());
                // median split halves the range (±1)
                assert!((na.count() as i64 - nb.count() as i64).abs() <= 1);
            }
        }
    }

    #[test]
    fn matches_direct_summation() {
        let set = plummer(PlummerSpec { n: 1000, seed: 4, ..Default::default() });
        let t = BinaryTree::build(&set.particles, 8);
        let mac = BarnesHutMac::new(0.5);
        let mut approx = Vec::new();
        let mut exact = Vec::new();
        for p in set.iter().take(150) {
            let (phi, _, _) = t.eval(&set.particles, p.pos, Some(p.id), &mac, 1e-4);
            approx.push(phi);
            exact.push(direct::potential_direct(&set.particles, p.pos, Some(p.id), 1e-4));
        }
        let err = direct::fractional_error(&approx, &exact);
        assert!(err < 5e-3, "binary treecode error {err}");
    }

    #[test]
    fn fewer_nodes_than_oct_tree() {
        // [18]'s claim: binary trees with controlled split need fewer nodes
        // at equal leaf capacity on clustered data.
        let set = plummer(PlummerSpec { n: 4000, seed: 6, ..Default::default() });
        let bin = BinaryTree::build(&set.particles, 8);
        let oct = build(&set.particles, BuildParams::with_leaf_capacity(8));
        assert!(bin.len() < oct.len(), "binary {} nodes vs oct {}", bin.len(), oct.len());
    }

    #[test]
    fn aspect_ratios_are_controlled() {
        // A flattened (disc-like) distribution: oct-tree cells stay cubic
        // and over-refine; binary boxes adapt. Check the binary tree's
        // aspect ratio stays moderate on its *internal* splits.
        let mut set = uniform_cube(2000, 1.0, 7);
        for p in &mut set.particles {
            p.pos.z *= 0.01; // squash to a pancake
        }
        let bin = BinaryTree::build(&set.particles, 8);
        // Splitting the longest axis first keeps boxes from degenerating
        // *further* than the data's own anisotropy.
        assert!(bin.max_aspect_ratio() < 500.0, "aspect {}", bin.max_aspect_ratio());
        // and the node count is dramatically lower than the oct-tree's,
        // which must burn levels resolving the z-thin slab with cubes.
        let oct = build(&set.particles, BuildParams::with_leaf_capacity(8));
        assert!(bin.len() < oct.len());
    }

    #[test]
    fn coincident_particles_terminate() {
        let set = bhut_geom::ParticleSet::from_positions(std::iter::repeat_n(Vec3::splat(0.5), 20));
        let t = BinaryTree::build(&set.particles, 4);
        assert!(t.nodes.iter().any(|n| n.is_leaf() && n.count() == 20));
    }

    #[test]
    fn empty_input() {
        let t = BinaryTree::build(&[], 8);
        assert!(t.is_empty());
        let mac = BarnesHutMac::new(0.7);
        let (phi, acc, st) = t.eval(&[], Vec3::ZERO, None, &mac, 0.0);
        assert_eq!((phi, acc), (0.0, Vec3::ZERO));
        assert_eq!(st.interactions(), 0);
    }
}
