//! Batched (SIMD-dispatched) group-MAC classification.
//!
//! The grouped walk used to classify one node per [`GroupMac::classify`]
//! call, which made the traversal a chain of dependent scalar AABB tests.
//! This module classifies up to [`MAC_BATCH`] *sibling* nodes per call: the
//! walk packs the children of an opened node into a [`NodeBatch`] (struct of
//! `[f64; 8]` arrays), and the batch classifiers below run the exact same
//! per-node arithmetic as the scalar `classify`, only laid out as
//! lane-parallel loops that the `simd_dispatch!` AVX2/AVX-512 clone lowers
//! to 256-bit instructions (the portable body *is* the `force-scalar`
//! fallback).
//!
//! Bitwise contract: for every lane the expression order replicates
//! [`Aabb::dist_sq_to`], [`Aabb::max_dist_sq_to`], [`Aabb::dist_sq_to_box`]
//! and the scalar `classify` comparisons term for term, so the returned
//! [`GroupClass`] decisions are identical to the scalar path on every input
//! — enforced by the equivalence tests at the bottom of this file and by
//! the walk-level bitwise tests in `group.rs`.

use crate::mac::{GroupClass, GroupMac, Mac};
use bhut_geom::{Aabb, Vec3};

/// Maximum nodes classified per batched MAC call — the children of one
/// opened octree node, and exactly one f64 SIMD register's worth of lanes
/// per coordinate on AVX-512 (two on AVX2).
pub const MAC_BATCH: usize = 8;

/// Up to [`MAC_BATCH`] tree nodes transposed into structure-of-arrays form
/// for one batched classification: cell bounds, center of mass, and the
/// pre-squared cell side (`side * side`, computed with the exact scalar
/// [`Aabb::side`] so decisions stay bitwise-identical).
#[derive(Debug, Clone)]
pub struct NodeBatch {
    len: usize,
    min_x: [f64; MAC_BATCH],
    min_y: [f64; MAC_BATCH],
    min_z: [f64; MAC_BATCH],
    max_x: [f64; MAC_BATCH],
    max_y: [f64; MAC_BATCH],
    max_z: [f64; MAC_BATCH],
    com_x: [f64; MAC_BATCH],
    com_y: [f64; MAC_BATCH],
    com_z: [f64; MAC_BATCH],
    side2: [f64; MAC_BATCH],
}

impl Default for NodeBatch {
    fn default() -> Self {
        NodeBatch {
            len: 0,
            min_x: [0.0; MAC_BATCH],
            min_y: [0.0; MAC_BATCH],
            min_z: [0.0; MAC_BATCH],
            max_x: [0.0; MAC_BATCH],
            max_y: [0.0; MAC_BATCH],
            max_z: [0.0; MAC_BATCH],
            com_x: [0.0; MAC_BATCH],
            com_y: [0.0; MAC_BATCH],
            com_z: [0.0; MAC_BATCH],
            side2: [0.0; MAC_BATCH],
        }
    }
}

impl NodeBatch {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline(always)]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one node. Panics if the batch is full ([`MAC_BATCH`] entries).
    #[inline(always)]
    pub fn push(&mut self, cell: &Aabb, com: Vec3) {
        let i = self.len;
        self.min_x[i] = cell.min.x;
        self.min_y[i] = cell.min.y;
        self.min_z[i] = cell.min.z;
        self.max_x[i] = cell.max.x;
        self.max_y[i] = cell.max.y;
        self.max_z[i] = cell.max.z;
        self.com_x[i] = com.x;
        self.com_y[i] = com.y;
        self.com_z[i] = com.z;
        let side = cell.side();
        self.side2[i] = side * side;
        self.len = i + 1;
    }

    /// Reconstruct lane `i`'s cell (for the scalar fallback path).
    #[inline(always)]
    pub fn cell(&self, i: usize) -> Aabb {
        Aabb::new(
            Vec3::new(self.min_x[i], self.min_y[i], self.min_z[i]),
            Vec3::new(self.max_x[i], self.max_y[i], self.max_z[i]),
        )
    }

    /// Lane `i`'s center of mass.
    #[inline(always)]
    pub fn com(&self, i: usize) -> Vec3 {
        Vec3::new(self.com_x[i], self.com_y[i], self.com_z[i])
    }
}

bhut_simd::simd_dispatch! {
    /// Batched `BarnesHutMac::classify`: `a2` is `alpha * alpha`. Lanes
    /// beyond `batch.len()` compute garbage (on zeroed state) and are
    /// masked out by the caller; lanes below it are bitwise-identical to
    /// the scalar decision.
    pub fn classify_batch_bh(a2: f64, batch: &NodeBatch, bucket: &Aabb) -> [GroupClass; MAC_BATCH] {
        let mut dmin2 = [0.0f64; MAC_BATCH];
        let mut dmax2 = [0.0f64; MAC_BATCH];
        for j in 0..MAC_BATCH {
            let (cx, cy, cz) = (batch.com_x[j], batch.com_y[j], batch.com_z[j]);
            // bucket.dist_sq_to(com), term for term per axis.
            let dx = (bucket.min.x - cx).max(0.0).max(cx - bucket.max.x);
            let dy = (bucket.min.y - cy).max(0.0).max(cy - bucket.max.y);
            let dz = (bucket.min.z - cz).max(0.0).max(cz - bucket.max.z);
            dmin2[j] = dx * dx + dy * dy + dz * dz;
            // bucket.max_dist_sq_to(com).
            let ex = (cx - bucket.min.x).abs().max((bucket.max.x - cx).abs());
            let ey = (cy - bucket.min.y).abs().max((bucket.max.y - cy).abs());
            let ez = (cz - bucket.min.z).abs().max((bucket.max.z - cz).abs());
            dmax2[j] = ex * ex + ey * ey + ez * ez;
        }
        let mut out = [GroupClass::Mixed; MAC_BATCH];
        for j in 0..batch.len {
            let s2 = batch.side2[j];
            out[j] = if s2 < a2 * dmin2[j] {
                GroupClass::AcceptAll
            } else if s2 >= a2 * dmax2[j] {
                GroupClass::RejectAll
            } else {
                GroupClass::Mixed
            };
        }
        out
    }
}

bhut_simd::simd_dispatch! {
    /// Batched `MinDistMac::classify`: `a2` is `alpha * alpha`. Unlike the
    /// scalar path this always evaluates the 8-corner maximum (no early
    /// return), but the decisions compare the same values and are
    /// bitwise-identical.
    pub fn classify_batch_md(a2: f64, batch: &NodeBatch, bucket: &Aabb) -> [GroupClass; MAC_BATCH] {
        let mut dmin2 = [0.0f64; MAC_BATCH];
        for (j, d) in dmin2.iter_mut().enumerate() {
            // cell.dist_sq_to_box(bucket): per axis
            // gap = (bmin - amax).max(0.0).max(amin - bmax).
            let gx = (bucket.min.x - batch.max_x[j]).max(0.0).max(batch.min_x[j] - bucket.max.x);
            let gy = (bucket.min.y - batch.max_y[j]).max(0.0).max(batch.min_y[j] - bucket.max.y);
            let gz = (bucket.min.z - batch.max_z[j]).max(0.0).max(batch.min_z[j] - bucket.max.z);
            *d = gx * gx + gy * gy + gz * gz;
        }
        // max over the bucket's 8 corners of cell.dist_sq_to(corner), in
        // corner order with a 0.0 seed — the scalar fold, lane-parallel.
        let mut dmax2 = [0.0f64; MAC_BATCH];
        for ci in 0..8 {
            let p = bucket.corner(ci);
            for (j, d) in dmax2.iter_mut().enumerate() {
                let dx = (batch.min_x[j] - p.x).max(0.0).max(p.x - batch.max_x[j]);
                let dy = (batch.min_y[j] - p.y).max(0.0).max(p.y - batch.max_y[j]);
                let dz = (batch.min_z[j] - p.z).max(0.0).max(p.z - batch.max_z[j]);
                *d = d.max(dx * dx + dy * dy + dz * dz);
            }
        }
        let mut out = [GroupClass::Mixed; MAC_BATCH];
        for j in 0..batch.len {
            let s2 = batch.side2[j];
            out[j] = if s2 < a2 * dmin2[j] {
                GroupClass::AcceptAll
            } else if s2 >= a2 * dmax2[j] {
                GroupClass::RejectAll
            } else {
                GroupClass::Mixed
            };
        }
        out
    }
}

/// Wrapper that pins a [`GroupMac`] to scalar one-node-at-a-time
/// classification: delegates `accept`/`classify` but keeps the trait's
/// default (scalar-loop) `classify_batch`, bypassing the SIMD override.
/// This is the pre-vectorization walk, kept as a first-class citizen for
/// the `walk` bench baseline leg and for bitwise-equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarClassify<M>(pub M);

impl<M: Mac> Mac for ScalarClassify<M> {
    #[inline(always)]
    fn accept(&self, cell: &Aabb, com: Vec3, point: Vec3) -> bool {
        self.0.accept(cell, com, point)
    }

    fn flops(&self) -> u64 {
        self.0.flops()
    }
}

impl<M: GroupMac> GroupMac for ScalarClassify<M> {
    #[inline(always)]
    fn classify(&self, cell: &Aabb, com: Vec3, bucket: &Aabb) -> GroupClass {
        self.0.classify(cell, com, bucket)
    }
    // classify_batch intentionally NOT overridden: the trait default loops
    // over scalar `classify`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{BarnesHutMac, MinDistMac};

    /// A deterministic little generator (no external deps in unit tests).
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.next_f64()
        }
    }

    fn random_aabb(rng: &mut Rng, scale: f64) -> Aabb {
        let cx = rng.range(-scale, scale);
        let cy = rng.range(-scale, scale);
        let cz = rng.range(-scale, scale);
        let hx = rng.range(1e-6, scale);
        let hy = rng.range(1e-6, scale);
        let hz = rng.range(1e-6, scale);
        Aabb::new(Vec3::new(cx - hx, cy - hy, cz - hz), Vec3::new(cx + hx, cy + hy, cz + hz))
    }

    fn check_batch_matches_scalar<M: GroupMac>(mac: &M, seed: u64, cases: usize) {
        let mut rng = Rng(seed.max(1));
        for case in 0..cases {
            // Vary the scale ratio so all three classes actually occur.
            let bucket = random_aabb(&mut rng, 1.0);
            let mut batch = NodeBatch::new();
            let mut cells = Vec::new();
            let k = 1 + (case % MAC_BATCH);
            for _ in 0..k {
                let scale = rng.range(0.05, 40.0);
                let cell = random_aabb(&mut rng, scale);
                let com = Vec3::new(
                    rng.range(cell.min.x, cell.max.x),
                    rng.range(cell.min.y, cell.max.y),
                    rng.range(cell.min.z, cell.max.z),
                );
                batch.push(&cell, com);
                cells.push((cell, com));
            }
            let got = mac.classify_batch(&batch, &bucket);
            for (j, (cell, com)) in cells.iter().enumerate() {
                let want = mac.classify(cell, *com, &bucket);
                assert_eq!(
                    got[j], want,
                    "case {case} lane {j}: batch {:?} != scalar {:?} (cell {cell:?}, com \
                     {com:?}, bucket {bucket:?})",
                    got[j], want
                );
            }
        }
    }

    #[test]
    fn barnes_hut_batch_decisions_match_scalar() {
        for alpha in [0.3, 0.67, 1.2] {
            check_batch_matches_scalar(&BarnesHutMac::new(alpha), 0x8d1e ^ alpha.to_bits(), 4000);
        }
    }

    #[test]
    fn min_dist_batch_decisions_match_scalar() {
        for alpha in [0.3, 0.67, 1.2] {
            check_batch_matches_scalar(&MinDistMac::new(alpha), 0x77aa ^ alpha.to_bits(), 4000);
        }
    }

    #[test]
    fn scalar_classify_wrapper_agrees_everywhere() {
        // ScalarClassify must be observationally identical to the wrapped
        // MAC (it only changes *how* the decisions are computed).
        check_batch_matches_scalar(&ScalarClassify(BarnesHutMac::new(0.67)), 0x1234, 2000);
        let mut rng = Rng(9);
        let mac = BarnesHutMac::new(0.67);
        let wrapped = ScalarClassify(mac);
        for _ in 0..500 {
            let cell = random_aabb(&mut rng, 2.0);
            let bucket = random_aabb(&mut rng, 1.0);
            let com = cell.center();
            let p = Vec3::new(rng.range(-3.0, 3.0), rng.range(-3.0, 3.0), rng.range(-3.0, 3.0));
            assert_eq!(mac.accept(&cell, com, p), wrapped.accept(&cell, com, p));
            assert_eq!(mac.classify(&cell, com, &bucket), wrapped.classify(&cell, com, &bucket));
        }
        assert_eq!(mac.flops(), wrapped.flops());
    }

    #[test]
    fn degenerate_geometry_matches_scalar() {
        // Touching boxes, contained boxes, point-thin cells: the boundary
        // comparisons (>= vs <) must tie-break identically.
        let bucket = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 1.0, 1.0));
        let cells = [
            Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0)), // face-touching
            Aabb::new(Vec3::new(0.25, 0.25, 0.25), Vec3::new(0.75, 0.75, 0.75)), // contained
            Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.5, 0.5, 0.5)), // degenerate point
            Aabb::new(Vec3::new(-4.0, -4.0, -4.0), Vec3::new(5.0, 5.0, 5.0)), // containing
            Aabb::new(Vec3::new(3.0, 3.0, 3.0), Vec3::new(3.5, 3.5, 3.5)), // far corner
        ];
        for alpha in [0.5, 1.0] {
            let bh = BarnesHutMac::new(alpha);
            let md = MinDistMac::new(alpha);
            let mut batch = NodeBatch::new();
            for cell in &cells {
                batch.push(cell, cell.center());
            }
            let got_bh = bh.classify_batch(&batch, &bucket);
            let got_md = md.classify_batch(&batch, &bucket);
            for (j, cell) in cells.iter().enumerate() {
                assert_eq!(got_bh[j], bh.classify(cell, cell.center(), &bucket));
                assert_eq!(got_md[j], md.classify(cell, cell.center(), &bucket));
            }
        }
    }
}
