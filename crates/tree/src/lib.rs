//! The sequential Barnes–Hut treecode (substrate **S3**).
//!
//! §2 of the paper: the method "works in two phases: the tree construction
//! phase and the force computation phase". This crate implements both for a
//! single address space, plus the `O(n²)` direct-summation baseline that
//! defines the accuracy reference for the fractional-error experiments
//! (Tables 6 and 7).
//!
//! * [`build`] — oct-tree construction: a cache-friendly bulk build over
//!   Morton-sorted particles (with *box collapsing*, which restores the
//!   `O(n log n)` bound for adversarial inputs) and an incremental
//!   insertion build (the "particle injection" formulation of §3.1 used by
//!   the distributed construction).
//! * [`mac`] — multipole acceptance criteria: the Barnes–Hut α-criterion and
//!   the minimum-distance variant of Warren & Salmon with a bounded
//!   worst-case error.
//! * [`traverse`] — force/potential evaluation with per-node interaction
//!   counting (the unit of load for the paper's balancing schemes, §3.3).
//! * [`direct`] — exact `O(n²)` summation.
//! * [`binary`] — the median-split binary treecode variant §2 cites
//!   (fewer nodes, controlled aspect ratios).

pub mod binary;
pub mod build;
pub mod direct;
pub mod group;
pub mod kernel;
pub mod mac;
pub mod mac_simd;
pub mod node;
pub mod traverse;

pub use bhut_simd::KernelPrecision;
pub use binary::BinaryTree;
pub use build::BuildParams;
pub use group::{
    accel_batch_m2p, accel_batch_p2p, eval_gathered_targets, eval_group_monopole, gather_group,
    gather_group_cached, gather_group_targets, leaf_schedule, resolve_mixed_tails_targets,
    InteractionBuffers, QueryTarget, WalkCache,
};
pub use mac::{BarnesHutMac, GroupClass, GroupMac, Mac, MinDistMac};
pub use mac_simd::{NodeBatch, ScalarClassify, MAC_BATCH};
pub use node::{Node, NodeId, Tree, NIL};
pub use traverse::{accel_on, potential_at, Interaction, TraversalStats};
