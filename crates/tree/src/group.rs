//! Grouped tree walks: one traversal per leaf bucket instead of one per
//! particle.
//!
//! The per-particle walk ([`crate::traverse`]) re-discovers nearly the same
//! interaction list for every particle of a leaf — neighbors in space agree
//! on all but the closest nodes. A grouped walk runs the multipole
//! acceptance test once per node against the *bucket* (the tight bounding
//! box of the leaf's particles), using [`GroupMac::classify`] to bracket the
//! per-member decision:
//!
//! * **AcceptAll** — every member accepts; the node's monopole goes into a
//!   shared structure-of-arrays M2P slab, evaluated once per member by a
//!   straight-line batched kernel.
//! * **RejectAll** — every member rejects; an internal node is expanded, a
//!   leaf's particles are appended to the shared P2P slab.
//! * **Mixed** — the bucket straddles the acceptance boundary; the subtree
//!   root is recorded and replayed per member through the exact per-particle
//!   walk ([`for_each_interaction_from`]).
//!
//! Because the walk only descends on RejectAll, every member's individual
//! walk is guaranteed to reach each shared or mixed frontier node, which
//! makes the grouped evaluation *interaction-for-interaction identical* to
//! the per-particle walk: identical [`TraversalStats`] and per-interaction
//! arithmetic, with only the summation order changed.

use crate::mac::{GroupClass, GroupMac};
use crate::node::{NodeId, Tree, NIL};
use crate::traverse::{
    accel_kernel, for_each_interaction_from, potential_kernel, Interaction, TraversalStats,
};
use bhut_geom::{Aabb, Particle, Vec3};

/// Reusable structure-of-arrays scratch for grouped walks. Allocate once per
/// worker thread; [`gather_group`] refills it for every leaf without
/// releasing capacity.
#[derive(Debug, Clone, Default)]
pub struct InteractionBuffers {
    /// MAC-accepted nodes (ids kept for degree-k evaluation and debugging).
    pub node_ids: Vec<NodeId>,
    /// Monopole M2P sources: centers of mass and masses, SoA.
    pub com_x: Vec<f64>,
    pub com_y: Vec<f64>,
    pub com_z: Vec<f64>,
    pub node_mass: Vec<f64>,
    /// Direct P2P sources, SoA; `pid` carries particle ids so kernels can
    /// exclude the target itself.
    pub px: Vec<f64>,
    pub py: Vec<f64>,
    pub pz: Vec<f64>,
    pub pmass: Vec<f64>,
    pub pid: Vec<u32>,
    /// Roots of subtrees that straddle the acceptance boundary for this
    /// bucket; replayed per member.
    pub mixed: Vec<NodeId>,
    /// MAC tests charged to *each* member by the shared walk (AcceptAll +
    /// RejectAll classifications of non-singleton nodes).
    pub shared_mac_tests: u64,
    /// RejectAll classifications (leaf appends plus internal expansions).
    /// AcceptAll and Mixed counts are `node_ids.len()` and `mixed.len()`.
    pub class_reject: u64,
    /// Internal nodes expanded (children pushed) during the shared walk.
    pub nodes_opened: u64,
    /// Whether the target leaf's own particles were appended to the P2P slab
    /// (each member then finds itself in the slab exactly once).
    pub self_in_p2p: bool,
    /// DFS stack, kept to avoid reallocation.
    stack: Vec<NodeId>,
}

impl InteractionBuffers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty all slabs, keeping capacity.
    pub fn clear(&mut self) {
        self.node_ids.clear();
        self.com_x.clear();
        self.com_y.clear();
        self.com_z.clear();
        self.node_mass.clear();
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.pmass.clear();
        self.pid.clear();
        self.mixed.clear();
        self.shared_mac_tests = 0;
        self.class_reject = 0;
        self.nodes_opened = 0;
        self.self_in_p2p = false;
    }

    fn push_node(&mut self, id: NodeId, com: Vec3, mass: f64) {
        self.node_ids.push(id);
        self.com_x.push(com.x);
        self.com_y.push(com.y);
        self.com_z.push(com.z);
        self.node_mass.push(mass);
    }

    fn push_particle(&mut self, p: &Particle) {
        self.px.push(p.pos.x);
        self.py.push(p.pos.y);
        self.pz.push(p.pos.z);
        self.pmass.push(p.mass);
        self.pid.push(p.id);
    }
}

/// Walk the tree once for the bucket of particles under `leaf`, filling
/// `buf` with the shared M2P/P2P slabs and the mixed subtree roots.
///
/// Returns the number of members. `buf` is cleared first; an empty leaf (or
/// empty tree) leaves it empty and returns 0.
pub fn gather_group(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
) -> usize {
    buf.clear();
    if tree.is_empty() {
        return 0;
    }
    let members = tree.particles_under(leaf);
    if members.is_empty() {
        return 0;
    }
    let bucket = Aabb::bounding(members.iter().map(|&pi| particles[pi as usize].pos))
        .expect("non-empty member set");

    let mut stack = std::mem::take(&mut buf.stack);
    stack.clear();
    stack.push(0);
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        let count = node.count();
        if count == 0 {
            continue;
        }
        if count == 1 {
            // Same special case as the per-particle walk: singletons skip
            // the MAC and interact directly.
            let pi = tree.order[node.start as usize];
            buf.push_particle(&particles[pi as usize]);
            if id == leaf {
                buf.self_in_p2p = true;
            }
            continue;
        }
        match mac.classify(&node.cell, node.com, &bucket) {
            GroupClass::AcceptAll => {
                buf.shared_mac_tests += 1;
                buf.push_node(id, node.com, node.mass);
            }
            GroupClass::RejectAll => {
                buf.shared_mac_tests += 1;
                buf.class_reject += 1;
                if node.is_leaf() {
                    for &pi in tree.particles_under(id) {
                        buf.push_particle(&particles[pi as usize]);
                    }
                    if id == leaf {
                        buf.self_in_p2p = true;
                    }
                } else {
                    buf.nodes_opened += 1;
                    for &c in node.children.iter().rev() {
                        if c != NIL {
                            stack.push(c);
                        }
                    }
                }
            }
            GroupClass::Mixed => {
                buf.mixed.push(id);
            }
        }
    }
    buf.stack = stack;
    members.len()
}

/// Batched monopole M2P: acceleration and potential at `point` due to the
/// SoA source slab `(xs, ys, zs, ms)`, Plummer-softened by `eps`.
///
/// Per-interaction arithmetic is identical to [`accel_kernel`] /
/// [`potential_kernel`] (same operations, same rounding), so a grouped
/// evaluation differs from the per-particle one only in summation order.
#[inline]
pub fn accel_batch_m2p(
    point: Vec3,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    eps: f64,
) -> (Vec3, f64) {
    let eps2 = eps * eps;
    let (mut ax, mut ay, mut az, mut phi) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..xs.len() {
        let dx = xs[i] - point.x;
        let dy = ys[i] - point.y;
        let dz = zs[i] - point.z;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let m = ms[i];
        let (w, ph) = if r2 > 0.0 {
            let s = r2.sqrt();
            (m / (r2 * s), -m / s)
        } else {
            (0.0, 0.0)
        };
        ax += dx * w;
        ay += dy * w;
        az += dz * w;
        phi += ph;
    }
    (Vec3::new(ax, ay, az), phi)
}

/// Batched monopole P2P: like [`accel_batch_m2p`] but over particle sources,
/// with the entry whose id equals `target_id` masked to zero mass (the
/// grouped counterpart of the per-particle walk's `skip_id`).
#[inline]
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_batch_p2p(
    point: Vec3,
    target_id: u32,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    ids: &[u32],
    eps: f64,
) -> (Vec3, f64) {
    let eps2 = eps * eps;
    let (mut ax, mut ay, mut az, mut phi) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..xs.len() {
        let dx = xs[i] - point.x;
        let dy = ys[i] - point.y;
        let dz = zs[i] - point.z;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let m = if ids[i] == target_id { 0.0 } else { ms[i] };
        let (w, ph) = if r2 > 0.0 {
            let s = r2.sqrt();
            (m / (r2 * s), -m / s)
        } else {
            (0.0, 0.0)
        };
        ax += dx * w;
        ay += dy * w;
        az += dz * w;
        phi += ph;
    }
    (Vec3::new(ax, ay, az), phi)
}

/// Monopole potential + acceleration for every particle under `leaf`, via
/// one grouped walk. `emit(particle_index, phi, accel, interactions)` is
/// called once per member; the returned stats equal the sum of what
/// per-particle walks would have produced (`p2p`, `p2n`, and `mac_tests`
/// all match exactly).
pub fn eval_group_monopole(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    eps: f64,
    buf: &mut InteractionBuffers,
    emit: impl FnMut(u32, f64, Vec3, u64),
) -> TraversalStats {
    gather_group(tree, particles, leaf, mac, buf);
    eval_gathered_monopole(tree, particles, leaf, mac, eps, buf, emit)
}

/// The kernel half of [`eval_group_monopole`]: evaluate every member of
/// `leaf` against slabs already filled by [`gather_group`] for that same
/// leaf. Splitting the walk (gather) from the kernels (this) lets callers
/// time the two phases separately.
pub fn eval_gathered_monopole(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    eps: f64,
    buf: &InteractionBuffers,
    emit: impl FnMut(u32, f64, Vec3, u64),
) -> TraversalStats {
    eval_gathered_monopole_masked(tree, particles, leaf, mac, eps, buf, None, emit)
}

/// [`eval_gathered_monopole`] restricted to an active subset: members with
/// `active[pi] == false` are skipped entirely (no kernels, no stats, no
/// `emit`), while the shared slabs — which already contain every source,
/// active or not — are reused untouched. `active == None` evaluates every
/// member with literally the same code path, which is what makes the masked
/// and unmasked walks bit-identical on their common members.
#[allow(clippy::too_many_arguments)] // mirrors eval_gathered_monopole + mask
pub fn eval_gathered_monopole_masked(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    eps: f64,
    buf: &InteractionBuffers,
    active: Option<&[bool]>,
    mut emit: impl FnMut(u32, f64, Vec3, u64),
) -> TraversalStats {
    let mut stats = TraversalStats::default();
    if tree.is_empty() {
        return stats;
    }
    let n_members = tree.particles_under(leaf).len();
    if n_members == 0 {
        return stats;
    }
    let shared_p2n = buf.node_ids.len() as u64;
    let shared_p2p = buf.px.len() as u64 - buf.self_in_p2p as u64;
    for k in 0..n_members {
        let pi = tree.particles_under(leaf)[k];
        if let Some(mask) = active {
            if !mask[pi as usize] {
                continue;
            }
        }
        let p = &particles[pi as usize];
        let (mut acc, mut phi) =
            accel_batch_m2p(p.pos, &buf.com_x, &buf.com_y, &buf.com_z, &buf.node_mass, eps);
        let (acc_p, phi_p) =
            accel_batch_p2p(p.pos, p.id, &buf.px, &buf.py, &buf.pz, &buf.pmass, &buf.pid, eps);
        acc += acc_p;
        phi += phi_p;
        let mut member =
            TraversalStats { p2n: shared_p2n, p2p: shared_p2p, mac_tests: buf.shared_mac_tests };
        for &root in &buf.mixed {
            let st = for_each_interaction_from(
                tree,
                root,
                particles,
                p.pos,
                Some(p.id),
                mac,
                |i| match i {
                    Interaction::Node(id) => {
                        let n = tree.node(id);
                        acc += accel_kernel(p.pos, n.com, n.mass, eps);
                        phi += potential_kernel(p.pos, n.com, n.mass, eps);
                    }
                    Interaction::Particle(qi) => {
                        let q = &particles[qi as usize];
                        acc += accel_kernel(p.pos, q.pos, q.mass, eps);
                        phi += potential_kernel(p.pos, q.pos, q.mass, eps);
                    }
                },
            );
            member.merge(st);
        }
        emit(pi, phi, acc, member.interactions());
        stats.merge(member);
    }
    stats
}

/// All leaves of `tree` in Morton (in-order) sequence — the group schedule.
/// Every particle lies under exactly one returned leaf.
pub fn leaf_schedule(tree: &Tree) -> Vec<NodeId> {
    let mut leaves = Vec::new();
    if tree.is_empty() {
        return leaves;
    }
    tree.walk(|id, _| {
        let n = tree.node(id);
        if n.is_leaf() && n.count() > 0 {
            leaves.push(id);
        }
    });
    leaves
}

/// The group schedule restricted to an active subset: leaves in Morton
/// sequence that contain at least one particle with `active[pi] == true`.
/// Leaves of only-inactive particles are never walked — their members still
/// act as sources through other groups' slabs, but cost no target work.
pub fn leaf_schedule_active(tree: &Tree, active: &[bool]) -> Vec<NodeId> {
    let mut leaves = Vec::new();
    if tree.is_empty() {
        return leaves;
    }
    tree.walk(|id, _| {
        let n = tree.node(id);
        if n.is_leaf()
            && n.count() > 0
            && tree.particles_under(id).iter().any(|&pi| active[pi as usize])
        {
            leaves.push(id);
        }
    });
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::mac::{BarnesHutMac, MinDistMac};
    use crate::traverse::{accel_on, potential_at};
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};

    const EPS: f64 = 1e-4;

    fn assert_group_matches_per_particle(
        set: &bhut_geom::ParticleSet,
        mac: &(impl GroupMac + Copy),
        leaf_capacity: usize,
    ) {
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(leaf_capacity));
        let mut buf = InteractionBuffers::new();
        let mut grouped_stats = TraversalStats::default();
        let mut seen = vec![false; set.len()];
        for leaf in leaf_schedule(&tree) {
            let st = eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                mac,
                EPS,
                &mut buf,
                |pi, phi, acc, inter| {
                    let p = &set.particles[pi as usize];
                    assert!(!seen[pi as usize], "particle {pi} visited twice");
                    seen[pi as usize] = true;
                    let (phi_ref, st_phi) =
                        potential_at(&tree, &set.particles, p.pos, Some(p.id), mac, EPS);
                    let (acc_ref, _) = accel_on(&tree, &set.particles, p.pos, Some(p.id), mac, EPS);
                    assert_eq!(
                        inter,
                        st_phi.interactions(),
                        "interaction count differs for particle {pi}"
                    );
                    let tol = 1e-12;
                    assert!(
                        (phi - phi_ref).abs() <= tol * phi_ref.abs().max(1.0),
                        "phi {phi} vs {phi_ref} for particle {pi}"
                    );
                    assert!(
                        acc.dist(acc_ref) <= tol * acc_ref.norm().max(1.0),
                        "acc {acc:?} vs {acc_ref:?} for particle {pi}"
                    );
                },
            );
            grouped_stats.merge(st);
        }
        assert!(seen.iter().all(|&s| s), "leaf schedule must cover every particle");

        // Aggregate stats equal the per-particle totals field by field.
        let mut reference = TraversalStats::default();
        for p in set.iter() {
            let (_, st) = potential_at(&tree, &set.particles, p.pos, Some(p.id), mac, EPS);
            reference.merge(st);
        }
        assert_eq!(grouped_stats, reference);
    }

    #[test]
    fn grouped_matches_per_particle_uniform() {
        let set = uniform_cube(500, 1.0, 7);
        for alpha in [0.67, 1.0] {
            assert_group_matches_per_particle(&set, &BarnesHutMac::new(alpha), 8);
        }
    }

    #[test]
    fn grouped_matches_per_particle_plummer() {
        let set = plummer(PlummerSpec { n: 700, seed: 4, ..Default::default() });
        assert_group_matches_per_particle(&set, &BarnesHutMac::new(0.67), 8);
        assert_group_matches_per_particle(&set, &BarnesHutMac::new(0.67), 1);
        assert_group_matches_per_particle(&set, &BarnesHutMac::new(0.67), 32);
    }

    #[test]
    fn grouped_matches_per_particle_min_dist() {
        let set = plummer(PlummerSpec { n: 400, seed: 9, ..Default::default() });
        assert_group_matches_per_particle(&set, &MinDistMac::new(0.8), 8);
    }

    #[test]
    fn batch_kernels_match_scalar_kernels_bitwise() {
        let set = uniform_cube(64, 1.0, 11);
        let point = Vec3::new(0.31, 0.62, 0.48);
        let xs: Vec<f64> = set.iter().map(|p| p.pos.x).collect();
        let ys: Vec<f64> = set.iter().map(|p| p.pos.y).collect();
        let zs: Vec<f64> = set.iter().map(|p| p.pos.z).collect();
        let ms: Vec<f64> = set.iter().map(|p| p.mass).collect();
        let ids: Vec<u32> = set.iter().map(|p| p.id).collect();
        // Per-interaction arithmetic must agree bit-for-bit with the scalar
        // kernels when summed in the same order.
        let (acc, phi) = accel_batch_m2p(point, &xs, &ys, &zs, &ms, EPS);
        let mut acc_ref = Vec3::ZERO;
        let mut phi_ref = 0.0;
        for p in set.iter() {
            acc_ref += accel_kernel(point, p.pos, p.mass, EPS);
            phi_ref += potential_kernel(point, p.pos, p.mass, EPS);
        }
        assert_eq!(acc, acc_ref);
        assert_eq!(phi, phi_ref);
        // P2P with a masked id: equals the scalar sum that skips it.
        let skip = 17u32;
        let (acc2, phi2) = accel_batch_p2p(point, skip, &xs, &ys, &zs, &ms, &ids, EPS);
        let mut acc2_ref = Vec3::ZERO;
        let mut phi2_ref = 0.0;
        for p in set.iter().filter(|p| p.id != skip) {
            acc2_ref += accel_kernel(point, p.pos, p.mass, EPS);
            phi2_ref += potential_kernel(point, p.pos, p.mass, EPS);
        }
        assert!((acc2.dist(acc2_ref)) <= 1e-15 * acc2_ref.norm().max(1.0));
        assert!((phi2 - phi2_ref).abs() <= 1e-15 * phi2_ref.abs().max(1.0));
    }

    #[test]
    fn buffers_are_reusable() {
        let set = plummer(PlummerSpec { n: 300, seed: 2, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        let leaves = leaf_schedule(&tree);
        let mut first = Vec::new();
        for &leaf in &leaves {
            eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &mut buf,
                |pi, phi, _, _| {
                    first.push((pi, phi));
                },
            );
        }
        let mut second = Vec::new();
        for &leaf in &leaves {
            eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &mut buf,
                |pi, phi, _, _| {
                    second.push((pi, phi));
                },
            );
        }
        assert_eq!(first, second);
    }

    #[test]
    fn walk_classification_counters_are_consistent() {
        let set = plummer(PlummerSpec { n: 600, seed: 5, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        let mut total_opened = 0;
        let mut total_mixed = 0;
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            // Every shared MAC test is either an accept-all or a reject-all
            // classification; mixed nodes are charged per member instead.
            assert_eq!(buf.shared_mac_tests, buf.node_ids.len() as u64 + buf.class_reject);
            // Only reject-all classifications of internal nodes open them.
            assert!(buf.nodes_opened <= buf.class_reject);
            total_opened += buf.nodes_opened;
            total_mixed += buf.mixed.len() as u64;
        }
        // A 600-body Plummer tree at α=0.67 must both descend and hit the
        // acceptance boundary somewhere.
        assert!(total_opened > 0, "no nodes opened");
        assert!(total_mixed > 0, "no mixed frontiers");
    }

    #[test]
    fn gather_then_eval_matches_fused_eval() {
        // The split API (gather_group + eval_gathered_monopole) is what the
        // instrumented executor times; it must equal the fused call exactly.
        let set = plummer(PlummerSpec { n: 400, seed: 11, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let (mut buf_a, mut buf_b) = (InteractionBuffers::new(), InteractionBuffers::new());
        for leaf in leaf_schedule(&tree) {
            let mut fused = Vec::new();
            let st_a = eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &mut buf_a,
                |pi, phi, acc, it| fused.push((pi, phi, acc, it)),
            );
            let mut split = Vec::new();
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf_b);
            let st_b = eval_gathered_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &buf_b,
                |pi, phi, acc, it| split.push((pi, phi, acc, it)),
            );
            assert_eq!(st_a, st_b);
            assert_eq!(fused, split);
        }
    }

    #[test]
    fn masked_eval_is_bitwise_restriction_of_full_eval() {
        // Active-set evaluation must agree bit-for-bit with the full grouped
        // walk on the active members, and touch nothing else.
        let set = plummer(PlummerSpec { n: 500, seed: 17, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        // Every third particle active.
        let active: Vec<bool> = (0..set.len()).map(|i| i % 3 == 0).collect();
        let mut buf = InteractionBuffers::new();
        let mut full: Vec<Option<(f64, Vec3, u64)>> = vec![None; set.len()];
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            eval_gathered_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &buf,
                |pi, phi, acc, it| {
                    full[pi as usize] = Some((phi, acc, it));
                },
            );
        }
        let mut masked: Vec<Option<(f64, Vec3, u64)>> = vec![None; set.len()];
        let sched = leaf_schedule_active(&tree, &active);
        for &leaf in &sched {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            eval_gathered_monopole_masked(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &buf,
                Some(&active),
                |pi, phi, acc, it| {
                    masked[pi as usize] = Some((phi, acc, it));
                },
            );
        }
        for i in 0..set.len() {
            if active[i] {
                assert_eq!(masked[i], full[i], "active particle {i}");
            } else {
                assert_eq!(masked[i], None, "inactive particle {i} was evaluated");
            }
        }
        // The active schedule is exactly the leaves holding active members.
        for leaf in leaf_schedule(&tree) {
            let holds_active = tree.particles_under(leaf).iter().any(|&pi| active[pi as usize]);
            assert_eq!(sched.contains(&leaf), holds_active);
        }
        // An all-true mask reproduces the full schedule.
        assert_eq!(leaf_schedule_active(&tree, &vec![true; set.len()]), leaf_schedule(&tree));
    }

    #[test]
    fn empty_and_tiny_trees() {
        let tree = build(&[], BuildParams::default());
        let mut buf = InteractionBuffers::new();
        assert_eq!(leaf_schedule(&tree).len(), 0);

        let set = uniform_cube(1, 1.0, 1);
        let tree = build(&set.particles, BuildParams::default());
        let leaves = leaf_schedule(&tree);
        assert_eq!(leaves.len(), 1);
        let mac = BarnesHutMac::new(0.67);
        let mut calls = 0;
        let st = eval_group_monopole(
            &tree,
            &set.particles,
            leaves[0],
            &mac,
            EPS,
            &mut buf,
            |_, phi, acc, inter| {
                calls += 1;
                assert_eq!(phi, 0.0);
                assert_eq!(acc, Vec3::ZERO);
                assert_eq!(inter, 0);
            },
        );
        assert_eq!(calls, 1);
        assert_eq!(st.interactions(), 0);
    }
}
