//! Grouped tree walks: one traversal per leaf bucket instead of one per
//! particle.
//!
//! The per-particle walk ([`crate::traverse`]) re-discovers nearly the same
//! interaction list for every particle of a leaf — neighbors in space agree
//! on all but the closest nodes. A grouped walk runs the multipole
//! acceptance test once per node against the *bucket* (the tight bounding
//! box of the leaf's particles), using [`GroupMac::classify`] to bracket the
//! per-member decision:
//!
//! * **AcceptAll** — every member accepts; the node's monopole goes into a
//!   shared structure-of-arrays M2P slab, evaluated once per member by a
//!   straight-line batched kernel.
//! * **RejectAll** — every member rejects; an internal node is expanded, a
//!   leaf's particles are appended to the shared P2P slab.
//! * **Mixed** — the bucket straddles the acceptance boundary; the subtree
//!   root is recorded and replayed per member through the exact per-particle
//!   walk ([`for_each_interaction_from`]). [`resolve_mixed_tails`] can run
//!   the replays at gather time, flattening each member's mixed
//!   interactions into a per-member SoA tail segment so the evaluation
//!   phase stays pure slab arithmetic.
//!
//! Because the walk only descends on RejectAll, every member's individual
//! walk is guaranteed to reach each shared or mixed frontier node, which
//! makes the grouped evaluation *interaction-for-interaction identical* to
//! the per-particle walk: identical [`TraversalStats`] and per-interaction
//! arithmetic, with only the summation order changed.

use crate::kernel::{
    accel_slab_m2p_f32, accel_slab_m2p_f64, accel_slab_member_f64, accel_slab_p2p_f32,
    accel_slab_p2p_f64, SlabView,
};
use crate::mac::{GroupClass, GroupMac, Mac};
use crate::mac_simd::NodeBatch;
use crate::node::{Node, NodeId, Tree, NIL};
use crate::traverse::{
    accel_kernel, for_each_interaction_from, potential_kernel, Interaction, TraversalStats,
};
use bhut_geom::{Aabb, Particle, Vec3};
use bhut_simd::{AlignedF32Slab, AlignedF64Slab, AlignedU32Slab, KernelPrecision, PAD_MULTIPLE};
use std::cell::Cell;
use std::collections::HashMap;

/// Below this many elements, slab capacity is noise — the shrink policy
/// never releases it.
const SHRINK_FLOOR: usize = 4096;

/// Reusable structure-of-arrays scratch for grouped walks. Allocate once per
/// worker thread; [`gather_group`] refills it for every leaf without
/// releasing capacity (call [`InteractionBuffers::maybe_shrink`] between
/// steps to give back capacity a transient dense group pinned).
///
/// The SoA slabs are 64-byte-aligned and padded to [`PAD_MULTIPLE`] with
/// zero-mass sentinels (`pid` padding is `u32::MAX`), so the vector kernels
/// iterate whole lanes with no tail. Dereferencing a slab (`&buf.px[..]`,
/// `buf.px.len()`) sees only the logical contents — padding is visible only
/// through `.padded()`.
#[derive(Debug, Clone, Default)]
pub struct InteractionBuffers {
    /// MAC-accepted nodes (ids kept for degree-k evaluation and debugging).
    pub node_ids: Vec<NodeId>,
    /// Monopole M2P sources: centers of mass and masses, SoA.
    pub com_x: AlignedF64Slab,
    pub com_y: AlignedF64Slab,
    pub com_z: AlignedF64Slab,
    pub node_mass: AlignedF64Slab,
    /// Direct P2P sources, SoA; `pid` carries particle ids so kernels can
    /// exclude the target itself.
    pub px: AlignedF64Slab,
    pub py: AlignedF64Slab,
    pub pz: AlignedF64Slab,
    pub pmass: AlignedF64Slab,
    pub pid: AlignedU32Slab,
    /// Roots of subtrees that straddle the acceptance boundary for this
    /// bucket; replayed per member.
    pub mixed: Vec<NodeId>,
    /// Per-member tail slabs: the mixed-frontier interactions of every
    /// member, resolved by [`resolve_mixed_tails`] into one SoA segment per
    /// member (monopole sources only — node centers of mass and particle
    /// positions look identical to the kernel). Segments are padded in place
    /// to [`PAD_MULTIPLE`] with zero-mass sentinels, so each starts
    /// lane-aligned and the kernels never straddle a ragged boundary.
    pub tail_x: AlignedF64Slab,
    pub tail_y: AlignedF64Slab,
    pub tail_z: AlignedF64Slab,
    pub tail_m: AlignedF64Slab,
    /// One span per member ordinal (the order of `tree.particles_under`);
    /// empty until [`resolve_mixed_tails`] runs.
    tails: Vec<TailSpan>,
    /// Whether `tails` describes the current gather (evaluation then skips
    /// the per-member mixed replay entirely).
    tails_ready: bool,
    /// MAC tests charged to *each* member by the shared walk (AcceptAll +
    /// RejectAll classifications of non-singleton nodes).
    pub shared_mac_tests: u64,
    /// RejectAll classifications (leaf appends plus internal expansions).
    /// AcceptAll and Mixed counts are `node_ids.len()` and `mixed.len()`.
    pub class_reject: u64,
    /// Internal nodes expanded (children pushed) during the shared walk.
    pub nodes_opened: u64,
    /// Whether the target leaf's own particles were appended to the P2P slab
    /// (each member then finds itself in the slab exactly once).
    pub self_in_p2p: bool,
    /// Kernel lane slots processed (padded slab length × members evaluated);
    /// `Cell` because evaluation holds the buffers by shared reference.
    pub lane_slots: Cell<u64>,
    /// Lane slots carrying real sources (logical slab length × members) —
    /// `lane_useful / lane_slots` is the SIMD lane utilization.
    pub lane_useful: Cell<u64>,
    /// f32 mirrors of the padded f64 slabs for
    /// [`KernelPrecision::MixedF32`]; filled on demand by
    /// [`InteractionBuffers::prepare_f32`].
    com_x32: AlignedF32Slab,
    com_y32: AlignedF32Slab,
    com_z32: AlignedF32Slab,
    node_mass32: AlignedF32Slab,
    px32: AlignedF32Slab,
    py32: AlignedF32Slab,
    pz32: AlignedF32Slab,
    pmass32: AlignedF32Slab,
    /// Whether the f32 mirrors reflect the current slab contents.
    f32_ready: bool,
    /// Sticky mode bit: when set, [`gather_group`] fills the f32 mirrors
    /// *during* the gather (one `as f32` per pushed source) instead of
    /// requiring a whole-slab [`InteractionBuffers::prepare_f32`] conversion
    /// pass afterwards. Identical mirror contents either way — the executor
    /// sets this for [`KernelPrecision::MixedF32`] so the mixed mode helps
    /// the walk phase too.
    fill_f32: bool,
    /// Per-lane accumulators for [`resolve_mixed_tails_lanes`]: one
    /// `[x, y, z, mass]` list per member lane, reused across leaves.
    lane_scratch: Vec<Vec<[f64; 4]>>,
    /// Largest P2P / M2P slab fills since the last shrink window, recorded
    /// by [`InteractionBuffers::clear`].
    hwm_p2p: usize,
    hwm_m2p: usize,
    /// Largest tail fill since the last shrink window.
    hwm_tail: usize,
    /// DFS stack of pre-classified nodes, kept to avoid reallocation.
    stack: Vec<WalkEntry>,
}

/// One pre-classified stack entry of the batched walk: everything the pop
/// needs (class, population, slab payload) is captured when the node's
/// *parent* is opened, so consuming an entry touches the node array again
/// only to open it further.
#[derive(Debug, Clone, Copy)]
struct WalkEntry {
    id: NodeId,
    /// `node.start` — with `count`, locates `tree.order[start..start+count]`.
    start: u32,
    count: u32,
    class: GroupClass,
    is_leaf: bool,
    com: Vec3,
    mass: f64,
}

impl WalkEntry {
    #[inline(always)]
    fn new(id: NodeId, node: &Node, class: GroupClass) -> Self {
        WalkEntry {
            id,
            start: node.start,
            count: node.count(),
            class,
            is_leaf: node.is_leaf(),
            com: node.com,
            mass: node.mass,
        }
    }
}

/// One member's resolved mixed-frontier segment in the tail slabs, plus the
/// traversal stats its replay produced (kept so evaluation can report
/// exactly what the per-member walk would have).
#[derive(Debug, Clone, Copy, Default)]
struct TailSpan {
    /// Padded segment bounds in the tail slabs (`end - start` is a lane
    /// multiple).
    start: u32,
    end: u32,
    /// Logical (unpadded) interaction count in the segment.
    len: u32,
    stats: TraversalStats,
}

impl InteractionBuffers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty all slabs, keeping capacity.
    pub fn clear(&mut self) {
        self.note_high_water();
        self.node_ids.clear();
        self.com_x.clear();
        self.com_y.clear();
        self.com_z.clear();
        self.node_mass.clear();
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.pmass.clear();
        self.pid.clear();
        self.mixed.clear();
        self.tail_x.clear();
        self.tail_y.clear();
        self.tail_z.clear();
        self.tail_m.clear();
        self.tails.clear();
        self.tails_ready = false;
        self.shared_mac_tests = 0;
        self.class_reject = 0;
        self.nodes_opened = 0;
        self.self_in_p2p = false;
        self.f32_ready = false;
        if self.fill_f32 {
            self.com_x32.clear();
            self.com_y32.clear();
            self.com_z32.clear();
            self.node_mass32.clear();
            self.px32.clear();
            self.py32.clear();
            self.pz32.clear();
            self.pmass32.clear();
        }
    }

    /// Fill the f32 mirrors during the gather itself (see the field doc).
    /// Takes effect at the next [`InteractionBuffers::clear`]; a later
    /// [`InteractionBuffers::prepare_f32`] still works and overwrites the
    /// mirrors with identical contents.
    pub fn set_fill_f32(&mut self, on: bool) {
        self.fill_f32 = on;
    }

    fn push_node(&mut self, id: NodeId, com: Vec3, mass: f64) {
        self.node_ids.push(id);
        self.com_x.push(com.x);
        self.com_y.push(com.y);
        self.com_z.push(com.z);
        self.node_mass.push(mass);
        if self.fill_f32 {
            self.com_x32.push(com.x as f32);
            self.com_y32.push(com.y as f32);
            self.com_z32.push(com.z as f32);
            self.node_mass32.push(mass as f32);
        }
    }

    fn push_particle(&mut self, p: &Particle) {
        self.px.push(p.pos.x);
        self.py.push(p.pos.y);
        self.pz.push(p.pos.z);
        self.pmass.push(p.mass);
        self.pid.push(p.id);
        if self.fill_f32 {
            self.px32.push(p.pos.x as f32);
            self.py32.push(p.pos.y as f32);
            self.pz32.push(p.pos.z as f32);
            self.pmass32.push(p.mass as f32);
        }
    }

    /// Pad every slab to [`PAD_MULTIPLE`] with zero-mass sentinels
    /// (positions 0, ids `u32::MAX`), so the vector kernels never straddle
    /// a tail. Called by [`gather_group`] after the walk; logical lengths
    /// are unchanged.
    fn pad(&mut self) {
        self.com_x.pad_to(PAD_MULTIPLE, 0.0);
        self.com_y.pad_to(PAD_MULTIPLE, 0.0);
        self.com_z.pad_to(PAD_MULTIPLE, 0.0);
        self.node_mass.pad_to(PAD_MULTIPLE, 0.0);
        self.px.pad_to(PAD_MULTIPLE, 0.0);
        self.py.pad_to(PAD_MULTIPLE, 0.0);
        self.pz.pad_to(PAD_MULTIPLE, 0.0);
        self.pmass.pad_to(PAD_MULTIPLE, 0.0);
        self.pid.pad_to(PAD_MULTIPLE, u32::MAX);
        if self.fill_f32 {
            // The f64 sentinels are 0.0, and `0.0f64 as f32 == 0.0f32`, so
            // the gathered mirrors end up bitwise-equal to what
            // [`InteractionBuffers::prepare_f32`] would build.
            self.com_x32.pad_to(PAD_MULTIPLE, 0.0);
            self.com_y32.pad_to(PAD_MULTIPLE, 0.0);
            self.com_z32.pad_to(PAD_MULTIPLE, 0.0);
            self.node_mass32.pad_to(PAD_MULTIPLE, 0.0);
            self.px32.pad_to(PAD_MULTIPLE, 0.0);
            self.py32.pad_to(PAD_MULTIPLE, 0.0);
            self.pz32.pad_to(PAD_MULTIPLE, 0.0);
            self.pmass32.pad_to(PAD_MULTIPLE, 0.0);
            self.f32_ready = true;
        }
    }

    /// Fill the f32 mirror slabs from the current (padded) f64 slabs.
    /// Required before evaluating with [`KernelPrecision::MixedF32`]; the
    /// other precisions never read the mirrors.
    pub fn prepare_f32(&mut self) {
        fn mirror(dst: &mut AlignedF32Slab, src: &AlignedF64Slab) {
            dst.clear();
            dst.extend(src.padded().iter().map(|&v| v as f32));
            dst.pad_to(PAD_MULTIPLE, 0.0);
        }
        mirror(&mut self.com_x32, &self.com_x);
        mirror(&mut self.com_y32, &self.com_y);
        mirror(&mut self.com_z32, &self.com_z);
        mirror(&mut self.node_mass32, &self.node_mass);
        mirror(&mut self.px32, &self.px);
        mirror(&mut self.py32, &self.py);
        mirror(&mut self.pz32, &self.pz);
        mirror(&mut self.pmass32, &self.pmass);
        self.f32_ready = true;
    }

    fn note_high_water(&mut self) {
        self.hwm_p2p = self.hwm_p2p.max(self.px.len());
        self.hwm_m2p = self.hwm_m2p.max(self.com_x.len());
        self.hwm_tail = self.hwm_tail.max(self.tail_x.len());
    }

    /// High-water-mark shrink: if a slab family's capacity exceeds 4× the
    /// largest fill seen since the last call (a transient dense group pinned
    /// it), release down to 2× that mark. Call once per step, between
    /// evaluation sweeps; the high-water window then restarts.
    pub fn maybe_shrink(&mut self) {
        self.note_high_water();
        let oversized = |hwm: usize, cap: usize| cap > SHRINK_FLOOR && cap > 4 * hwm;
        if oversized(self.hwm_p2p, self.px.capacity()) {
            let keep = (2 * self.hwm_p2p).max(SHRINK_FLOOR);
            self.px.shrink_to(keep);
            self.py.shrink_to(keep);
            self.pz.shrink_to(keep);
            self.pmass.shrink_to(keep);
            self.pid.shrink_to(keep);
            self.px32.shrink_to(keep);
            self.py32.shrink_to(keep);
            self.pz32.shrink_to(keep);
            self.pmass32.shrink_to(keep);
        }
        if oversized(self.hwm_m2p, self.com_x.capacity()) {
            let keep = (2 * self.hwm_m2p).max(SHRINK_FLOOR);
            self.com_x.shrink_to(keep);
            self.com_y.shrink_to(keep);
            self.com_z.shrink_to(keep);
            self.node_mass.shrink_to(keep);
            self.com_x32.shrink_to(keep);
            self.com_y32.shrink_to(keep);
            self.com_z32.shrink_to(keep);
            self.node_mass32.shrink_to(keep);
        }
        if oversized(self.hwm_tail, self.tail_x.capacity()) {
            let keep = (2 * self.hwm_tail).max(SHRINK_FLOOR);
            self.tail_x.shrink_to(keep);
            self.tail_y.shrink_to(keep);
            self.tail_z.shrink_to(keep);
            self.tail_m.shrink_to(keep);
        }
        self.hwm_p2p = 0;
        self.hwm_m2p = 0;
        self.hwm_tail = 0;
    }

    /// Take and zero the lane-utilization counters (slots, useful).
    pub fn take_lane_counters(&self) -> (u64, u64) {
        (self.lane_slots.take(), self.lane_useful.take())
    }

    #[inline(always)]
    fn count_lanes(&self, slots: usize, useful: usize) {
        self.lane_slots.set(self.lane_slots.get() + slots as u64);
        self.lane_useful.set(self.lane_useful.get() + useful as u64);
    }

    /// Acceleration + potential at `pos` from the M2P monopole slab, with
    /// the per-precision kernel. [`KernelPrecision::MixedF32`] requires a
    /// prior [`InteractionBuffers::prepare_f32`].
    pub fn eval_m2p(&self, pos: Vec3, eps: f64, precision: KernelPrecision) -> (Vec3, f64) {
        match precision {
            KernelPrecision::ScalarF64 => {
                // The scalar path walks only the logical entries; every
                // processed slot is useful.
                self.count_lanes(self.node_ids.len(), self.node_ids.len());
                accel_batch_m2p(pos, &self.com_x, &self.com_y, &self.com_z, &self.node_mass, eps)
            }
            KernelPrecision::F64 => {
                self.count_lanes(self.com_x.padded_len(), self.com_x.len());
                let (ax, ay, az, phi) = accel_slab_m2p_f64(
                    pos.x,
                    pos.y,
                    pos.z,
                    self.com_x.padded(),
                    self.com_y.padded(),
                    self.com_z.padded(),
                    self.node_mass.padded(),
                    eps * eps,
                );
                (Vec3::new(ax, ay, az), phi)
            }
            KernelPrecision::MixedF32 => {
                self.assert_f32_ready();
                self.count_lanes(self.com_x.padded_len(), self.com_x.len());
                let (ax, ay, az, phi) = accel_slab_m2p_f32(
                    pos.x as f32,
                    pos.y as f32,
                    pos.z as f32,
                    self.com_x32.padded(),
                    self.com_y32.padded(),
                    self.com_z32.padded(),
                    self.node_mass32.padded(),
                    (eps * eps) as f32,
                );
                (Vec3::new(ax, ay, az), phi)
            }
        }
    }

    /// Acceleration + potential at `pos` from the P2P particle slab (the
    /// entry with id `target_id` masked out), with the per-precision kernel.
    pub fn eval_p2p(
        &self,
        pos: Vec3,
        target_id: u32,
        eps: f64,
        precision: KernelPrecision,
    ) -> (Vec3, f64) {
        match precision {
            KernelPrecision::ScalarF64 => {
                self.count_lanes(self.px.len(), self.px.len());
                accel_batch_p2p(
                    pos,
                    target_id,
                    &self.px,
                    &self.py,
                    &self.pz,
                    &self.pmass,
                    &self.pid,
                    eps,
                )
            }
            KernelPrecision::F64 => {
                self.count_lanes(self.px.padded_len(), self.px.len());
                let (ax, ay, az, phi) = accel_slab_p2p_f64(
                    pos.x,
                    pos.y,
                    pos.z,
                    target_id,
                    self.px.padded(),
                    self.py.padded(),
                    self.pz.padded(),
                    self.pmass.padded(),
                    self.pid.padded(),
                    eps * eps,
                );
                (Vec3::new(ax, ay, az), phi)
            }
            KernelPrecision::MixedF32 => {
                self.assert_f32_ready();
                self.count_lanes(self.px.padded_len(), self.px.len());
                let (ax, ay, az, phi) = accel_slab_p2p_f32(
                    pos.x as f32,
                    pos.y as f32,
                    pos.z as f32,
                    target_id,
                    self.px32.padded(),
                    self.py32.padded(),
                    self.pz32.padded(),
                    self.pmass32.padded(),
                    self.pid.padded(),
                    (eps * eps) as f32,
                );
                (Vec3::new(ax, ay, az), phi)
            }
        }
    }

    /// Whether [`resolve_mixed_tails`] has run for the current gather.
    #[inline(always)]
    pub fn tails_ready(&self) -> bool {
        self.tails_ready
    }

    /// Acceleration + potential at `pos` from member ordinal `k`'s resolved
    /// tail segment, plus the traversal stats its replay recorded.
    ///
    /// Tails always run in f64: they hold the near-field, accuracy-critical
    /// interactions the group MAC could not settle, and they are too short
    /// to be worth mirroring into f32 — so [`KernelPrecision::MixedF32`]
    /// shares the f64 slab kernel here, and only
    /// [`KernelPrecision::ScalarF64`] takes the scalar loop.
    fn eval_tail(
        &self,
        k: usize,
        pos: Vec3,
        eps: f64,
        precision: KernelPrecision,
    ) -> (Vec3, f64, TraversalStats) {
        let span = &self.tails[k];
        let (a, b) = (span.start as usize, span.end as usize);
        if a == b {
            return (Vec3::ZERO, 0.0, span.stats);
        }
        let (acc, phi) = match precision {
            KernelPrecision::ScalarF64 => {
                self.count_lanes(span.len as usize, span.len as usize);
                accel_batch_m2p(
                    pos,
                    &self.tail_x[a..a + span.len as usize],
                    &self.tail_y[a..a + span.len as usize],
                    &self.tail_z[a..a + span.len as usize],
                    &self.tail_m[a..a + span.len as usize],
                    eps,
                )
            }
            KernelPrecision::F64 | KernelPrecision::MixedF32 => {
                self.count_lanes(b - a, span.len as usize);
                let (ax, ay, az, phi) = accel_slab_m2p_f64(
                    pos.x,
                    pos.y,
                    pos.z,
                    &self.tail_x[a..b],
                    &self.tail_y[a..b],
                    &self.tail_z[a..b],
                    &self.tail_m[a..b],
                    eps * eps,
                );
                (Vec3::new(ax, ay, az), phi)
            }
        };
        (acc, phi, span.stats)
    }

    #[inline(always)]
    fn assert_f32_ready(&self) {
        assert!(
            self.f32_ready,
            "MixedF32 evaluation requires InteractionBuffers::prepare_f32 after gather_group"
        );
    }
}

/// Walk the tree once for the bucket of particles under `leaf`, filling
/// `buf` with the shared M2P/P2P slabs and the mixed subtree roots.
///
/// Returns the number of members. `buf` is cleared first; an empty leaf (or
/// empty tree) leaves it empty and returns 0.
pub fn gather_group(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
) -> usize {
    buf.clear();
    if tree.is_empty() {
        return 0;
    }
    let members = tree.particles_under(leaf);
    if members.is_empty() {
        return 0;
    }
    let bucket = Aabb::bounding(members.iter().map(|&pi| particles[pi as usize].pos))
        .expect("non-empty member set");
    walk_bucket(tree, particles, &bucket, Some(leaf), mac, buf, None);
    members.len()
}

/// A leaf bucket's classification outcome, frozen for replay: the accepted
/// node ids, the ids of nodes whose particles went to the P2P slab (in walk
/// order), the mixed roots, and the walk's counters. Slab *contents* are
/// re-read from the tree and particle array at replay time, so a cached
/// list never holds stale coordinates.
#[derive(Debug, Clone, Default)]
struct CachedList {
    node_ids: Vec<NodeId>,
    direct: Vec<NodeId>,
    mixed: Vec<NodeId>,
    self_in_p2p: bool,
    shared_mac_tests: u64,
    class_reject: u64,
    nodes_opened: u64,
}

impl CachedList {
    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + std::mem::size_of::<NodeId>()
                * (self.node_ids.capacity() + self.direct.capacity() + self.mixed.capacity())
    }
}

/// Default per-cache memory budget (per worker thread): stop inserting new
/// lists once this many bytes of cached ids are held. Hits keep replaying;
/// uncached leaves fall back to a fresh walk.
pub const WALK_CACHE_DEFAULT_BUDGET: usize = 64 << 20;

/// Per-worker cache of frozen interaction lists for [`gather_group_cached`],
/// keyed on leaf id and pinned to one tree *generation* — a counter the
/// caller bumps on every rebuild. Any generation change evicts everything
/// (the node ids of the old tree mean nothing in the new one).
#[derive(Debug)]
pub struct WalkCache {
    generation: u64,
    map: HashMap<NodeId, CachedList>,
    bytes: usize,
    budget: usize,
    hits: u64,
    misses: u64,
}

impl Default for WalkCache {
    fn default() -> Self {
        Self::new()
    }
}

impl WalkCache {
    pub fn new() -> Self {
        WalkCache {
            generation: 0,
            map: HashMap::new(),
            bytes: 0,
            budget: WALK_CACHE_DEFAULT_BUDGET,
            hits: 0,
            misses: 0,
        }
    }

    /// Cap the cached-id bytes (0 disables caching entirely: every gather
    /// walks fresh, which is the reference path the bitwise tests compare
    /// against).
    pub fn set_budget(&mut self, bytes: usize) {
        self.budget = bytes;
    }

    /// Pin the cache to `generation`, evicting every cached list if it
    /// differs from the current one.
    pub fn set_generation(&mut self, generation: u64) {
        if self.generation != generation {
            self.map.clear();
            self.bytes = 0;
            self.generation = generation;
        }
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes held by cached lists.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drop every cached list (the generation is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }

    /// Take and zero the hit/miss counters accumulated since the last call.
    pub fn take_stats(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.hits), std::mem::take(&mut self.misses))
    }
}

/// [`gather_group`] with interaction-list reuse across substeps of a frozen
/// tree.
///
/// The caller owns a `generation` counter that it bumps on every tree
/// rebuild; passing it here (re-)pins `cache` to the current tree, evicting
/// stale lists. The walk bucket is chosen *deterministically and
/// cache-independently*: the leaf's own cell when it still contains every
/// member's current position (the common case — under block timesteps the
/// tree is frozen across substeps and members drift only slightly), else
/// the tight bounding box as in [`gather_group`]. Because the bucket choice
/// never depends on cache state, replaying a cached list refills the slabs
/// *bitwise-identically* to re-walking — same nodes, same order, same
/// current-coordinate payloads — which is what the cache-disabled
/// equivalence proptests pin down.
///
/// Members that drifted outside their frozen leaf cell take the uncached
/// tight-bucket walk (counted as a miss, never inserted): the cell no
/// longer bounds them, so neither the cached list nor the leaf-cell bucket
/// is valid for them.
pub fn gather_group_cached(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
    cache: &mut WalkCache,
    generation: u64,
) -> usize {
    cache.set_generation(generation);
    buf.clear();
    if tree.is_empty() {
        return 0;
    }
    let members = tree.particles_under(leaf);
    if members.is_empty() {
        return 0;
    }
    let cell = &tree.node(leaf).cell;
    let in_cell = members.iter().all(|&pi| cell.contains(particles[pi as usize].pos));
    if !in_cell {
        // Drifted out of the frozen cell: fall back to the tight bucket,
        // uncached (identical to what a cache-free run would do here).
        cache.misses += 1;
        let bucket = Aabb::bounding(members.iter().map(|&pi| particles[pi as usize].pos))
            .expect("non-empty member set");
        walk_bucket(tree, particles, &bucket, Some(leaf), mac, buf, None);
        return members.len();
    }
    if let Some(list) = cache.map.get(&leaf) {
        cache.hits += 1;
        for &id in &list.node_ids {
            let n = tree.node(id);
            buf.push_node(id, n.com, n.mass);
        }
        for &d in &list.direct {
            for &pi in tree.particles_under(d) {
                buf.push_particle(&particles[pi as usize]);
            }
        }
        buf.mixed.extend_from_slice(&list.mixed);
        buf.self_in_p2p = list.self_in_p2p;
        buf.shared_mac_tests = list.shared_mac_tests;
        buf.class_reject = list.class_reject;
        buf.nodes_opened = list.nodes_opened;
        buf.pad();
        return members.len();
    }
    cache.misses += 1;
    let mut direct = Vec::new();
    walk_bucket(tree, particles, cell, Some(leaf), mac, buf, Some(&mut direct));
    if cache.bytes < cache.budget {
        let list = CachedList {
            node_ids: buf.node_ids.clone(),
            direct,
            mixed: buf.mixed.clone(),
            self_in_p2p: buf.self_in_p2p,
            shared_mac_tests: buf.shared_mac_tests,
            class_reject: buf.class_reject,
            nodes_opened: buf.nodes_opened,
        };
        cache.bytes += list.bytes();
        cache.map.insert(leaf, list);
    }
    members.len()
}

/// Walk the tree once for an *arbitrary* bucket of query targets — field
/// evaluation points that are not particles of the tree — filling `buf`
/// with the shared M2P/P2P slabs and mixed subtree roots exactly as
/// [`gather_group`] does for a leaf's members.
///
/// `bucket` must bound every target the caller will evaluate against this
/// gather (typically `Aabb::bounding` of a Morton-sorted run of query
/// points). The [`GroupMac`] bracketing contract is what makes the result
/// per-target exact for *any* bucketing: AcceptAll ⇒ every point in the
/// bucket accepts, RejectAll ⇒ every point rejects, so each target's
/// interaction set is identical to its individual walk regardless of which
/// other targets share the bucket. No target is a tree particle here, so
/// nothing is marked `self_in_p2p`; per-target self-exclusion (for query
/// points placed *at* particle positions) rides on the skip ids passed to
/// [`resolve_mixed_tails_targets`] / [`eval_gathered_targets`].
pub fn gather_group_targets(
    tree: &Tree,
    particles: &[Particle],
    bucket: &Aabb,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
) {
    buf.clear();
    if tree.is_empty() {
        return;
    }
    walk_bucket(tree, particles, bucket, None, mac, buf, None);
}

/// The classification walk shared by [`gather_group`] (bucket = a leaf's
/// members, `self_leaf = Some`), [`gather_group_targets`] (bucket = a batch
/// of query points, `self_leaf = None`), and [`gather_group_cached`] misses
/// (`record = Some`: collects the ids of nodes whose particles were pushed
/// to the P2P slab, in push order, for replay). Fills and pads `buf`.
///
/// Nodes are classified *in batch* when their parent is opened
/// ([`GroupMac::classify_batch`] — up to all 8 children per call, SIMD on
/// the concrete MACs), and consumed from the stack with their stored class.
/// Children are pushed in reverse so pops process them in forward order:
/// traversal order, slab fill order, and every counter are exactly those of
/// the one-classify-per-pop scalar walk, and the batch classifiers are
/// decision-bitwise-identical — so f64 forces are unchanged down to the
/// bit.
fn walk_bucket(
    tree: &Tree,
    particles: &[Particle],
    bucket: &Aabb,
    self_leaf: Option<NodeId>,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
    mut record: Option<&mut Vec<NodeId>>,
) {
    let mut stack = std::mem::take(&mut buf.stack);
    stack.clear();
    {
        let root = tree.node(0);
        // The class of count ≤ 1 entries is never read; Mixed is a harmless
        // placeholder.
        let class = if root.count() >= 2 {
            mac.classify(&root.cell, root.com, bucket)
        } else {
            GroupClass::Mixed
        };
        stack.push(WalkEntry::new(0, root, class));
    }
    let mut batch = NodeBatch::new();
    while let Some(e) = stack.pop() {
        if e.count == 0 {
            continue;
        }
        if e.count == 1 {
            // Same special case as the per-particle walk: singletons skip
            // the MAC and interact directly.
            let pi = tree.order[e.start as usize];
            buf.push_particle(&particles[pi as usize]);
            if let Some(rec) = record.as_deref_mut() {
                rec.push(e.id);
            }
            if Some(e.id) == self_leaf {
                buf.self_in_p2p = true;
            }
            continue;
        }
        match e.class {
            GroupClass::AcceptAll => {
                buf.shared_mac_tests += 1;
                buf.push_node(e.id, e.com, e.mass);
            }
            GroupClass::RejectAll => {
                buf.shared_mac_tests += 1;
                buf.class_reject += 1;
                if e.is_leaf {
                    for &pi in &tree.order[e.start as usize..(e.start + e.count) as usize] {
                        buf.push_particle(&particles[pi as usize]);
                    }
                    if let Some(rec) = record.as_deref_mut() {
                        rec.push(e.id);
                    }
                    if Some(e.id) == self_leaf {
                        buf.self_in_p2p = true;
                    }
                } else {
                    buf.nodes_opened += 1;
                    let node = tree.node(e.id);
                    // Pack the non-NIL children; batch-classify the
                    // non-singleton ones in one MAC call.
                    batch.clear();
                    let mut kids: [WalkEntry; 8] = [e; 8];
                    let mut nk = 0usize;
                    for &c in node.children.iter() {
                        if c == NIL {
                            continue;
                        }
                        let ch = tree.node(c);
                        if ch.count() >= 2 {
                            batch.push(&ch.cell, ch.com);
                        }
                        kids[nk] = WalkEntry::new(c, ch, GroupClass::Mixed);
                        nk += 1;
                    }
                    if !batch.is_empty() {
                        let classes = mac.classify_batch(&batch, bucket);
                        let mut bi = 0usize;
                        for k in kids[..nk].iter_mut() {
                            if k.count >= 2 {
                                k.class = classes[bi];
                                bi += 1;
                            }
                        }
                    }
                    for k in kids[..nk].iter().rev() {
                        stack.push(*k);
                    }
                }
            }
            GroupClass::Mixed => {
                buf.mixed.push(e.id);
            }
        }
    }
    buf.stack = stack;
    buf.pad();
}

/// Resolve the gathered mixed frontiers into per-member tail slabs, so the
/// evaluation phase is pure slab arithmetic.
///
/// For each (active) member this replays the exact per-particle walk from
/// every mixed root — the same walk [`eval_gathered_monopole_masked`] would
/// otherwise run per member during *evaluation* — and records the emitted
/// monopole sources (node centers of mass, leaf particles) as one SoA
/// segment per member. The member itself is excluded by the walk's
/// `skip_id`, so the segments need no id masking and evaluate with the M2P
/// kernel. Interaction sets, per-member stats, and walk order are identical
/// to the replay; only the summation grouping changes (each member's tail
/// is now summed before being added to its slab contributions).
///
/// This moves the traversal cost of the mixed frontier out of the kernel
/// phase and into the gather/walk phase where it belongs, and lets the tail
/// interactions run through the vector kernels instead of one scalar
/// evaluation per emitted interaction.
///
/// Members with `active[pi] == false` get an empty segment (their replay
/// would have been skipped anyway). Call after [`gather_group`] on the same
/// `buf`; [`gather_group`] invalidates the tails again.
pub fn resolve_mixed_tails(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
    active: Option<&[bool]>,
) {
    let members = if tree.is_empty() { &[][..] } else { tree.particles_under(leaf) };
    buf.tails.clear();
    let mixed = std::mem::take(&mut buf.mixed);
    for &pi in members {
        let start = buf.tail_x.len() as u32;
        let mut span = TailSpan { start, end: start, ..TailSpan::default() };
        let skipped = active.is_some_and(|mask| !mask[pi as usize]);
        if !skipped && !mixed.is_empty() {
            let p = &particles[pi as usize];
            for &root in &mixed {
                let st =
                    for_each_interaction_from(tree, root, particles, p.pos, Some(p.id), mac, |i| {
                        let (pos, mass) = match i {
                            Interaction::Node(id) => {
                                let n = tree.node(id);
                                (n.com, n.mass)
                            }
                            Interaction::Particle(qi) => {
                                let q = &particles[qi as usize];
                                (q.pos, q.mass)
                            }
                        };
                        buf.tail_x.push(pos.x);
                        buf.tail_y.push(pos.y);
                        buf.tail_z.push(pos.z);
                        buf.tail_m.push(mass);
                    });
                span.stats.merge(st);
            }
            span.len = buf.tail_x.len() as u32 - start;
            // Pad the segment in place with zero-mass sentinels so the next
            // segment starts on a lane boundary and the vector kernel never
            // reads a ragged tail.
            while !buf.tail_x.len().is_multiple_of(PAD_MULTIPLE) {
                buf.tail_x.push(0.0);
                buf.tail_y.push(0.0);
                buf.tail_z.push(0.0);
                buf.tail_m.push(0.0);
            }
            span.end = buf.tail_x.len() as u32;
        }
        buf.tails.push(span);
    }
    buf.mixed = mixed;
    buf.tails_ready = true;
}

/// One stack entry of the member-lane mixed replay: a node plus the set of
/// lanes (bit `l` = member lane `l`) that still descend through it.
#[derive(Clone, Copy)]
struct MultiEntry {
    id: NodeId,
    mask: u8,
}

/// Replay the mixed frontier under `root` for up to 8 members in one
/// traversal.
///
/// Per lane this makes exactly the decisions of
/// [`for_each_interaction_from`]`(tree, root, …, pts[l], Some(skips[l]),
/// mac, …)` — the same [`Mac::accept`] call on the same operands — but a
/// node shared by several members' walks is fetched and expanded once, with
/// a lane bitmask tracking who still descends. A lane that accepts a node
/// records the interaction and drops out of the subtree; the subtree is
/// opened only for the lanes that rejected. Each lane's emitted sequence is
/// its own depth-first order, so accumulating per lane and concatenating in
/// member order reproduces the scalar replay bit for bit — interactions,
/// order, and [`TraversalStats`] alike.
#[allow(clippy::too_many_arguments)] // per-lane inputs are separate slices by design
fn walk_mixed_multi(
    tree: &Tree,
    root: NodeId,
    particles: &[Particle],
    pts: &[Vec3],
    skips: &[u32],
    mac: &impl Mac,
    init_mask: u8,
    acc: &mut [Vec<[f64; 4]>],
    stats: &mut [TraversalStats; 8],
) {
    debug_assert!(pts.len() <= 8 && pts.len() == skips.len());
    if init_mask == 0 {
        return;
    }
    let mut stack: Vec<MultiEntry> = vec![MultiEntry { id: root, mask: init_mask }];
    while let Some(e) = stack.pop() {
        let node = tree.node(e.id);
        let count = node.count();
        if count == 0 {
            continue;
        }
        if count == 1 {
            let pi = tree.order[node.start as usize];
            let q = &particles[pi as usize];
            let mut m = e.mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                if q.id != skips[l] {
                    stats[l].p2p += 1;
                    acc[l].push([q.pos.x, q.pos.y, q.pos.z, q.mass]);
                }
            }
            continue;
        }
        let mut reject: u8 = 0;
        let mut m = e.mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            stats[l].mac_tests += 1;
            if mac.accept(&node.cell, node.com, pts[l]) {
                stats[l].p2n += 1;
                acc[l].push([node.com.x, node.com.y, node.com.z, node.mass]);
            } else {
                reject |= 1 << l;
            }
        }
        if reject == 0 {
            continue;
        }
        if node.is_leaf() {
            for &pi in tree.particles_under(e.id) {
                let q = &particles[pi as usize];
                let mut m = reject;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if q.id != skips[l] {
                        stats[l].p2p += 1;
                        acc[l].push([q.pos.x, q.pos.y, q.pos.z, q.mass]);
                    }
                }
            }
        } else {
            for &c in node.children.iter().rev() {
                if c != NIL {
                    stack.push(MultiEntry { id: c, mask: reject });
                }
            }
        }
    }
}

/// [`resolve_mixed_tails`] with the per-member replays fused into
/// member-lane traversals: each mixed root is walked once per ≤8-member
/// chunk instead of once per member, amortizing node fetches, stack
/// traffic, and leaf scans across the lanes.
///
/// Output contract is identical to [`resolve_mixed_tails`] — tail slab
/// contents, per-member spans, padding, and replay stats are bit-for-bit
/// the same, because every lane makes the scalar walk's exact decisions in
/// the scalar walk's exact order. The executor selects this variant on its
/// vectorized-walk path (`mac_batch`) and keeps the scalar resolve as the
/// pinned reference.
pub fn resolve_mixed_tails_lanes(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
    active: Option<&[bool]>,
) {
    let members = if tree.is_empty() { &[][..] } else { tree.particles_under(leaf) };
    buf.tails.clear();
    let mixed = std::mem::take(&mut buf.mixed);
    let mut scratch = std::mem::take(&mut buf.lane_scratch);
    scratch.resize(8, Vec::new());
    for chunk in members.chunks(8) {
        let mut pts = [Vec3::ZERO; 8];
        let mut skips = [u32::MAX; 8];
        let mut init_mask = 0u8;
        for (l, &pi) in chunk.iter().enumerate() {
            let p = &particles[pi as usize];
            pts[l] = p.pos;
            skips[l] = p.id;
            scratch[l].clear();
            let skipped = active.is_some_and(|mask| !mask[pi as usize]);
            if !skipped && !mixed.is_empty() {
                init_mask |= 1 << l;
            }
        }
        let mut stats = [TraversalStats::default(); 8];
        for &root in &mixed {
            walk_mixed_multi(
                tree,
                root,
                particles,
                &pts[..chunk.len()],
                &skips[..chunk.len()],
                mac,
                init_mask,
                &mut scratch,
                &mut stats,
            );
        }
        for (l, &pi) in chunk.iter().enumerate() {
            let start = buf.tail_x.len() as u32;
            let mut span = TailSpan { start, end: start, ..TailSpan::default() };
            let skipped = active.is_some_and(|mask| !mask[pi as usize]);
            if !skipped && !mixed.is_empty() {
                for src in &scratch[l] {
                    buf.tail_x.push(src[0]);
                    buf.tail_y.push(src[1]);
                    buf.tail_z.push(src[2]);
                    buf.tail_m.push(src[3]);
                }
                span.stats = stats[l];
                span.len = buf.tail_x.len() as u32 - start;
                while !buf.tail_x.len().is_multiple_of(PAD_MULTIPLE) {
                    buf.tail_x.push(0.0);
                    buf.tail_y.push(0.0);
                    buf.tail_z.push(0.0);
                    buf.tail_m.push(0.0);
                }
                span.end = buf.tail_x.len() as u32;
            }
            buf.tails.push(span);
        }
    }
    buf.lane_scratch = scratch;
    buf.mixed = mixed;
    buf.tails_ready = true;
}

/// A field-query target: an evaluation position plus the particle id to
/// exclude from direct interactions (`u32::MAX` = exclude nothing). The
/// skip id is how a query placed *at* a particle's position reproduces the
/// simulation's own self-excluded force on that particle.
pub type QueryTarget = (Vec3, u32);

/// [`resolve_mixed_tails`] for arbitrary query targets: replay the mixed
/// frontier gathered by [`gather_group_targets`] once per target, flattening
/// each target's unsettled interactions into a per-target SoA tail segment.
/// Targets must be the same batch (same order) later passed to
/// [`eval_gathered_targets`]; each target's skip id drives the replay's
/// self-exclusion.
pub fn resolve_mixed_tails_targets(
    tree: &Tree,
    particles: &[Particle],
    targets: &[QueryTarget],
    mac: &impl GroupMac,
    buf: &mut InteractionBuffers,
) {
    buf.tails.clear();
    let mixed = std::mem::take(&mut buf.mixed);
    for &(pos, skip) in targets {
        let start = buf.tail_x.len() as u32;
        let mut span = TailSpan { start, end: start, ..TailSpan::default() };
        if !mixed.is_empty() {
            let skip = (skip != u32::MAX).then_some(skip);
            for &root in &mixed {
                let st = for_each_interaction_from(tree, root, particles, pos, skip, mac, |i| {
                    let (src, mass) = match i {
                        Interaction::Node(id) => {
                            let n = tree.node(id);
                            (n.com, n.mass)
                        }
                        Interaction::Particle(qi) => {
                            let q = &particles[qi as usize];
                            (q.pos, q.mass)
                        }
                    };
                    buf.tail_x.push(src.x);
                    buf.tail_y.push(src.y);
                    buf.tail_z.push(src.z);
                    buf.tail_m.push(mass);
                });
                span.stats.merge(st);
            }
            span.len = buf.tail_x.len() as u32 - start;
            while !buf.tail_x.len().is_multiple_of(PAD_MULTIPLE) {
                buf.tail_x.push(0.0);
                buf.tail_y.push(0.0);
                buf.tail_z.push(0.0);
                buf.tail_m.push(0.0);
            }
            span.end = buf.tail_x.len() as u32;
        }
        buf.tails.push(span);
    }
    buf.mixed = mixed;
    buf.tails_ready = true;
}

/// Evaluate a batch of query targets against slabs gathered by
/// [`gather_group_targets`] for a bucket bounding them all.
///
/// `emit(target_ordinal, phi, accel, interactions)` is called once per
/// target, in order. Per-target results are identical (to summation-order
/// rounding; stats exactly) to the individual per-point walk
/// [`crate::accel_on`]`(tree, particles, pos, skip, mac, eps)` — the
/// group-MAC bracketing guarantees every target of the bucket agrees with
/// the shared classification, and each target's skip id masks its own
/// particle out of the near field exactly as the per-particle sweep does.
///
/// `precision` behaves as in [`eval_gathered_monopole_masked`]:
/// [`KernelPrecision::MixedF32`] requires a prior
/// [`InteractionBuffers::prepare_f32`], and the mixed frontier always runs
/// in f64 — via per-target tail slabs when [`resolve_mixed_tails_targets`]
/// has run, otherwise through the scalar per-interaction replay.
#[allow(clippy::too_many_arguments)] // mirrors eval_gathered_monopole_masked
pub fn eval_gathered_targets(
    tree: &Tree,
    particles: &[Particle],
    targets: &[QueryTarget],
    mac: &impl GroupMac,
    eps: f64,
    precision: KernelPrecision,
    buf: &InteractionBuffers,
    mut emit: impl FnMut(usize, f64, Vec3, u64),
) -> TraversalStats {
    let mut stats = TraversalStats::default();
    if tree.is_empty() {
        for (k, _) in targets.iter().enumerate() {
            emit(k, 0.0, Vec3::ZERO, 0);
        }
        return stats;
    }
    let shared_p2n = buf.node_ids.len() as u64;
    for (k, &(pos, skip)) in targets.iter().enumerate() {
        // A target's masked self-entry (skip id present in the near-field
        // slab) contributes nothing and is not an interaction; subtract it
        // so stats match the per-point walk exactly.
        let self_hits = if skip == u32::MAX {
            0
        } else {
            buf.pid.iter().filter(|&&id| id == skip).count() as u64
        };
        let mut target = TraversalStats {
            p2n: shared_p2n,
            p2p: buf.px.len() as u64 - self_hits,
            mac_tests: buf.shared_mac_tests,
        };
        let (mut acc, mut phi) = if precision == KernelPrecision::F64 {
            // Fused slab path, as in the member evaluation: one kernel call
            // covers the accepted-node slab, the id-masked near-field slab,
            // and this target's resolved tail segment.
            let tail = if buf.tails_ready {
                let span = &buf.tails[k];
                target.merge(span.stats);
                let (a, b) = (span.start as usize, span.end as usize);
                buf.count_lanes(b - a, span.len as usize);
                SlabView {
                    xs: &buf.tail_x[a..b],
                    ys: &buf.tail_y[a..b],
                    zs: &buf.tail_z[a..b],
                    ms: &buf.tail_m[a..b],
                }
            } else {
                SlabView::EMPTY
            };
            buf.count_lanes(
                buf.com_x.padded_len() + buf.px.padded_len(),
                buf.com_x.len() + buf.px.len(),
            );
            let (ax, ay, az, ph) = accel_slab_member_f64(
                pos.x,
                pos.y,
                pos.z,
                // Padding sentinels carry id u32::MAX with zero mass, so a
                // no-skip target masking u32::MAX changes nothing.
                skip,
                SlabView {
                    xs: buf.com_x.padded(),
                    ys: buf.com_y.padded(),
                    zs: buf.com_z.padded(),
                    ms: buf.node_mass.padded(),
                },
                SlabView {
                    xs: buf.px.padded(),
                    ys: buf.py.padded(),
                    zs: buf.pz.padded(),
                    ms: buf.pmass.padded(),
                },
                buf.pid.padded(),
                tail,
                eps * eps,
            );
            (Vec3::new(ax, ay, az), ph)
        } else {
            let (acc_n, phi_n) = buf.eval_m2p(pos, eps, precision);
            let (acc_p, phi_p) = buf.eval_p2p(pos, skip, eps, precision);
            let (mut acc, mut phi) = (acc_n + acc_p, phi_n + phi_p);
            if buf.tails_ready {
                let (acc_t, phi_t, st) = buf.eval_tail(k, pos, eps, precision);
                acc += acc_t;
                phi += phi_t;
                target.merge(st);
            }
            (acc, phi)
        };
        if !buf.tails_ready {
            let skip = (skip != u32::MAX).then_some(skip);
            for &root in &buf.mixed {
                let st =
                    for_each_interaction_from(tree, root, particles, pos, skip, mac, |i| match i {
                        Interaction::Node(id) => {
                            let n = tree.node(id);
                            acc += accel_kernel(pos, n.com, n.mass, eps);
                            phi += potential_kernel(pos, n.com, n.mass, eps);
                        }
                        Interaction::Particle(qi) => {
                            let q = &particles[qi as usize];
                            acc += accel_kernel(pos, q.pos, q.mass, eps);
                            phi += potential_kernel(pos, q.pos, q.mass, eps);
                        }
                    });
                target.merge(st);
            }
        }
        emit(k, phi, acc, target.interactions());
        stats.merge(target);
    }
    stats
}

/// Batched monopole M2P: acceleration and potential at `point` due to the
/// SoA source slab `(xs, ys, zs, ms)`, Plummer-softened by `eps`.
///
/// Per-interaction arithmetic is identical to [`accel_kernel`] /
/// [`potential_kernel`] (same operations, same rounding), so a grouped
/// evaluation differs from the per-particle one only in summation order.
#[inline]
pub fn accel_batch_m2p(
    point: Vec3,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    eps: f64,
) -> (Vec3, f64) {
    let eps2 = eps * eps;
    let (mut ax, mut ay, mut az, mut phi) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..xs.len() {
        let dx = xs[i] - point.x;
        let dy = ys[i] - point.y;
        let dz = zs[i] - point.z;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let m = ms[i];
        let (w, ph) = if r2 > 0.0 {
            let s = r2.sqrt();
            (m / (r2 * s), -m / s)
        } else {
            (0.0, 0.0)
        };
        ax += dx * w;
        ay += dy * w;
        az += dz * w;
        phi += ph;
    }
    (Vec3::new(ax, ay, az), phi)
}

/// Batched monopole P2P: like [`accel_batch_m2p`] but over particle sources,
/// with the entry whose id equals `target_id` masked to zero mass (the
/// grouped counterpart of the per-particle walk's `skip_id`).
#[inline]
#[allow(clippy::too_many_arguments)] // SoA slabs are separate slices by design
pub fn accel_batch_p2p(
    point: Vec3,
    target_id: u32,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    ms: &[f64],
    ids: &[u32],
    eps: f64,
) -> (Vec3, f64) {
    let eps2 = eps * eps;
    let (mut ax, mut ay, mut az, mut phi) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..xs.len() {
        let dx = xs[i] - point.x;
        let dy = ys[i] - point.y;
        let dz = zs[i] - point.z;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let m = if ids[i] == target_id { 0.0 } else { ms[i] };
        let (w, ph) = if r2 > 0.0 {
            let s = r2.sqrt();
            (m / (r2 * s), -m / s)
        } else {
            (0.0, 0.0)
        };
        ax += dx * w;
        ay += dy * w;
        az += dz * w;
        phi += ph;
    }
    (Vec3::new(ax, ay, az), phi)
}

/// Monopole potential + acceleration for every particle under `leaf`, via
/// one grouped walk. `emit(particle_index, phi, accel, interactions)` is
/// called once per member; the returned stats equal the sum of what
/// per-particle walks would have produced (`p2p`, `p2n`, and `mac_tests`
/// all match exactly).
pub fn eval_group_monopole(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    eps: f64,
    buf: &mut InteractionBuffers,
    emit: impl FnMut(u32, f64, Vec3, u64),
) -> TraversalStats {
    gather_group(tree, particles, leaf, mac, buf);
    eval_gathered_monopole(tree, particles, leaf, mac, eps, buf, emit)
}

/// The kernel half of [`eval_group_monopole`]: evaluate every member of
/// `leaf` against slabs already filled by [`gather_group`] for that same
/// leaf. Splitting the walk (gather) from the kernels (this) lets callers
/// time the two phases separately.
pub fn eval_gathered_monopole(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    eps: f64,
    buf: &InteractionBuffers,
    emit: impl FnMut(u32, f64, Vec3, u64),
) -> TraversalStats {
    eval_gathered_monopole_masked(
        tree,
        particles,
        leaf,
        mac,
        eps,
        KernelPrecision::default(),
        buf,
        None,
        emit,
    )
}

/// [`eval_gathered_monopole`] restricted to an active subset: members with
/// `active[pi] == false` are skipped entirely (no kernels, no stats, no
/// `emit`), while the shared slabs — which already contain every source,
/// active or not — are reused untouched. `active == None` evaluates every
/// member with literally the same code path, which is what makes the masked
/// and unmasked walks bit-identical on their common members.
///
/// `precision` selects the slab-kernel arithmetic (see [`KernelPrecision`]);
/// the mixed frontier always runs in f64 — via the per-member tail slabs
/// when [`resolve_mixed_tails`] has run, otherwise through the exact scalar
/// per-interaction replay. [`KernelPrecision::MixedF32`] requires the
/// caller to have run [`InteractionBuffers::prepare_f32`] after the gather.
#[allow(clippy::too_many_arguments)] // mirrors eval_gathered_monopole + mask
pub fn eval_gathered_monopole_masked(
    tree: &Tree,
    particles: &[Particle],
    leaf: NodeId,
    mac: &impl GroupMac,
    eps: f64,
    precision: KernelPrecision,
    buf: &InteractionBuffers,
    active: Option<&[bool]>,
    mut emit: impl FnMut(u32, f64, Vec3, u64),
) -> TraversalStats {
    let mut stats = TraversalStats::default();
    if tree.is_empty() {
        return stats;
    }
    let n_members = tree.particles_under(leaf).len();
    if n_members == 0 {
        return stats;
    }
    let shared_p2n = buf.node_ids.len() as u64;
    let shared_p2p = buf.px.len() as u64 - buf.self_in_p2p as u64;
    for k in 0..n_members {
        let pi = tree.particles_under(leaf)[k];
        if let Some(mask) = active {
            if !mask[pi as usize] {
                continue;
            }
        }
        let p = &particles[pi as usize];
        let mut member =
            TraversalStats { p2n: shared_p2n, p2p: shared_p2p, mac_tests: buf.shared_mac_tests };
        let (mut acc, mut phi) = if precision == KernelPrecision::F64 {
            // Fused slab path: one kernel call and one horizontal-sum
            // reduction covers the accepted-node slab, the id-masked
            // near-field slab, and — once [`resolve_mixed_tails`] has run —
            // this member's private tail segment. Per-member call overhead
            // is the dominant cost left after vectorization, so the three
            // logical evaluations share a single accumulator set.
            let tail = if buf.tails_ready {
                let span = &buf.tails[k];
                member.merge(span.stats);
                let (a, b) = (span.start as usize, span.end as usize);
                buf.count_lanes(b - a, span.len as usize);
                SlabView {
                    xs: &buf.tail_x[a..b],
                    ys: &buf.tail_y[a..b],
                    zs: &buf.tail_z[a..b],
                    ms: &buf.tail_m[a..b],
                }
            } else {
                SlabView::EMPTY
            };
            buf.count_lanes(
                buf.com_x.padded_len() + buf.px.padded_len(),
                buf.com_x.len() + buf.px.len(),
            );
            let (ax, ay, az, ph) = accel_slab_member_f64(
                p.pos.x,
                p.pos.y,
                p.pos.z,
                p.id,
                SlabView {
                    xs: buf.com_x.padded(),
                    ys: buf.com_y.padded(),
                    zs: buf.com_z.padded(),
                    ms: buf.node_mass.padded(),
                },
                SlabView {
                    xs: buf.px.padded(),
                    ys: buf.py.padded(),
                    zs: buf.pz.padded(),
                    ms: buf.pmass.padded(),
                },
                buf.pid.padded(),
                tail,
                eps * eps,
            );
            (Vec3::new(ax, ay, az), ph)
        } else {
            let (acc_n, phi_n) = buf.eval_m2p(p.pos, eps, precision);
            let (acc_p, phi_p) = buf.eval_p2p(p.pos, p.id, eps, precision);
            let (mut acc, mut phi) = (acc_n + acc_p, phi_n + phi_p);
            if buf.tails_ready {
                // Mixed frontiers were resolved into per-member tail slabs
                // at gather time ([`resolve_mixed_tails`]); evaluation is
                // pure slab arithmetic.
                let (acc_t, phi_t, st) = buf.eval_tail(k, p.pos, eps, precision);
                acc += acc_t;
                phi += phi_t;
                member.merge(st);
            }
            (acc, phi)
        };
        if !buf.tails_ready {
            for &root in &buf.mixed {
                let st =
                    for_each_interaction_from(tree, root, particles, p.pos, Some(p.id), mac, |i| {
                        match i {
                            Interaction::Node(id) => {
                                let n = tree.node(id);
                                acc += accel_kernel(p.pos, n.com, n.mass, eps);
                                phi += potential_kernel(p.pos, n.com, n.mass, eps);
                            }
                            Interaction::Particle(qi) => {
                                let q = &particles[qi as usize];
                                acc += accel_kernel(p.pos, q.pos, q.mass, eps);
                                phi += potential_kernel(p.pos, q.pos, q.mass, eps);
                            }
                        }
                    });
                member.merge(st);
            }
        }
        emit(pi, phi, acc, member.interactions());
        stats.merge(member);
    }
    stats
}

/// All leaves of `tree` in Morton (in-order) sequence — the group schedule.
/// Every particle lies under exactly one returned leaf.
pub fn leaf_schedule(tree: &Tree) -> Vec<NodeId> {
    let mut leaves = Vec::new();
    if tree.is_empty() {
        return leaves;
    }
    tree.walk(|id, _| {
        let n = tree.node(id);
        if n.is_leaf() && n.count() > 0 {
            leaves.push(id);
        }
    });
    leaves
}

/// The group schedule restricted to an active subset: leaves in Morton
/// sequence that contain at least one particle with `active[pi] == true`.
/// Leaves of only-inactive particles are never walked — their members still
/// act as sources through other groups' slabs, but cost no target work.
pub fn leaf_schedule_active(tree: &Tree, active: &[bool]) -> Vec<NodeId> {
    let mut leaves = Vec::new();
    if tree.is_empty() {
        return leaves;
    }
    tree.walk(|id, _| {
        let n = tree.node(id);
        if n.is_leaf()
            && n.count() > 0
            && tree.particles_under(id).iter().any(|&pi| active[pi as usize])
        {
            leaves.push(id);
        }
    });
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::mac::{BarnesHutMac, MinDistMac};
    use crate::traverse::{accel_on, potential_at};
    use bhut_geom::{plummer, uniform_cube, PlummerSpec};

    const EPS: f64 = 1e-4;

    fn assert_group_matches_per_particle(
        set: &bhut_geom::ParticleSet,
        mac: &(impl GroupMac + Copy),
        leaf_capacity: usize,
    ) {
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(leaf_capacity));
        let mut buf = InteractionBuffers::new();
        let mut grouped_stats = TraversalStats::default();
        let mut seen = vec![false; set.len()];
        for leaf in leaf_schedule(&tree) {
            let st = eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                mac,
                EPS,
                &mut buf,
                |pi, phi, acc, inter| {
                    let p = &set.particles[pi as usize];
                    assert!(!seen[pi as usize], "particle {pi} visited twice");
                    seen[pi as usize] = true;
                    let (phi_ref, st_phi) =
                        potential_at(&tree, &set.particles, p.pos, Some(p.id), mac, EPS);
                    let (acc_ref, _) = accel_on(&tree, &set.particles, p.pos, Some(p.id), mac, EPS);
                    assert_eq!(
                        inter,
                        st_phi.interactions(),
                        "interaction count differs for particle {pi}"
                    );
                    let tol = 1e-12;
                    assert!(
                        (phi - phi_ref).abs() <= tol * phi_ref.abs().max(1.0),
                        "phi {phi} vs {phi_ref} for particle {pi}"
                    );
                    assert!(
                        acc.dist(acc_ref) <= tol * acc_ref.norm().max(1.0),
                        "acc {acc:?} vs {acc_ref:?} for particle {pi}"
                    );
                },
            );
            grouped_stats.merge(st);
        }
        assert!(seen.iter().all(|&s| s), "leaf schedule must cover every particle");

        // Aggregate stats equal the per-particle totals field by field.
        let mut reference = TraversalStats::default();
        for p in set.iter() {
            let (_, st) = potential_at(&tree, &set.particles, p.pos, Some(p.id), mac, EPS);
            reference.merge(st);
        }
        assert_eq!(grouped_stats, reference);
    }

    #[test]
    fn grouped_matches_per_particle_uniform() {
        let set = uniform_cube(500, 1.0, 7);
        for alpha in [0.67, 1.0] {
            assert_group_matches_per_particle(&set, &BarnesHutMac::new(alpha), 8);
        }
    }

    #[test]
    fn grouped_matches_per_particle_plummer() {
        let set = plummer(PlummerSpec { n: 700, seed: 4, ..Default::default() });
        assert_group_matches_per_particle(&set, &BarnesHutMac::new(0.67), 8);
        assert_group_matches_per_particle(&set, &BarnesHutMac::new(0.67), 1);
        assert_group_matches_per_particle(&set, &BarnesHutMac::new(0.67), 32);
    }

    #[test]
    fn grouped_matches_per_particle_min_dist() {
        let set = plummer(PlummerSpec { n: 400, seed: 9, ..Default::default() });
        assert_group_matches_per_particle(&set, &MinDistMac::new(0.8), 8);
    }

    #[test]
    fn batch_kernels_match_scalar_kernels_bitwise() {
        let set = uniform_cube(64, 1.0, 11);
        let point = Vec3::new(0.31, 0.62, 0.48);
        let xs: Vec<f64> = set.iter().map(|p| p.pos.x).collect();
        let ys: Vec<f64> = set.iter().map(|p| p.pos.y).collect();
        let zs: Vec<f64> = set.iter().map(|p| p.pos.z).collect();
        let ms: Vec<f64> = set.iter().map(|p| p.mass).collect();
        let ids: Vec<u32> = set.iter().map(|p| p.id).collect();
        // Per-interaction arithmetic must agree bit-for-bit with the scalar
        // kernels when summed in the same order.
        let (acc, phi) = accel_batch_m2p(point, &xs, &ys, &zs, &ms, EPS);
        let mut acc_ref = Vec3::ZERO;
        let mut phi_ref = 0.0;
        for p in set.iter() {
            acc_ref += accel_kernel(point, p.pos, p.mass, EPS);
            phi_ref += potential_kernel(point, p.pos, p.mass, EPS);
        }
        assert_eq!(acc, acc_ref);
        assert_eq!(phi, phi_ref);
        // P2P with a masked id: equals the scalar sum that skips it.
        let skip = 17u32;
        let (acc2, phi2) = accel_batch_p2p(point, skip, &xs, &ys, &zs, &ms, &ids, EPS);
        let mut acc2_ref = Vec3::ZERO;
        let mut phi2_ref = 0.0;
        for p in set.iter().filter(|p| p.id != skip) {
            acc2_ref += accel_kernel(point, p.pos, p.mass, EPS);
            phi2_ref += potential_kernel(point, p.pos, p.mass, EPS);
        }
        assert!((acc2.dist(acc2_ref)) <= 1e-15 * acc2_ref.norm().max(1.0));
        assert!((phi2 - phi2_ref).abs() <= 1e-15 * phi2_ref.abs().max(1.0));
    }

    #[test]
    fn buffers_are_reusable() {
        let set = plummer(PlummerSpec { n: 300, seed: 2, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        let leaves = leaf_schedule(&tree);
        let mut first = Vec::new();
        for &leaf in &leaves {
            eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &mut buf,
                |pi, phi, _, _| {
                    first.push((pi, phi));
                },
            );
        }
        let mut second = Vec::new();
        for &leaf in &leaves {
            eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &mut buf,
                |pi, phi, _, _| {
                    second.push((pi, phi));
                },
            );
        }
        assert_eq!(first, second);
    }

    #[test]
    fn walk_classification_counters_are_consistent() {
        let set = plummer(PlummerSpec { n: 600, seed: 5, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        let mut total_opened = 0;
        let mut total_mixed = 0;
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            // Every shared MAC test is either an accept-all or a reject-all
            // classification; mixed nodes are charged per member instead.
            assert_eq!(buf.shared_mac_tests, buf.node_ids.len() as u64 + buf.class_reject);
            // Only reject-all classifications of internal nodes open them.
            assert!(buf.nodes_opened <= buf.class_reject);
            total_opened += buf.nodes_opened;
            total_mixed += buf.mixed.len() as u64;
        }
        // A 600-body Plummer tree at α=0.67 must both descend and hit the
        // acceptance boundary somewhere.
        assert!(total_opened > 0, "no nodes opened");
        assert!(total_mixed > 0, "no mixed frontiers");
    }

    #[test]
    fn gather_then_eval_matches_fused_eval() {
        // The split API (gather_group + eval_gathered_monopole) is what the
        // instrumented executor times; it must equal the fused call exactly.
        let set = plummer(PlummerSpec { n: 400, seed: 11, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let (mut buf_a, mut buf_b) = (InteractionBuffers::new(), InteractionBuffers::new());
        for leaf in leaf_schedule(&tree) {
            let mut fused = Vec::new();
            let st_a = eval_group_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &mut buf_a,
                |pi, phi, acc, it| fused.push((pi, phi, acc, it)),
            );
            let mut split = Vec::new();
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf_b);
            let st_b = eval_gathered_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &buf_b,
                |pi, phi, acc, it| split.push((pi, phi, acc, it)),
            );
            assert_eq!(st_a, st_b);
            assert_eq!(fused, split);
        }
    }

    #[test]
    fn resolved_tails_match_scalar_replay() {
        // Resolving the mixed frontier into per-member tail slabs re-groups
        // the tail summation (tail summed before being folded into the slab
        // partials) but keeps interaction sets, stats, and walk order
        // identical to the per-interaction scalar replay. Values therefore
        // agree to rounding, counters exactly.
        let set = plummer(PlummerSpec { n: 600, seed: 23, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let active: Vec<bool> = (0..set.len()).map(|i| i % 4 != 1).collect();
        let (mut buf_a, mut buf_b) = (InteractionBuffers::new(), InteractionBuffers::new());
        let tol = 1e-12;
        for mask in [None, Some(active.as_slice())] {
            let mut any_tail = false;
            for leaf in leaf_schedule(&tree) {
                let mut replay = Vec::new();
                gather_group(&tree, &set.particles, leaf, &mac, &mut buf_a);
                let st_a = eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &mac,
                    EPS,
                    KernelPrecision::F64,
                    &buf_a,
                    mask,
                    |pi, phi, acc, it| replay.push((pi, phi, acc, it)),
                );
                let mut resolved = Vec::new();
                gather_group(&tree, &set.particles, leaf, &mac, &mut buf_b);
                resolve_mixed_tails(&tree, &set.particles, leaf, &mac, &mut buf_b, mask);
                any_tail |= buf_b.tail_x.padded_len() > 0;
                let st_b = eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &mac,
                    EPS,
                    KernelPrecision::F64,
                    &buf_b,
                    mask,
                    |pi, phi, acc, it| resolved.push((pi, phi, acc, it)),
                );
                assert_eq!(st_a, st_b);
                assert_eq!(replay.len(), resolved.len());
                for (&(pi_a, phi_a, acc_a, it_a), &(pi_b, phi_b, acc_b, it_b)) in
                    replay.iter().zip(&resolved)
                {
                    assert_eq!(pi_a, pi_b);
                    assert_eq!(it_a, it_b, "interaction count differs for particle {pi_a}");
                    assert!(
                        (phi_a - phi_b).abs() <= tol * phi_a.abs().max(1.0),
                        "phi {phi_b} vs replay {phi_a} for particle {pi_a}"
                    );
                    assert!(
                        acc_a.dist(acc_b) <= tol * acc_a.norm().max(1.0),
                        "acc {acc_b:?} vs replay {acc_a:?} for particle {pi_a}"
                    );
                }
            }
            assert!(any_tail, "test tree produced no mixed tails to resolve");
        }
    }

    #[test]
    fn masked_eval_is_bitwise_restriction_of_full_eval() {
        // Active-set evaluation must agree bit-for-bit with the full grouped
        // walk on the active members, and touch nothing else.
        let set = plummer(PlummerSpec { n: 500, seed: 17, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        // Every third particle active.
        let active: Vec<bool> = (0..set.len()).map(|i| i % 3 == 0).collect();
        let mut buf = InteractionBuffers::new();
        let mut full: Vec<Option<(f64, Vec3, u64)>> = vec![None; set.len()];
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            eval_gathered_monopole(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                &buf,
                |pi, phi, acc, it| {
                    full[pi as usize] = Some((phi, acc, it));
                },
            );
        }
        let mut masked: Vec<Option<(f64, Vec3, u64)>> = vec![None; set.len()];
        let sched = leaf_schedule_active(&tree, &active);
        for &leaf in &sched {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            eval_gathered_monopole_masked(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                KernelPrecision::default(),
                &buf,
                Some(&active),
                |pi, phi, acc, it| {
                    masked[pi as usize] = Some((phi, acc, it));
                },
            );
        }
        for i in 0..set.len() {
            if active[i] {
                assert_eq!(masked[i], full[i], "active particle {i}");
            } else {
                assert_eq!(masked[i], None, "inactive particle {i} was evaluated");
            }
        }
        // The active schedule is exactly the leaves holding active members.
        for leaf in leaf_schedule(&tree) {
            let holds_active = tree.particles_under(leaf).iter().any(|&pi| active[pi as usize]);
            assert_eq!(sched.contains(&leaf), holds_active);
        }
        // An all-true mask reproduces the full schedule.
        assert_eq!(leaf_schedule_active(&tree, &vec![true; set.len()]), leaf_schedule(&tree));
    }

    #[test]
    fn kernel_precisions_agree_within_their_tolerances() {
        let set = plummer(PlummerSpec { n: 500, seed: 23, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            buf.prepare_f32();
            let run = |precision: KernelPrecision, buf: &InteractionBuffers| {
                let mut out: Vec<(u32, f64, Vec3, u64)> = Vec::new();
                eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &mac,
                    EPS,
                    precision,
                    buf,
                    None,
                    |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                );
                out
            };
            let scalar = run(KernelPrecision::ScalarF64, &buf);
            let simd = run(KernelPrecision::F64, &buf);
            let mixed = run(KernelPrecision::MixedF32, &buf);
            assert_eq!(scalar.len(), simd.len());
            assert_eq!(scalar.len(), mixed.len());
            for ((s, v), m) in scalar.iter().zip(&simd).zip(&mixed) {
                assert_eq!(s.0, v.0);
                assert_eq!(s.3, v.3, "interaction counts are precision-independent");
                assert_eq!(s.3, m.3);
                let tol = 1e-12;
                assert!((s.1 - v.1).abs() <= tol * s.1.abs().max(1.0), "phi f64 simd");
                assert!(s.2.dist(v.2) <= tol * s.2.norm().max(1.0), "acc f64 simd");
                // f32 lanes: single-precision noise, f64 accumulation.
                let tol32 = 1e-4;
                assert!(
                    (s.1 - m.1).abs() <= tol32 * s.1.abs().max(1.0),
                    "phi mixed {} vs {}",
                    m.1,
                    s.1
                );
                assert!(s.2.dist(m.2) <= tol32 * s.2.norm().max(1.0), "acc mixed");
            }
        }
    }

    #[test]
    #[should_panic(expected = "prepare_f32")]
    fn mixed_without_prepare_panics() {
        let set = uniform_cube(50, 1.0, 3);
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        let leaf = leaf_schedule(&tree)[0];
        gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
        eval_gathered_monopole_masked(
            &tree,
            &set.particles,
            leaf,
            &mac,
            EPS,
            KernelPrecision::MixedF32,
            &buf,
            None,
            |_, _, _, _| {},
        );
    }

    #[test]
    fn slabs_are_padded_to_lane_width() {
        let set = plummer(PlummerSpec { n: 300, seed: 6, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            for (len, padded) in
                [(buf.px.len(), buf.px.padded_len()), (buf.com_x.len(), buf.com_x.padded_len())]
            {
                assert_eq!(padded % bhut_simd::PAD_MULTIPLE, 0);
                assert!(padded >= len && padded < len + bhut_simd::PAD_MULTIPLE);
            }
            // Sentinels: zero mass, id u32::MAX.
            for &m in &buf.pmass.padded()[buf.pmass.len()..] {
                assert_eq!(m, 0.0);
            }
            for &id in &buf.pid.padded()[buf.pid.len()..] {
                assert_eq!(id, u32::MAX);
            }
        }
    }

    #[test]
    fn high_water_shrink_releases_transient_capacity() {
        let mut buf = InteractionBuffers::new();
        let blow_up = |buf: &mut InteractionBuffers, n: usize| {
            for i in 0..n {
                buf.px.push(i as f64);
                buf.py.push(0.0);
                buf.pz.push(0.0);
                buf.pmass.push(1.0);
                buf.pid.push(i as u32);
            }
        };
        // One transient dense group...
        blow_up(&mut buf, 50_000);
        buf.clear();
        buf.maybe_shrink(); // window containing the spike: capacity retained
        assert!(buf.px.capacity() >= 50_000, "in-window spike must not be dropped");
        // ...followed by a window of small fills.
        for _ in 0..4 {
            blow_up(&mut buf, 100);
            buf.clear();
        }
        let before = buf.px.capacity();
        buf.maybe_shrink();
        assert!(buf.px.capacity() < before, "stale spike capacity must be released");
        assert!(buf.px.capacity() >= 100);
        // Small buffers are left alone (below the shrink floor).
        let mut small = InteractionBuffers::new();
        blow_up(&mut small, 64);
        small.clear();
        small.maybe_shrink();
        let cap = small.px.capacity();
        blow_up(&mut small, 8);
        small.clear();
        small.maybe_shrink();
        assert_eq!(small.px.capacity(), cap, "sub-floor capacity is never shrunk");
    }

    #[test]
    fn lane_counters_reflect_padding_and_precision() {
        let set = plummer(PlummerSpec { n: 400, seed: 31, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut buf = InteractionBuffers::new();
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf);
            for precision in [KernelPrecision::ScalarF64, KernelPrecision::F64] {
                buf.take_lane_counters();
                eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &mac,
                    EPS,
                    precision,
                    &buf,
                    None,
                    |_, _, _, _| {},
                );
                let (slots, useful) = buf.take_lane_counters();
                assert!(useful > 0);
                if precision == KernelPrecision::ScalarF64 {
                    assert_eq!(slots, useful, "scalar path has no padding overhead");
                } else {
                    assert!(slots >= useful);
                    assert_eq!(slots % bhut_simd::PAD_MULTIPLE as u64, 0);
                }
            }
        }
    }

    /// Arbitrary query points, arbitrarily bucketed, must reproduce the
    /// per-point walk exactly: stats field-for-field, values to rounding —
    /// with and without tail resolution, for every precision.
    #[test]
    fn target_eval_matches_per_point_walk() {
        let set = plummer(PlummerSpec { n: 600, seed: 41, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        // Query points: offsets from particle positions (dense, so buckets
        // straddle acceptance boundaries) plus a few far-field points.
        let mut points: Vec<Vec3> =
            set.iter().take(120).map(|p| p.pos + Vec3::new(1.3e-3, -2.1e-3, 0.7e-3)).collect();
        points.push(Vec3::new(10.0, 10.0, 10.0));
        points.push(Vec3::new(-25.0, 3.0, 0.1));
        let mut buf = InteractionBuffers::new();
        for chunk in points.chunks(16) {
            let targets: Vec<QueryTarget> = chunk.iter().map(|&p| (p, u32::MAX)).collect();
            let bucket = Aabb::bounding(chunk.iter().copied()).unwrap();
            for resolve in [false, true] {
                gather_group_targets(&tree, &set.particles, &bucket, &mac, &mut buf);
                if resolve {
                    resolve_mixed_tails_targets(&tree, &set.particles, &targets, &mac, &mut buf);
                }
                buf.prepare_f32();
                for precision in
                    [KernelPrecision::ScalarF64, KernelPrecision::F64, KernelPrecision::MixedF32]
                {
                    let mut calls = 0usize;
                    eval_gathered_targets(
                        &tree,
                        &set.particles,
                        &targets,
                        &mac,
                        EPS,
                        precision,
                        &buf,
                        |k, phi, acc, it| {
                            assert_eq!(k, calls);
                            calls += 1;
                            let pos = targets[k].0;
                            let (acc_ref, st) =
                                accel_on(&tree, &set.particles, pos, None, &mac, EPS);
                            let (phi_ref, _) =
                                potential_at(&tree, &set.particles, pos, None, &mac, EPS);
                            assert_eq!(it, st.interactions(), "target {k}");
                            // MixedF32 tolerance is looser than the member
                            // sweep's 1e-4: these query points sit ~1e-3
                            // from a particle, and f32 rounding of the
                            // offset is amplified by the near-singular 1/r²
                            // there.
                            let tol =
                                if precision == KernelPrecision::MixedF32 { 2e-3 } else { 1e-12 };
                            assert!(
                                (phi - phi_ref).abs() <= tol * phi_ref.abs().max(1.0),
                                "phi {phi} vs {phi_ref}, target {k}, {precision:?}"
                            );
                            assert!(
                                acc.dist(acc_ref) <= tol * acc_ref.norm().max(1.0),
                                "acc {acc:?} vs {acc_ref:?}, target {k}, {precision:?}"
                            );
                        },
                    );
                    assert_eq!(calls, targets.len());
                }
            }
        }
    }

    /// Query targets placed at particle positions with the particle's own
    /// skip id must reproduce the simulation's member evaluation: identical
    /// stats and ≤1e-12 values — the equivalence the query service pins.
    #[test]
    fn targets_at_particle_positions_match_member_eval() {
        let set = plummer(PlummerSpec { n: 500, seed: 47, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let (mut buf_m, mut buf_t) = (InteractionBuffers::new(), InteractionBuffers::new());
        for leaf in leaf_schedule(&tree) {
            // Reference: the simulation's own grouped member evaluation.
            let mut member_out = Vec::new();
            gather_group(&tree, &set.particles, leaf, &mac, &mut buf_m);
            resolve_mixed_tails(&tree, &set.particles, leaf, &mac, &mut buf_m, None);
            eval_gathered_monopole_masked(
                &tree,
                &set.particles,
                leaf,
                &mac,
                EPS,
                KernelPrecision::F64,
                &buf_m,
                None,
                |pi, phi, acc, it| member_out.push((pi, phi, acc, it)),
            );
            // Query path: same positions as targets, same bucket geometry.
            let members = tree.particles_under(leaf);
            let targets: Vec<QueryTarget> = members
                .iter()
                .map(|&pi| {
                    let p = &set.particles[pi as usize];
                    (p.pos, p.id)
                })
                .collect();
            let bucket = Aabb::bounding(targets.iter().map(|t| t.0)).unwrap();
            gather_group_targets(&tree, &set.particles, &bucket, &mac, &mut buf_t);
            resolve_mixed_tails_targets(&tree, &set.particles, &targets, &mac, &mut buf_t);
            let mut query_out = Vec::new();
            eval_gathered_targets(
                &tree,
                &set.particles,
                &targets,
                &mac,
                EPS,
                KernelPrecision::F64,
                &buf_t,
                |k, phi, acc, it| query_out.push((members[k], phi, acc, it)),
            );
            assert_eq!(member_out.len(), query_out.len());
            for (&(pi_m, phi_m, acc_m, it_m), &(pi_q, phi_q, acc_q, it_q)) in
                member_out.iter().zip(&query_out)
            {
                assert_eq!(pi_m, pi_q);
                assert_eq!(it_m, it_q, "interaction count differs for particle {pi_m}");
                let tol = 1e-12;
                assert!(
                    (phi_m - phi_q).abs() <= tol * phi_m.abs().max(1.0),
                    "phi {phi_q} vs member {phi_m} for particle {pi_m}"
                );
                assert!(
                    acc_m.dist(acc_q) <= tol * acc_m.norm().max(1.0),
                    "acc {acc_q:?} vs member {acc_m:?} for particle {pi_m}"
                );
            }
        }
    }

    #[test]
    fn target_eval_on_empty_tree_emits_zeros() {
        let tree = build(&[], BuildParams::default());
        let mut buf = InteractionBuffers::new();
        let targets = vec![(Vec3::new(0.5, 0.5, 0.5), u32::MAX)];
        let bucket = Aabb::bounding(targets.iter().map(|t| t.0)).unwrap();
        gather_group_targets(&tree, &[], &bucket, &BarnesHutMac::new(0.67), &mut buf);
        let mut calls = 0;
        eval_gathered_targets(
            &tree,
            &[],
            &targets,
            &BarnesHutMac::new(0.67),
            EPS,
            KernelPrecision::F64,
            &buf,
            |_, phi, acc, it| {
                calls += 1;
                assert_eq!((phi, acc, it), (0.0, Vec3::ZERO, 0));
            },
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let tree = build(&[], BuildParams::default());
        let mut buf = InteractionBuffers::new();
        assert_eq!(leaf_schedule(&tree).len(), 0);

        let set = uniform_cube(1, 1.0, 1);
        let tree = build(&set.particles, BuildParams::default());
        let leaves = leaf_schedule(&tree);
        assert_eq!(leaves.len(), 1);
        let mac = BarnesHutMac::new(0.67);
        let mut calls = 0;
        let st = eval_group_monopole(
            &tree,
            &set.particles,
            leaves[0],
            &mac,
            EPS,
            &mut buf,
            |_, phi, acc, inter| {
                calls += 1;
                assert_eq!(phi, 0.0);
                assert_eq!(acc, Vec3::ZERO);
                assert_eq!(inter, 0);
            },
        );
        assert_eq!(calls, 1);
        assert_eq!(st.interactions(), 0);
    }

    /// Every observable of two gathers must match bitwise: slab contents
    /// (logical and padding), ids, counters, flags.
    fn assert_buffers_bitwise(a: &InteractionBuffers, b: &InteractionBuffers, ctx: &str) {
        assert_eq!(a.node_ids, b.node_ids, "{ctx}: node_ids");
        assert_eq!(a.com_x.padded(), b.com_x.padded(), "{ctx}: com_x");
        assert_eq!(a.com_y.padded(), b.com_y.padded(), "{ctx}: com_y");
        assert_eq!(a.com_z.padded(), b.com_z.padded(), "{ctx}: com_z");
        assert_eq!(a.node_mass.padded(), b.node_mass.padded(), "{ctx}: node_mass");
        assert_eq!(a.px.padded(), b.px.padded(), "{ctx}: px");
        assert_eq!(a.py.padded(), b.py.padded(), "{ctx}: py");
        assert_eq!(a.pz.padded(), b.pz.padded(), "{ctx}: pz");
        assert_eq!(a.pmass.padded(), b.pmass.padded(), "{ctx}: pmass");
        assert_eq!(a.pid.padded(), b.pid.padded(), "{ctx}: pid");
        assert_eq!(a.mixed, b.mixed, "{ctx}: mixed roots");
        assert_eq!(a.shared_mac_tests, b.shared_mac_tests, "{ctx}: shared_mac_tests");
        assert_eq!(a.class_reject, b.class_reject, "{ctx}: class_reject");
        assert_eq!(a.nodes_opened, b.nodes_opened, "{ctx}: nodes_opened");
        assert_eq!(a.self_in_p2p, b.self_in_p2p, "{ctx}: self_in_p2p");
    }

    /// The SIMD-batched walk must be indistinguishable from the scalar
    /// one-classify-per-pop walk: identical slabs, counters, and (therefore)
    /// bitwise-identical f64 forces. [`crate::mac_simd::ScalarClassify`]
    /// keeps the trait-default scalar classification, so comparing the two
    /// walks pins exactly the batch classifiers.
    #[test]
    fn batched_walk_is_bitwise_identical_to_scalar_classification() {
        use crate::mac_simd::ScalarClassify;
        for (seed, alpha, cap) in [(3u64, 0.67, 8), (13, 1.0, 4), (29, 0.4, 16)] {
            let set = plummer(PlummerSpec { n: 600, seed, ..Default::default() });
            let tree = build(&set.particles, BuildParams::with_leaf_capacity(cap));
            let simd_mac = BarnesHutMac::new(alpha);
            let scalar_mac = ScalarClassify(simd_mac);
            let (mut buf_a, mut buf_b) = (InteractionBuffers::new(), InteractionBuffers::new());
            for leaf in leaf_schedule(&tree) {
                gather_group(&tree, &set.particles, leaf, &simd_mac, &mut buf_a);
                gather_group(&tree, &set.particles, leaf, &scalar_mac, &mut buf_b);
                assert_buffers_bitwise(&buf_a, &buf_b, &format!("seed {seed} leaf {leaf}"));
                resolve_mixed_tails(&tree, &set.particles, leaf, &simd_mac, &mut buf_a, None);
                resolve_mixed_tails(&tree, &set.particles, leaf, &scalar_mac, &mut buf_b, None);
                let mut out_a = Vec::new();
                eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &simd_mac,
                    EPS,
                    KernelPrecision::F64,
                    &buf_a,
                    None,
                    |pi, phi, acc, it| out_a.push((pi, phi, acc, it)),
                );
                let mut out_b = Vec::new();
                eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &scalar_mac,
                    EPS,
                    KernelPrecision::F64,
                    &buf_b,
                    None,
                    |pi, phi, acc, it| out_b.push((pi, phi, acc, it)),
                );
                assert_eq!(out_a, out_b, "forces must be bitwise-identical (leaf {leaf})");
            }
        }
    }

    /// Drift positions a little between "substeps" of a frozen tree, the way
    /// block timesteps do.
    fn drift(particles: &mut [Particle], k: u64) {
        for (i, p) in particles.iter_mut().enumerate() {
            let s = 1e-4 * ((i as u64 * 37 + k * 101) % 13) as f64;
            p.pos += Vec3::new(s, -0.5 * s, 0.25 * s);
        }
    }

    /// Replaying a cached interaction list must refill the slabs
    /// bitwise-identically to re-walking the frozen tree with the same
    /// deterministic bucket — across substeps that drift the particles.
    #[test]
    fn cached_gather_replay_is_bitwise_identical_to_rewalk() {
        let set = plummer(PlummerSpec { n: 500, seed: 51, ..Default::default() });
        let mut particles = set.particles.clone();
        let tree = build(&particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut cache = WalkCache::new();
        // The reference cache never holds anything: budget 0 means every
        // gather is a fresh walk with the identical bucket choice.
        let mut no_cache = WalkCache::new();
        no_cache.set_budget(0);
        let (mut buf_a, mut buf_b) = (InteractionBuffers::new(), InteractionBuffers::new());
        let generation = 1;
        let mut hits = 0u64;
        for substep in 0..4 {
            for leaf in leaf_schedule(&tree) {
                let na = gather_group_cached(
                    &tree, &particles, leaf, &mac, &mut buf_a, &mut cache, generation,
                );
                let nb = gather_group_cached(
                    &tree,
                    &particles,
                    leaf,
                    &mac,
                    &mut buf_b,
                    &mut no_cache,
                    generation,
                );
                assert_eq!(na, nb);
                assert_buffers_bitwise(&buf_a, &buf_b, &format!("substep {substep} leaf {leaf}"));
            }
            let (h, _) = cache.take_stats();
            hits += h;
            let (h0, _) = no_cache.take_stats();
            assert_eq!(h0, 0, "a zero-budget cache can never hit");
            assert!(no_cache.is_empty() && no_cache.bytes() == 0);
            drift(&mut particles, substep as u64);
        }
        assert!(hits > 0, "frozen-tree substeps must actually replay cached lists");
    }

    #[test]
    fn generation_bump_always_evicts() {
        let set = plummer(PlummerSpec { n: 300, seed: 53, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut cache = WalkCache::new();
        let mut buf = InteractionBuffers::new();
        let leaves = leaf_schedule(&tree);
        for &leaf in &leaves {
            gather_group_cached(&tree, &set.particles, leaf, &mac, &mut buf, &mut cache, 1);
        }
        assert_eq!(cache.len(), leaves.len());
        assert!(cache.bytes() > 0);
        let (h, m) = cache.take_stats();
        assert_eq!((h, m), (0, leaves.len() as u64), "first sweep misses everywhere");
        // Same generation: all hits, nothing evicted.
        for &leaf in &leaves {
            gather_group_cached(&tree, &set.particles, leaf, &mac, &mut buf, &mut cache, 1);
        }
        let (h, m) = cache.take_stats();
        assert_eq!((h, m), (leaves.len() as u64, 0), "second sweep replays everywhere");
        // Generation bump (a rebuild): everything evicted, sweep misses.
        gather_group_cached(&tree, &set.particles, leaves[0], &mac, &mut buf, &mut cache, 2);
        assert_eq!(cache.generation(), 2);
        assert_eq!(cache.len(), 1, "old generation's lists are gone");
        let (h, m) = cache.take_stats();
        assert_eq!((h, m), (0, 1));
    }

    /// A member drifting *outside* its frozen leaf cell invalidates the
    /// leaf-cell bucket; the gather must fall back to the tight bucket
    /// (uncached) and still agree bitwise with the cache-free path.
    #[test]
    fn drifted_members_fall_back_to_tight_bucket() {
        let set = plummer(PlummerSpec { n: 400, seed: 59, ..Default::default() });
        let mut particles = set.particles.clone();
        let tree = build(&particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut cache = WalkCache::new();
        let mut buf = InteractionBuffers::new();
        let leaves = leaf_schedule(&tree);
        for &leaf in &leaves {
            gather_group_cached(&tree, &particles, leaf, &mac, &mut buf, &mut cache, 1);
        }
        cache.take_stats();
        // Throw the first member of the first leaf far away.
        let leaf = leaves[0];
        let pi = tree.particles_under(leaf)[0] as usize;
        particles[pi].pos += Vec3::new(1e3, 1e3, 1e3);
        let mut fresh = WalkCache::new();
        fresh.set_budget(0);
        let mut buf_b = InteractionBuffers::new();
        gather_group_cached(&tree, &particles, leaf, &mac, &mut buf, &mut cache, 1);
        gather_group_cached(&tree, &particles, leaf, &mac, &mut buf_b, &mut fresh, 1);
        assert_buffers_bitwise(&buf, &buf_b, "drifted leaf");
        let (h, m) = cache.take_stats();
        assert_eq!((h, m), (0, 1), "a drifted bucket is a miss, not a stale hit");
        // Other leaves still hit.
        let other = leaves[leaves.len() - 1];
        assert_ne!(other, leaf);
        gather_group_cached(&tree, &particles, other, &mac, &mut buf, &mut cache, 1);
        let (h, _) = cache.take_stats();
        assert_eq!(h, 1);
    }

    /// Filling the f32 mirrors during the gather must be indistinguishable
    /// from the two-pass `prepare_f32` conversion: identical MixedF32
    /// evaluation results on every leaf.
    #[test]
    fn fill_f32_gather_matches_prepare_f32_bitwise() {
        let set = plummer(PlummerSpec { n: 500, seed: 61, ..Default::default() });
        let tree = build(&set.particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut direct = InteractionBuffers::new();
        direct.set_fill_f32(true);
        let mut two_pass = InteractionBuffers::new();
        for leaf in leaf_schedule(&tree) {
            gather_group(&tree, &set.particles, leaf, &mac, &mut direct);
            resolve_mixed_tails(&tree, &set.particles, leaf, &mac, &mut direct, None);
            gather_group(&tree, &set.particles, leaf, &mac, &mut two_pass);
            resolve_mixed_tails(&tree, &set.particles, leaf, &mac, &mut two_pass, None);
            two_pass.prepare_f32();
            let run = |buf: &InteractionBuffers| {
                let mut out: Vec<(u32, f64, Vec3, u64)> = Vec::new();
                eval_gathered_monopole_masked(
                    &tree,
                    &set.particles,
                    leaf,
                    &mac,
                    EPS,
                    KernelPrecision::MixedF32,
                    buf,
                    None,
                    |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                );
                out
            };
            assert_eq!(run(&direct), run(&two_pass), "leaf {leaf}");
        }
        // And prepare_f32 on a fill_f32 buffer is a no-op for results.
        let leaf = leaf_schedule(&tree)[0];
        gather_group(&tree, &set.particles, leaf, &mac, &mut direct);
        let (acc_a, phi_a) =
            direct.eval_m2p(Vec3::new(0.1, 0.2, 0.3), EPS, KernelPrecision::MixedF32);
        direct.prepare_f32();
        let (acc_b, phi_b) =
            direct.eval_m2p(Vec3::new(0.1, 0.2, 0.3), EPS, KernelPrecision::MixedF32);
        assert_eq!((acc_a, phi_a), (acc_b, phi_b));
    }

    /// Deterministic sequence mirror of the executor-level proptest: any mix
    /// of rebuilds (generation bumps), substeps (drifts), and mask changes
    /// leaves cached and cache-disabled forces bitwise-identical.
    #[test]
    fn cached_eval_sequence_is_bitwise_cache_free() {
        let set = plummer(PlummerSpec { n: 400, seed: 67, ..Default::default() });
        let mut particles = set.particles.clone();
        let mut tree = build(&particles, BuildParams::with_leaf_capacity(8));
        let mac = BarnesHutMac::new(0.67);
        let mut cache = WalkCache::new();
        let mut no_cache = WalkCache::new();
        no_cache.set_budget(0);
        let (mut buf_a, mut buf_b) = (InteractionBuffers::new(), InteractionBuffers::new());
        let mut generation = 1u64;
        // r = rebuild, s = substep (drift), m = toggled mask on/off
        for (step, op) in "srsmsrmssm".chars().enumerate() {
            match op {
                'r' => {
                    tree = build(&particles, BuildParams::with_leaf_capacity(8));
                    generation += 1;
                }
                's' => drift(&mut particles, step as u64),
                _ => {}
            }
            let mask: Option<Vec<bool>> =
                (op == 'm').then(|| (0..particles.len()).map(|i| i % 3 != step % 3).collect());
            for leaf in leaf_schedule(&tree) {
                let run = |buf: &mut InteractionBuffers,
                           cache: &mut WalkCache|
                 -> Vec<(u32, f64, Vec3, u64)> {
                    gather_group_cached(&tree, &particles, leaf, &mac, buf, cache, generation);
                    resolve_mixed_tails(&tree, &particles, leaf, &mac, buf, mask.as_deref());
                    let mut out = Vec::new();
                    eval_gathered_monopole_masked(
                        &tree,
                        &particles,
                        leaf,
                        &mac,
                        EPS,
                        KernelPrecision::F64,
                        buf,
                        mask.as_deref(),
                        |pi, phi, acc, it| out.push((pi, phi, acc, it)),
                    );
                    out
                };
                let out_a = run(&mut buf_a, &mut cache);
                let out_b = run(&mut buf_b, &mut no_cache);
                assert_eq!(out_a, out_b, "step {step} op {op} leaf {leaf}");
            }
        }
        let (h, _) = cache.take_stats();
        assert!(h > 0, "the sequence must exercise actual replays");
    }

    /// The member-lane tail resolve must reproduce the scalar per-member
    /// replay bit for bit: tail slab contents, span bounds, padding, replay
    /// stats, and the final evaluated forces — across leaf capacities
    /// (chunking at 8 lanes), MAC variants, and activity masks.
    #[test]
    fn lane_resolved_tails_match_scalar_resolve_bitwise() {
        for (n, alpha, cap) in [(500, 0.6, 8), (700, 0.9, 16), (300, 0.4, 3)] {
            let set = plummer(PlummerSpec { n, seed: 11 + n as u64, ..Default::default() });
            let tree = build(&set.particles, BuildParams::with_leaf_capacity(cap));
            let mac = BarnesHutMac::new(alpha);
            let md = MinDistMac::new(alpha);
            let masks: [Option<Vec<bool>>; 2] = [None, Some((0..n).map(|i| i % 3 != 1).collect())];
            let mut buf_a = InteractionBuffers::new();
            let mut buf_b = InteractionBuffers::new();
            for mask in &masks {
                for leaf in leaf_schedule(&tree) {
                    gather_group(&tree, &set.particles, leaf, &mac, &mut buf_a);
                    resolve_mixed_tails(
                        &tree,
                        &set.particles,
                        leaf,
                        &mac,
                        &mut buf_a,
                        mask.as_deref(),
                    );
                    gather_group(&tree, &set.particles, leaf, &mac, &mut buf_b);
                    resolve_mixed_tails_lanes(
                        &tree,
                        &set.particles,
                        leaf,
                        &mac,
                        &mut buf_b,
                        mask.as_deref(),
                    );
                    let ctx = format!("n={n} alpha={alpha} cap={cap} leaf={leaf}");
                    assert_eq!(buf_a.tails.len(), buf_b.tails.len(), "{ctx}");
                    for (sa, sb) in buf_a.tails.iter().zip(&buf_b.tails) {
                        assert_eq!(
                            (sa.start, sa.end, sa.len, sa.stats),
                            (sb.start, sb.end, sb.len, sb.stats),
                            "{ctx}"
                        );
                    }
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&buf_a.tail_x), bits(&buf_b.tail_x), "{ctx}");
                    assert_eq!(bits(&buf_a.tail_y), bits(&buf_b.tail_y), "{ctx}");
                    assert_eq!(bits(&buf_a.tail_z), bits(&buf_b.tail_z), "{ctx}");
                    assert_eq!(bits(&buf_a.tail_m), bits(&buf_b.tail_m), "{ctx}");
                    let eval = |buf: &InteractionBuffers| {
                        let mut out = Vec::new();
                        eval_gathered_monopole_masked(
                            &tree,
                            &set.particles,
                            leaf,
                            &mac,
                            EPS,
                            KernelPrecision::F64,
                            buf,
                            mask.as_deref(),
                            |pi, phi, acc, it| {
                                out.push((
                                    pi,
                                    phi.to_bits(),
                                    acc.x.to_bits(),
                                    acc.y.to_bits(),
                                    acc.z.to_bits(),
                                    it,
                                ))
                            },
                        );
                        out
                    };
                    assert_eq!(eval(&buf_a), eval(&buf_b), "{ctx}");
                    // The MinDist MAC exercises a different accept geometry.
                    gather_group(&tree, &set.particles, leaf, &md, &mut buf_a);
                    resolve_mixed_tails(&tree, &set.particles, leaf, &md, &mut buf_a, None);
                    gather_group(&tree, &set.particles, leaf, &md, &mut buf_b);
                    resolve_mixed_tails_lanes(&tree, &set.particles, leaf, &md, &mut buf_b, None);
                    assert_eq!(bits(&buf_a.tail_x), bits(&buf_b.tail_x), "{ctx} mindist");
                    assert_eq!(bits(&buf_a.tail_m), bits(&buf_b.tail_m), "{ctx} mindist");
                }
            }
        }
    }
}
