//! Arena-based oct-tree storage.
//!
//! Nodes live in one flat `Vec`; children are looked up through a
//! `[NodeId; 8]` table indexed by octant (0 = absent, valid because slot 0
//! always holds the root). Every node — internal or leaf — covers a
//! contiguous range of `Tree::order`, the Morton-permuted particle index
//! array, so "the particles under node X" is always a slice. That property
//! is load-bearing for the DPDA costzones scheme, which carves the in-order
//! particle sequence at load boundaries.

use bhut_geom::{Aabb, Vec3};
use bhut_morton::NodeKey;

/// Index of a node in [`Tree::nodes`].
pub type NodeId = u32;

/// Absent-child sentinel. Slot 0 of the arena is the root, which is never
/// anybody's child, so 0 is free to mean "no child".
pub const NIL: NodeId = 0;

/// One oct-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The (cubic, axis-aligned) cell this node covers. With box collapsing
    /// this can be a strict descendant cell of the parent's octant.
    pub cell: Aabb,
    /// Warren–Salmon path key of this node (see `bhut_morton::keys`).
    pub key: NodeKey,
    /// Total mass of the subtree.
    pub mass: f64,
    /// Center of mass of the subtree.
    pub com: Vec3,
    /// Children by octant; `NIL` where the octant is empty. All-`NIL` for
    /// leaves.
    pub children: [NodeId; 8],
    /// Occupancy bitmask over `children`: bit `o` set iff octant `o` is
    /// present. Cached so `is_leaf`/`children_of` don't scan eight slots on
    /// every traversal step; keep in sync via [`Node::set_children`].
    pub child_mask: u8,
    /// Range `[start, end)` into [`Tree::order`] of the particles below this
    /// node.
    pub start: u32,
    pub end: u32,
}

impl Node {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.child_mask == 0
    }

    /// The occupancy mask implied by a child table.
    #[inline]
    pub fn mask_of(children: &[NodeId; 8]) -> u8 {
        let mut m = 0u8;
        for (o, &c) in children.iter().enumerate() {
            if c != NIL {
                m |= 1 << o;
            }
        }
        m
    }

    /// Install a child table and recompute the cached occupancy mask.
    #[inline]
    pub fn set_children(&mut self, children: [NodeId; 8]) {
        self.children = children;
        self.child_mask = Self::mask_of(&children);
    }

    /// Number of particles in the subtree.
    #[inline]
    pub fn count(&self) -> u32 {
        self.end - self.start
    }
}

/// An immutable Barnes–Hut oct-tree over a borrowed particle slice.
///
/// The tree stores particle *indices* only; traversals take the particle
/// slice as an argument so one tree can serve several derived arrays
/// (positions at different half-steps, etc.).
#[derive(Debug, Clone)]
pub struct Tree {
    /// Node arena; slot 0 is the root.
    pub nodes: Vec<Node>,
    /// Morton-permuted particle indices; each node covers a contiguous
    /// range.
    pub order: Vec<u32>,
    /// The root cell used for the build.
    pub root_cell: Aabb,
}

impl Tree {
    /// The root node.
    #[inline]
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of the present children of `id`, in octant (Z-curve) order.
    /// Drives the iteration off the cached occupancy mask instead of
    /// scanning all eight slots.
    pub fn children_of(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.node(id);
        let mut mask = n.child_mask;
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let o = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(n.children[o])
        })
    }

    /// Indices (into the original particle slice) of the particles under
    /// node `id`, in Morton order.
    #[inline]
    pub fn particles_under(&self, id: NodeId) -> &[u32] {
        let n = self.node(id);
        &self.order[n.start as usize..n.end as usize]
    }

    /// Depth of the tree (root = depth 1; empty tree = 0).
    pub fn depth(&self) -> u32 {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max = 0;
        let mut stack = vec![(0 as NodeId, 1u32)];
        while let Some((id, d)) = stack.pop() {
            max = max.max(d);
            for c in self.children_of(id) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Count of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Walk the tree depth-first in octant order, calling `f(id, level)` on
    /// every node. This is the "in-order" (left-to-right) order the DPDA
    /// load-boundary search uses — with Morton child ordering it enumerates
    /// particles along the Z-curve.
    pub fn walk(&self, mut f: impl FnMut(NodeId, u32)) {
        if self.nodes.is_empty() {
            return;
        }
        // Recursion via explicit stack; children pushed in reverse so they
        // pop in octant order.
        let mut stack = vec![(0 as NodeId, 0u32)];
        while let Some((id, level)) = stack.pop() {
            f(id, level);
            let n = self.node(id);
            for &c in n.children.iter().rev() {
                if c != NIL {
                    stack.push((c, level + 1));
                }
            }
        }
    }

    /// Find the deepest node whose cell contains `p`, starting from the
    /// root. Returns `None` for an empty tree or a point outside the root
    /// cell.
    pub fn locate(&self, p: Vec3) -> Option<NodeId> {
        if self.nodes.is_empty() || !self.root_cell.contains(p) {
            return None;
        }
        let mut id: NodeId = 0;
        loop {
            let n = self.node(id);
            if !n.cell.contains(p) {
                // box collapsing can shrink a child cell away from p
                return Some(id);
            }
            let oct = n.cell.octant_of(p);
            let c = n.children[oct];
            if c == NIL {
                return Some(id);
            }
            id = c;
        }
    }

    /// Sanity-check structural invariants; returns a description of the
    /// first violation. Used by tests and debug assertions, not hot paths.
    pub fn check_invariants(&self, particles_len: usize) -> Result<(), String> {
        if self.nodes.is_empty() {
            return if self.order.is_empty() {
                Ok(())
            } else {
                Err("empty arena but non-empty order".into())
            };
        }
        if self.order.len() != particles_len {
            return Err(format!("order len {} != particles {}", self.order.len(), particles_len));
        }
        // order is a permutation
        let mut seen = vec![false; particles_len];
        for &i in &self.order {
            let i = i as usize;
            if i >= particles_len || seen[i] {
                return Err(format!("order not a permutation at {i}"));
            }
            seen[i] = true;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![0 as NodeId];
        while let Some(id) = stack.pop() {
            if visited[id as usize] {
                return Err(format!("node {id} reached twice"));
            }
            visited[id as usize] = true;
            let n = self.node(id);
            if n.start > n.end || n.end as usize > particles_len {
                return Err(format!("node {id} bad range {}..{}", n.start, n.end));
            }
            if n.child_mask != Node::mask_of(&n.children) {
                return Err(format!(
                    "node {id}: child_mask {:#010b} disagrees with child table (expected {:#010b})",
                    n.child_mask,
                    Node::mask_of(&n.children)
                ));
            }
            if !n.is_leaf() {
                // children ranges tile the parent range in octant order
                let mut cursor = n.start;
                let mut child_total = 0;
                for &c in &n.children {
                    if c == NIL {
                        continue;
                    }
                    let ch = self.node(c);
                    if ch.start != cursor {
                        return Err(format!(
                            "node {id}: child {c} starts at {} expected {cursor}",
                            ch.start
                        ));
                    }
                    cursor = ch.end;
                    child_total += ch.count();
                    if !n.cell.contains_box(&ch.cell) {
                        return Err(format!("node {id}: child {c} cell escapes parent"));
                    }
                    stack.push(c);
                }
                if child_total != n.count() || cursor != n.end {
                    return Err(format!("node {id}: children don't tile range"));
                }
            }
            // mass/com consistency is checked by build tests against
            // particle data; here check only finiteness.
            if !n.com.is_finite() || !n.mass.is_finite() {
                return Err(format!("node {id}: non-finite mass/com"));
            }
        }
        if visited.iter().any(|&v| !v) {
            return Err("unreachable nodes in arena".into());
        }
        Ok(())
    }
}
