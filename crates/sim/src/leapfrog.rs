//! Kick-drift-kick leapfrog integration.
//!
//! The standard second-order symplectic scheme:
//!
//! ```text
//! v(t+½) = v(t)   + a(t)·dt/2      (kick)
//! x(t+1) = x(t)   + v(t+½)·dt      (drift)
//! v(t+1) = v(t+½) + a(t+1)·dt/2    (kick)
//! ```
//!
//! Symplecticity bounds the long-term energy drift, which is what makes the
//! energy-conservation diagnostics in [`crate::diagnostics`] a meaningful
//! end-to-end check of the whole force pipeline.

use bhut_geom::{Particle, Vec3};

/// Advance velocities by `a·dt` (a "kick").
pub fn kick(particles: &mut [Particle], accels: &[Vec3], dt: f64) {
    assert_eq!(particles.len(), accels.len());
    for (p, a) in particles.iter_mut().zip(accels) {
        p.vel += *a * dt;
    }
}

/// Advance positions by `v·dt` (a "drift").
pub fn drift(particles: &mut [Particle], dt: f64) {
    for p in particles.iter_mut() {
        p.pos += p.vel * dt;
    }
}

/// Kick-then-drift for a rank's *owned* slice of a distributed particle
/// set: `accels` is indexed by particle id (the canonical full-set index),
/// so a rank holding an arbitrary subset advances exactly the rows it owns.
/// With the full set in id order this reduces to `kick` + `drift`.
///
/// This is the drift-kick half-step pairing of the multi-process backend:
/// the closing kick of step `t` and the opening kick of step `t+1` are
/// fused into one `a·dt`, so per-step state stays one (position, velocity,
/// acceleration) triple per owned particle.
pub fn kick_drift_owned(owned: &mut [Particle], accels_by_id: &[Vec3], dt: f64) {
    for p in owned.iter_mut() {
        p.vel += accels_by_id[p.id as usize] * dt;
        p.pos += p.vel * dt;
    }
}

/// One full kick-drift-kick step. `forces` must return the acceleration on
/// every particle for the *current* positions; it is called once (for the
/// closing kick). The opening kick uses `accels`, the accelerations at the
/// current positions (returned by the previous step, or computed fresh for
/// the first step). Returns the accelerations at the new positions for
/// reuse.
pub fn leapfrog_step(
    particles: &mut [Particle],
    accels: &[Vec3],
    dt: f64,
    forces: impl FnOnce(&[Particle]) -> Vec<Vec3>,
) -> Vec<Vec3> {
    kick(particles, accels, dt * 0.5);
    drift(particles, dt);
    let new_accels = forces(particles);
    kick(particles, &new_accels, dt * 0.5);
    new_accels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::ParticleSet;

    /// Two-body circular orbit: m1 = m2 = ½ at distance 1, G = 1.
    /// Total mass 1 ⇒ angular velocity ω = 1, period 2π.
    fn binary() -> ParticleSet {
        let v = 0.5; // circular speed of each body about the barycenter
        ParticleSet::new(vec![
            Particle::new(0, 0.5, Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, v, 0.0)),
            Particle::new(1, 0.5, Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.0, -v, 0.0)),
        ])
    }

    fn direct_accels(particles: &[Particle]) -> Vec<Vec3> {
        bhut_tree::direct::all_accels_direct(particles, 0.0)
    }

    #[test]
    fn kick_and_drift_are_linear() {
        let mut set = binary();
        let a = vec![Vec3::new(1.0, 0.0, 0.0); 2];
        let v0 = set.particles[0].vel;
        kick(&mut set.particles, &a, 0.1);
        assert_eq!(set.particles[0].vel, v0 + Vec3::new(0.1, 0.0, 0.0));
        let p0 = set.particles[0].pos;
        drift(&mut set.particles, 2.0);
        assert_eq!(set.particles[0].pos, p0 + set.particles[0].vel * 2.0);
    }

    #[test]
    fn owned_subset_update_matches_full_kick_drift() {
        // Advancing two disjoint owned slices with id-indexed accelerations
        // must reproduce kick+drift of the full set, regardless of the order
        // the owned rows appear in.
        let set = binary();
        let accels = vec![Vec3::new(0.3, -0.1, 0.0), Vec3::new(-0.3, 0.1, 0.5)];
        let dt = 0.25;
        let mut full = set.particles.clone();
        kick(&mut full, &accels, dt);
        drift(&mut full, dt);
        // Owned slices in reversed order: accels must follow the id.
        let mut owned = vec![set.particles[1], set.particles[0]];
        kick_drift_owned(&mut owned, &accels, dt);
        assert_eq!(owned[0].pos, full[1].pos);
        assert_eq!(owned[0].vel, full[1].vel);
        assert_eq!(owned[1].pos, full[0].pos);
        assert_eq!(owned[1].vel, full[0].vel);
    }

    #[test]
    fn circular_orbit_stays_circular() {
        let mut set = binary();
        let dt = 0.01;
        let mut acc = direct_accels(&set.particles);
        for _ in 0..((2.0 * std::f64::consts::PI / dt) as usize) {
            acc = leapfrog_step(&mut set.particles, &acc, dt, direct_accels);
        }
        // After one period the bodies are back near their start.
        assert!(
            set.particles[0].pos.dist(Vec3::new(0.5, 0.0, 0.0)) < 0.02,
            "{:?}",
            set.particles[0].pos
        );
        // Radius never collapsed: separation stayed ≈ 1.
        let sep = set.particles[0].pos.dist(set.particles[1].pos);
        assert!((sep - 1.0).abs() < 0.01, "separation {sep}");
    }

    #[test]
    fn energy_is_conserved_to_second_order() {
        let energy = |s: &ParticleSet| {
            s.kinetic_energy() + bhut_tree::direct::potential_energy(&s.particles, 0.0)
        };
        let drift_for = |dt: f64| -> f64 {
            let mut set = binary();
            let e0 = energy(&set);
            let mut acc = direct_accels(&set.particles);
            let steps = (1.0 / dt) as usize;
            for _ in 0..steps {
                acc = leapfrog_step(&mut set.particles, &acc, dt, direct_accels);
            }
            (energy(&set) - e0).abs() / e0.abs()
        };
        let coarse = drift_for(0.02);
        let fine = drift_for(0.005);
        // Second order: 4× smaller dt ⇒ ≈16× less drift (allow slack).
        assert!(fine < coarse / 4.0, "coarse {coarse} fine {fine}");
        assert!(coarse < 1e-3);
    }

    #[test]
    fn momentum_is_exactly_conserved() {
        let mut set = binary();
        let mut acc = direct_accels(&set.particles);
        for _ in 0..100 {
            acc = leapfrog_step(&mut set.particles, &acc, 0.01, direct_accels);
        }
        let mom: Vec3 = set.particles.iter().map(|p| p.vel * p.mass).sum();
        assert!(mom.norm() < 1e-14);
    }
}
