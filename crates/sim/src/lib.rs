//! Time integration and simulation diagnostics (system **S8**).
//!
//! §2: "one must discretize the system over time intervals and compute the
//! forces between bodies at each snapshot." This crate supplies the
//! discretization: a kick-drift-kick **leapfrog** integrator (symplectic,
//! hence suitable for long gravitational runs), energy and momentum
//! diagnostics against the direct-summation reference, and JSON snapshot
//! I/O so long experiments are resumable and the figure data regenerable.

pub mod diagnostics;
pub mod leapfrog;
pub mod simulation;
pub mod snapshot;

pub use diagnostics::{Diagnostics, EnergyReport};
pub use leapfrog::{drift, kick, kick_drift_owned, leapfrog_step};
pub use simulation::{Simulation, SimulationConfig, StepReport};
pub use snapshot::{
    load_snapshot, save_snapshot, save_snapshot_state, write_atomically, write_positions_csv,
    write_text_atomically, Snapshot,
};
