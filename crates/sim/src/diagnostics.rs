//! Conservation diagnostics.
//!
//! Energy and momentum are the end-to-end invariants that catch errors no
//! unit test sees: a sign slip in a multipole term or a dropped interaction
//! shows up immediately as secular energy drift.

use bhut_geom::{ParticleSet, Vec3};
use bhut_tree::direct;
use serde::{Deserialize, Serialize};

/// A snapshot of the system's conserved quantities.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyReport {
    pub kinetic: f64,
    pub potential: f64,
    pub total: f64,
    pub momentum: Vec3,
    pub angular_momentum: Vec3,
}

impl EnergyReport {
    /// Exact (direct-summation) energies; `O(n²)` — intended for validation
    /// runs and tests, not hot loops.
    pub fn measure(set: &ParticleSet, eps: f64) -> EnergyReport {
        let kinetic = set.kinetic_energy();
        let potential = direct::potential_energy(&set.particles, eps);
        let momentum = set.particles.iter().map(|p| p.vel * p.mass).sum();
        let angular_momentum = set.particles.iter().map(|p| p.pos.cross(p.vel) * p.mass).sum();
        EnergyReport { kinetic, potential, total: kinetic + potential, momentum, angular_momentum }
    }

    /// Tree-based approximate energies: the potential comes from one grouped
    /// monopole sweep over a freshly built octree (`U = ½·Σ mᵢ·φᵢ`), so the
    /// cost is `O(n log n)` instead of [`EnergyReport::measure`]'s `O(n²)`.
    /// `alpha` is the opening criterion (must be positive); as `alpha → 0`
    /// every node is opened and the sweep reduces to exact pairwise
    /// summation, reproducing `measure`.
    pub fn measure_tree(set: &ParticleSet, eps: f64, alpha: f64) -> EnergyReport {
        use bhut_tree::build::{build, BuildParams};
        use bhut_tree::group::{eval_group_monopole, leaf_schedule, InteractionBuffers};
        use bhut_tree::BarnesHutMac;

        let particles = &set.particles;
        let tree = build(particles, BuildParams::default());
        let mac = BarnesHutMac::new(alpha);
        let mut buf = InteractionBuffers::default();
        let mut phi = vec![0.0f64; particles.len()];
        for leaf in leaf_schedule(&tree) {
            eval_group_monopole(&tree, particles, leaf, &mac, eps, &mut buf, |pi, p, _, _| {
                phi[pi as usize] = p;
            });
        }
        let potential = 0.5 * particles.iter().zip(&phi).map(|(p, &ph)| p.mass * ph).sum::<f64>();
        let kinetic = set.kinetic_energy();
        let momentum = set.particles.iter().map(|p| p.vel * p.mass).sum();
        let angular_momentum = set.particles.iter().map(|p| p.pos.cross(p.vel) * p.mass).sum();
        EnergyReport { kinetic, potential, total: kinetic + potential, momentum, angular_momentum }
    }

    /// Relative total-energy drift against a reference report.
    pub fn drift_from(&self, initial: &EnergyReport) -> f64 {
        (self.total - initial.total).abs() / initial.total.abs().max(f64::MIN_POSITIVE)
    }
}

/// Rolling history of energy reports over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Diagnostics {
    pub reports: Vec<(f64, EnergyReport)>,
}

impl Diagnostics {
    pub fn record(&mut self, time: f64, report: EnergyReport) {
        self.reports.push((time, report));
    }

    /// Worst relative energy drift over the whole run.
    pub fn max_drift(&self) -> f64 {
        let Some((_, first)) = self.reports.first() else { return 0.0 };
        self.reports.iter().map(|(_, r)| r.drift_from(first)).fold(0.0, f64::max)
    }

    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, Particle, PlummerSpec};

    #[test]
    fn virial_ish_plummer() {
        // A sampled Plummer sphere is near virial equilibrium:
        // 2K + U ≈ 0 (within sampling noise).
        let set = plummer(PlummerSpec { n: 8000, seed: 4, ..Default::default() });
        let e = EnergyReport::measure(&set, 0.0);
        let virial = (2.0 * e.kinetic + e.potential).abs() / e.potential.abs();
        assert!(virial < 0.1, "virial ratio residual {virial}");
        assert!(e.total < 0.0, "bound system must have negative energy");
    }

    #[test]
    fn two_body_energy() {
        let set = ParticleSet::new(vec![
            Particle::new(0, 1.0, Vec3::ZERO, Vec3::ZERO),
            Particle::new(1, 1.0, Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0)),
        ]);
        let e = EnergyReport::measure(&set, 0.0);
        assert!((e.kinetic - 0.125).abs() < 1e-12);
        assert!((e.potential + 0.5).abs() < 1e-12);
        assert!((e.total + 0.375).abs() < 1e-12);
    }

    #[test]
    fn tree_measure_with_zero_alpha_is_exact() {
        // A vanishing α opens every node: the grouped sweep degenerates to
        // pairwise summation and must agree with the direct O(n²) report.
        let set = plummer(PlummerSpec { n: 500, seed: 14, ..Default::default() });
        let exact = EnergyReport::measure(&set, 0.02);
        let tree = EnergyReport::measure_tree(&set, 0.02, 1e-6);
        let rel = (tree.potential - exact.potential).abs() / exact.potential.abs();
        assert!(rel < 1e-9, "potential relative error {rel}");
        assert_eq!(tree.kinetic, exact.kinetic);
        assert_eq!(tree.momentum, exact.momentum);
        assert_eq!(tree.angular_momentum, exact.angular_momentum);
    }

    #[test]
    fn tree_measure_approximates_at_production_alpha() {
        let set = plummer(PlummerSpec { n: 2000, seed: 15, ..Default::default() });
        let exact = EnergyReport::measure(&set, 0.02);
        let tree = EnergyReport::measure_tree(&set, 0.02, 0.67);
        let rel = (tree.potential - exact.potential).abs() / exact.potential.abs();
        assert!(rel < 5e-3, "potential relative error {rel}");
        assert!(tree.potential < 0.0);
    }

    #[test]
    fn drift_tracking() {
        let mut d = Diagnostics::default();
        let base = EnergyReport {
            kinetic: 1.0,
            potential: -3.0,
            total: -2.0,
            momentum: Vec3::ZERO,
            angular_momentum: Vec3::ZERO,
        };
        d.record(0.0, base);
        d.record(1.0, EnergyReport { total: -2.02, ..base });
        d.record(2.0, EnergyReport { total: -1.99, ..base });
        assert!((d.max_drift() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_diagnostics() {
        assert_eq!(Diagnostics::default().max_drift(), 0.0);
    }
}
