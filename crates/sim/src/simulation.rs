//! The multi-timestep simulation driver.
//!
//! Couples the shared-memory treecode executor (S7) with the leapfrog
//! integrator and the diagnostics, exposing the "input: masses, positions,
//! velocities → output: positions and velocities at each subsequent
//! time-step" contract of §5.

use crate::diagnostics::{Diagnostics, EnergyReport};
use crate::leapfrog::leapfrog_step;
use bhut_geom::{ParticleSet, Vec3};
use bhut_obs::{RungCounters, StepProfile};
use bhut_threads::{ThreadConfig, ThreadSim};
use bhut_timestep::{BlockConfig, BlockStepStats, BlockStepper, TimestepMode};
use bhut_tree::KernelPrecision;
use serde::{Deserialize, Serialize, Value};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Step length: the global dt under [`TimestepMode::Global`], and the
    /// big-step synchronization period `dt_max` under a block hierarchy
    /// (where [`BlockConfig::dt_max`] takes precedence).
    pub dt: f64,
    pub alpha: f64,
    /// Multipole degree (0 = monopole).
    pub degree: u32,
    pub eps: f64,
    pub leaf_capacity: usize,
    pub threads: usize,
    /// Record an `O(n²)` energy report every this many steps (0 = never —
    /// the default for large runs).
    pub diag_every: usize,
    /// Evaluate forces with grouped tree walks and batched kernels (the
    /// default); `false` switches back to the per-particle reference path.
    pub grouped: bool,
    /// Attach a phase-level [`StepProfile`] to every this-many-th step's
    /// report (0 = never, the default). Profiled steps pay the span/counter
    /// bookkeeping; unprofiled steps run the plain force path.
    pub profile_every: usize,
    /// Global-dt leapfrog (default) or hierarchical block timesteps (S12).
    pub timestep: TimestepMode,
    /// Arithmetic of the grouped force kernels: vectorized f64 (default),
    /// mixed f32/f64, or the exact scalar-f64 reference. Ignored when
    /// `grouped` is false — the per-particle path is always scalar f64.
    pub precision: KernelPrecision,
    /// Under [`TimestepMode::Block`], evaluate the fine-rung (masked)
    /// substeps against the tree frozen by the last synchronized substep,
    /// replaying cached per-leaf interaction lists instead of rebuilding and
    /// re-walking (Valdarnini-style list reuse). Synchronized substeps
    /// always rebuild. Off by default; no effect under
    /// [`TimestepMode::Global`].
    pub list_reuse: bool,
}

// Hand-written so `precision` defaults when absent — snapshots written
// before the SIMD kernels embed configs without the field, and the vendored
// serde derive rejects missing fields (and can't handle the enum anyway).
impl Serialize for SimulationConfig {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("dt".to_string(), self.dt.to_value()),
            ("alpha".to_string(), self.alpha.to_value()),
            ("degree".to_string(), self.degree.to_value()),
            ("eps".to_string(), self.eps.to_value()),
            ("leaf_capacity".to_string(), self.leaf_capacity.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("diag_every".to_string(), self.diag_every.to_value()),
            ("grouped".to_string(), self.grouped.to_value()),
            ("profile_every".to_string(), self.profile_every.to_value()),
            ("timestep".to_string(), self.timestep.to_value()),
            ("precision".to_string(), Value::Str(self.precision.as_str().to_string())),
            ("list_reuse".to_string(), self.list_reuse.to_value()),
        ])
    }
}

impl Deserialize for SimulationConfig {
    fn from_value(v: &Value) -> Result<Self, String> {
        fn req<T: Deserialize>(v: &Value, name: &str) -> Result<T, String> {
            T::from_value(
                v.get_field(name)
                    .ok_or_else(|| format!("missing field `{name}` in SimulationConfig"))?,
            )
        }
        let precision = match v.get_field("precision") {
            Some(x) => KernelPrecision::parse(&String::from_value(x)?)?,
            None => KernelPrecision::default(),
        };
        // Absent in configs written before interaction-list reuse existed.
        let list_reuse = match v.get_field("list_reuse") {
            Some(x) => bool::from_value(x)?,
            None => false,
        };
        Ok(SimulationConfig {
            dt: req(v, "dt")?,
            alpha: req(v, "alpha")?,
            degree: req(v, "degree")?,
            eps: req(v, "eps")?,
            leaf_capacity: req(v, "leaf_capacity")?,
            threads: req(v, "threads")?,
            diag_every: req(v, "diag_every")?,
            grouped: req(v, "grouped")?,
            profile_every: req(v, "profile_every")?,
            timestep: req(v, "timestep")?,
            precision,
            list_reuse,
        })
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            dt: 1e-3,
            alpha: 0.67,
            degree: 0,
            eps: 1e-4,
            leaf_capacity: 8,
            threads: 1,
            diag_every: 0,
            grouped: true,
            profile_every: 0,
            timestep: TimestepMode::Global,
            precision: KernelPrecision::default(),
            list_reuse: false,
        }
    }
}

/// Per-step summary.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    pub step: usize,
    pub time: f64,
    pub interactions: u64,
    pub imbalance: f64,
    /// Force-evaluation substeps inside this step (1 on the global path;
    /// the number of distinct tick boundaries on the block path).
    pub substeps: u64,
    /// Per-particle force evaluations this step (n on the global path; the
    /// sum over active sets on the block path — the work the hierarchy
    /// saved shows up as this number dropping below `substeps · n`).
    pub force_evals: u64,
    /// Phase timings and work counters for this step's force evaluation.
    /// `Some` only on steps selected by [`SimulationConfig::profile_every`].
    pub profile: Option<StepProfile>,
}

/// An in-flight n-body simulation.
pub struct Simulation {
    pub config: SimulationConfig,
    pub particles: ParticleSet,
    pub time: f64,
    pub step_count: usize,
    pub diagnostics: Diagnostics,
    executor: ThreadSim,
    accels: Option<Vec<Vec3>>,
    /// Rung state carried across big steps ([`TimestepMode::Block`] only).
    stepper: Option<BlockStepper>,
    /// The most recent big step's scheduler statistics.
    pub last_block_stats: Option<BlockStepStats>,
}

impl Simulation {
    pub fn new(particles: ParticleSet, config: SimulationConfig) -> Self {
        let executor = ThreadSim::new(ThreadConfig {
            threads: config.threads.max(1),
            alpha: config.alpha,
            degree: config.degree,
            eps: config.eps,
            leaf_capacity: config.leaf_capacity,
            partitioning: bhut_threads::Partitioning::MortonZones,
            eval_mode: if config.grouped {
                bhut_threads::EvalMode::Grouped
            } else {
                bhut_threads::EvalMode::PerParticle
            },
            precision: config.precision,
            mac_batch: true,
            list_reuse: config.list_reuse,
        });
        Simulation {
            config,
            particles,
            time: 0.0,
            step_count: 0,
            diagnostics: Diagnostics::default(),
            executor,
            accels: None,
            stepper: None,
            last_block_stats: None,
        }
    }

    /// Advance one step — a single leapfrog step under
    /// [`TimestepMode::Global`], one synchronized big step (several
    /// substeps) under [`TimestepMode::Block`]. Returns the step summary.
    pub fn step(&mut self) -> StepReport {
        if self.config.diag_every > 0 && self.step_count == 0 {
            self.diagnostics
                .record(self.time, EnergyReport::measure(&self.particles, self.config.eps));
        }
        let report = match self.config.timestep {
            TimestepMode::Global => self.step_global(),
            TimestepMode::Block(bcfg) => self.step_block(bcfg),
        };
        if self.config.diag_every > 0 && self.step_count.is_multiple_of(self.config.diag_every) {
            self.diagnostics
                .record(self.time, EnergyReport::measure(&self.particles, self.config.eps));
        }
        report
    }

    fn step_global(&mut self) -> StepReport {
        let accels = match self.accels.take() {
            Some(a) => a,
            None => self.executor.compute_forces(&self.particles.particles).accels,
        };
        let profiled = self.config.profile_every > 0
            && (self.step_count + 1).is_multiple_of(self.config.profile_every);
        let mut interactions = 0;
        let mut imbalance = 1.0;
        let mut profile = None;
        let executor = &mut self.executor;
        let new_accels =
            leapfrog_step(&mut self.particles.particles, &accels, self.config.dt, |ps| {
                let mut out = if profiled {
                    executor.compute_forces_profiled(ps)
                } else {
                    executor.compute_forces(ps)
                };
                interactions = out.stats.interactions();
                imbalance = out.imbalance();
                profile = out.profile.take();
                out.accels
            });
        self.accels = Some(new_accels);
        self.time += self.config.dt;
        self.step_count += 1;
        if let Some(p) = profile.as_mut() {
            p.step = self.step_count as u64;
        }
        StepReport {
            step: self.step_count,
            time: self.time,
            interactions,
            imbalance,
            substeps: 1,
            force_evals: self.particles.len() as u64,
            profile,
        }
    }

    fn step_block(&mut self, bcfg: BlockConfig) -> StepReport {
        let profiled = self.config.profile_every > 0
            && (self.step_count + 1).is_multiple_of(self.config.profile_every);
        let stepper = self.stepper.get_or_insert_with(|| BlockStepper::new(bcfg));
        let executor = &mut self.executor;
        let list_reuse = self.config.list_reuse;
        let mut interactions = 0u64;
        let mut imbalance = 1.0;
        let mut profile = None;
        let (mut list_hits, mut list_misses, mut list_bytes) = (0u64, 0u64, 0u64);
        let stats = stepper.big_step(&mut self.particles.particles, |ps, active| {
            // The final substep of every big step is fully synchronized
            // (every rung completes at the last tick), so it takes the
            // unmasked path and is the one we profile. Synchronized substeps
            // always rebuild; masked fine-rung substeps replay the frozen
            // tree's cached interaction lists under `list_reuse`.
            let mut out = if active.is_full() {
                executor.compute_forces_substep(ps, active, profiled, false)
            } else {
                let mut o =
                    executor.compute_forces_substep(ps, active, profiled && list_reuse, list_reuse);
                // Harvest the reuse counters here — the final profile comes
                // from the synchronized substep, which never replays.
                if let Some(p) = o.profile.take() {
                    list_hits += p.totals.list_hits;
                    list_misses += p.totals.list_misses;
                    list_bytes = list_bytes.max(p.totals.list_bytes);
                }
                o
            };
            interactions += out.stats.interactions();
            imbalance = out.imbalance();
            if out.profile.is_some() {
                profile = out.profile.take();
            }
            out.accels
        });
        self.time += bcfg.dt_max;
        self.step_count += 1;
        let force_evals = stats.force_evals;
        let substeps = stats.substeps;
        if let Some(p) = profile.as_mut() {
            p.step = self.step_count as u64;
            p.totals.list_hits += list_hits;
            p.totals.list_misses += list_misses;
            p.totals.list_bytes = p.totals.list_bytes.max(list_bytes);
            p.rungs = (0..=bcfg.max_rung as usize)
                .map(|r| RungCounters {
                    rung: r as u32,
                    population: stats.population[r],
                    force_evals: stats.forces_per_rung[r],
                })
                .collect();
            p.rung_migrations = stats.promotions + stats.demotions;
        }
        self.last_block_stats = Some(stats);
        StepReport {
            step: self.step_count,
            time: self.time,
            interactions,
            imbalance,
            substeps,
            force_evals,
            profile,
        }
    }

    /// Per-particle rungs, if the block-timestep path has run (index =
    /// particle position; `None` under [`TimestepMode::Global`]).
    pub fn rungs(&self) -> Option<&[u32]> {
        self.stepper.as_ref().map(|s| s.rungs())
    }

    /// Capture the full simulation state for [`crate::snapshot`] I/O:
    /// particles and clock, plus the rung assignment and configuration
    /// needed to resume a block-timestep run faithfully.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        crate::snapshot::Snapshot {
            time: self.time,
            particles: self.particles.clone(),
            rungs: self.stepper.as_ref().map(|s| s.rungs().to_vec()),
            config: Some(self.config),
        }
    }

    /// Rebuild a simulation from a snapshot. The embedded config is used
    /// when present (defaults otherwise); saved rungs re-seed the block
    /// stepper so the resumed run continues on the same hierarchy.
    pub fn from_snapshot(snap: crate::snapshot::Snapshot) -> Simulation {
        let config = snap.config.unwrap_or_default();
        let mut sim = Simulation::new(snap.particles, config);
        sim.time = snap.time;
        if let (TimestepMode::Block(bcfg), Some(rungs)) = (config.timestep, snap.rungs) {
            let mut stepper = BlockStepper::new(bcfg);
            stepper.restore_rungs(rungs);
            sim.stepper = Some(stepper);
        }
        sim
    }

    /// Advance `n` steps; returns the last step's summary.
    pub fn run(&mut self, n: usize) -> StepReport {
        let mut last = StepReport::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }

    /// The octree the executor would walk for the current particle state —
    /// the exact same construction path (parallel in-cell build when
    /// threaded) as a force evaluation, for inspection and testing.
    pub fn build_tree(&self) -> bhut_tree::Tree {
        self.executor.build_tree(&self.particles.particles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, PlummerSpec};

    #[test]
    fn plummer_short_run_conserves_energy() {
        let set = plummer(PlummerSpec { n: 400, seed: 6, ..Default::default() });
        let cfg = SimulationConfig {
            dt: 2e-3,
            alpha: 0.4,
            eps: 0.02,
            diag_every: 10,
            threads: 2,
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        sim.run(50);
        assert_eq!(sim.step_count, 50);
        assert!((sim.time - 0.1).abs() < 1e-12);
        let drift = sim.diagnostics.max_drift();
        assert!(drift < 5e-3, "energy drift {drift}");
    }

    #[test]
    fn step_reports_carry_work_counters() {
        let set = plummer(PlummerSpec { n: 300, seed: 7, ..Default::default() });
        let mut sim = Simulation::new(set, SimulationConfig::default());
        let r = sim.step();
        assert_eq!(r.step, 1);
        assert!(r.interactions > 0);
        assert!(r.imbalance >= 1.0);
    }

    #[test]
    fn profiled_steps_attach_a_matching_profile() {
        let set = plummer(PlummerSpec { n: 300, seed: 9, ..Default::default() });
        let cfg = SimulationConfig { threads: 2, profile_every: 2, ..Default::default() };
        let mut sim = Simulation::new(set, cfg);
        let r1 = sim.step();
        assert!(r1.profile.is_none(), "step 1 is not a multiple of profile_every");
        let r2 = sim.step();
        let profile = r2.profile.expect("step 2 is profiled");
        assert_eq!(profile.step, 2);
        assert_eq!(profile.threads, 2);
        // the report's scalar summaries are the profile's
        assert_eq!(profile.totals.interactions(), r2.interactions);
        assert!(
            (profile.imbalance() - r2.imbalance).abs() < 1e-12,
            "profile imbalance {} vs report {}",
            profile.imbalance(),
            r2.imbalance
        );
        let back = bhut_obs::StepProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn profiling_does_not_change_the_trajectory() {
        let set = plummer(PlummerSpec { n: 200, seed: 11, ..Default::default() });
        let plain = SimulationConfig { threads: 2, ..Default::default() };
        let traced = SimulationConfig { threads: 2, profile_every: 1, ..plain };
        let mut a = Simulation::new(set.clone(), plain);
        let mut b = Simulation::new(set, traced);
        a.run(3);
        b.run(3);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }

    #[test]
    fn build_tree_covers_all_particles() {
        let set = plummer(PlummerSpec { n: 250, seed: 12, ..Default::default() });
        let n = set.len();
        let sim = Simulation::new(set, SimulationConfig { threads: 4, ..Default::default() });
        let tree = sim.build_tree();
        assert_eq!(tree.order.len(), n);
    }

    #[test]
    fn rung0_block_path_is_bitwise_global_leapfrog() {
        // With the hierarchy pinned to a single rung the block scheduler
        // must reproduce the global-dt leapfrog exactly — same kicks, same
        // drifts, same force evaluations, bit for bit.
        let set = plummer(PlummerSpec { n: 300, seed: 17, ..Default::default() });
        let dt = 2e-3;
        let global = SimulationConfig { dt, threads: 2, ..Default::default() };
        let block = SimulationConfig {
            timestep: TimestepMode::Block(BlockConfig {
                dt_max: dt,
                max_rung: 0,
                eta: 0.1,
                eps: 1e-4,
            }),
            ..global
        };
        let mut a = Simulation::new(set.clone(), global);
        let mut b = Simulation::new(set, block);
        a.run(8);
        b.run(8);
        assert_eq!(a.time, b.time);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos, "positions diverged");
            assert_eq!(x.vel, y.vel, "velocities diverged");
        }
    }

    #[test]
    fn block_mode_reports_rungs_and_substeps() {
        let set = plummer(PlummerSpec { n: 400, seed: 18, ..Default::default() });
        let bcfg = BlockConfig { dt_max: 0.02, max_rung: 3, eta: 0.05, eps: 0.02 };
        let cfg = SimulationConfig {
            eps: 0.02,
            timestep: TimestepMode::Block(bcfg),
            profile_every: 1,
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        let r = sim.step();
        assert!(r.substeps >= 1 && r.substeps <= bcfg.ticks());
        assert!(r.force_evals > 0);
        let stats = sim.last_block_stats.as_ref().expect("block stats recorded");
        assert_eq!(stats.substeps, r.substeps);
        let rungs = sim.rungs().expect("rungs assigned");
        assert_eq!(rungs.len(), sim.particles.len());
        // A clustered Plummer model spreads over several rungs at this eta.
        let populated = stats.population.iter().filter(|&&p| p > 0).count();
        assert!(populated >= 2, "populations {:?}", stats.population);
        let profile = r.profile.expect("profiled step");
        assert_eq!(profile.rungs.len(), bcfg.max_rung as usize + 1);
        let pop_total: u64 = profile.rungs.iter().map(|rc| rc.population).sum();
        assert_eq!(pop_total, sim.particles.len() as u64);
        let evals_total: u64 = profile.rungs.iter().map(|rc| rc.force_evals).sum();
        assert_eq!(evals_total, r.force_evals);
    }

    #[test]
    fn block_mode_conserves_energy() {
        let set = plummer(PlummerSpec { n: 400, seed: 19, ..Default::default() });
        let cfg = SimulationConfig {
            alpha: 0.4,
            eps: 0.02,
            diag_every: 5,
            threads: 2,
            timestep: TimestepMode::Block(BlockConfig {
                dt_max: 8e-3,
                max_rung: 3,
                eta: 0.05,
                eps: 0.02,
            }),
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        sim.run(15);
        let drift = sim.diagnostics.max_drift();
        assert!(drift < 5e-3, "energy drift {drift}");
    }

    #[test]
    fn snapshot_resume_preserves_the_hierarchy() {
        let set = plummer(PlummerSpec { n: 200, seed: 20, ..Default::default() });
        let cfg = SimulationConfig {
            eps: 0.02,
            timestep: TimestepMode::Block(BlockConfig {
                dt_max: 0.01,
                max_rung: 2,
                eta: 0.05,
                eps: 0.02,
            }),
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        sim.run(3);
        let snap = sim.snapshot();
        assert!(snap.rungs.is_some());
        let resumed = Simulation::from_snapshot(snap.clone());
        assert_eq!(resumed.time, sim.time);
        assert_eq!(resumed.config.timestep, cfg.timestep);
        assert_eq!(resumed.rungs().unwrap(), sim.rungs().unwrap());
    }

    #[test]
    fn config_json_roundtrips_precision() {
        for precision in
            [KernelPrecision::F64, KernelPrecision::MixedF32, KernelPrecision::ScalarF64]
        {
            let cfg = SimulationConfig { precision, threads: 3, ..Default::default() };
            let back = SimulationConfig::from_value(&cfg.to_value()).unwrap();
            assert_eq!(back.precision, precision);
            assert_eq!(back.threads, 3);
            assert_eq!(back.timestep, cfg.timestep);
        }
    }

    #[test]
    fn config_json_roundtrips_list_reuse() {
        let cfg = SimulationConfig { list_reuse: true, ..Default::default() };
        let back = SimulationConfig::from_value(&cfg.to_value()).unwrap();
        assert!(back.list_reuse);
        // Configs written before the field existed default it off.
        let mut v = SimulationConfig::default().to_value();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "list_reuse");
        }
        let cfg = SimulationConfig::from_value(&v).unwrap();
        assert!(!cfg.list_reuse);
    }

    #[test]
    fn list_reuse_block_run_replays_and_conserves_energy() {
        let set = plummer(PlummerSpec { n: 400, seed: 25, ..Default::default() });
        let cfg = SimulationConfig {
            alpha: 0.4,
            eps: 0.02,
            diag_every: 5,
            threads: 2,
            profile_every: 1,
            list_reuse: true,
            timestep: TimestepMode::Block(BlockConfig {
                dt_max: 8e-3,
                max_rung: 3,
                eta: 0.05,
                eps: 0.02,
            }),
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        let mut hits = 0u64;
        let mut substeps = 0u64;
        for _ in 0..15 {
            let r = sim.step();
            substeps += r.substeps;
            if let Some(p) = &r.profile {
                hits += p.totals.list_hits;
            }
        }
        assert!(substeps > 15, "the hierarchy must actually produce fine-rung substeps");
        assert!(hits > 0, "fine-rung substeps must replay cached interaction lists");
        let drift = sim.diagnostics.max_drift();
        assert!(drift < 5e-3, "energy drift {drift}");
    }

    #[test]
    fn list_reuse_off_leaves_the_block_trajectory_bitwise_unchanged() {
        // The default (no reuse) block path must be byte-for-byte what it
        // was before the feature existed: every substep rebuilds.
        let set = plummer(PlummerSpec { n: 300, seed: 26, ..Default::default() });
        let bcfg = BlockConfig { dt_max: 8e-3, max_rung: 2, eta: 0.05, eps: 0.02 };
        let cfg = SimulationConfig {
            eps: 0.02,
            timestep: TimestepMode::Block(bcfg),
            ..Default::default()
        };
        let mut a = Simulation::new(set.clone(), cfg);
        let mut b = Simulation::new(set, SimulationConfig { profile_every: 1, ..cfg });
        a.run(5);
        b.run(5);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }

    #[test]
    fn legacy_config_without_precision_defaults_to_f64() {
        // Snapshots written before the SIMD kernels embed a config with no
        // `precision` key; they must keep loading with the f64 default.
        let mut v = SimulationConfig::default().to_value();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "precision");
        }
        let cfg = SimulationConfig::from_value(&v).unwrap();
        assert_eq!(cfg.precision, KernelPrecision::F64);
        // But an unknown precision string is an error, not a silent default.
        if let Value::Obj(fields) = &mut v {
            fields.push(("precision".to_string(), Value::Str("f16".to_string())));
        }
        assert!(SimulationConfig::from_value(&v).is_err());
    }

    #[test]
    fn precision_threads_through_the_driver() {
        // Scalar and vectorized f64 agree to tight tolerance over a few
        // steps; mixed f32 stays within its lane-roundoff envelope.
        let set = plummer(PlummerSpec { n: 250, seed: 21, ..Default::default() });
        let base = SimulationConfig { eps: 0.02, threads: 2, ..Default::default() };
        let mut runs = [
            Simulation::new(
                set.clone(),
                SimulationConfig { precision: KernelPrecision::ScalarF64, ..base },
            ),
            Simulation::new(
                set.clone(),
                SimulationConfig { precision: KernelPrecision::F64, ..base },
            ),
            Simulation::new(set, SimulationConfig { precision: KernelPrecision::MixedF32, ..base }),
        ];
        for sim in runs.iter_mut() {
            sim.run(3);
        }
        let [scalar, vec64, mixed] = runs;
        for (a, b) in scalar.particles.iter().zip(vec64.particles.iter()) {
            assert!(a.pos.dist(b.pos) < 1e-10 * (1.0 + b.pos.norm()), "f64 SIMD diverged");
        }
        for (a, b) in scalar.particles.iter().zip(mixed.particles.iter()) {
            assert!(a.pos.dist(b.pos) < 1e-3 * (1.0 + b.pos.norm()), "mixed f32 diverged");
        }
    }

    #[test]
    fn accels_are_reused_across_steps() {
        // The closing kick's accelerations serve as the next opening kick's:
        // two steps must equal one step done twice with fresh state only up
        // to the first force evaluation. Here we just check determinism.
        let set = plummer(PlummerSpec { n: 200, seed: 8, ..Default::default() });
        let mut a = Simulation::new(set.clone(), SimulationConfig::default());
        let mut b = Simulation::new(set, SimulationConfig::default());
        a.run(3);
        b.run(3);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }
}
