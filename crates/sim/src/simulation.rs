//! The multi-timestep simulation driver.
//!
//! Couples the shared-memory treecode executor (S7) with the leapfrog
//! integrator and the diagnostics, exposing the "input: masses, positions,
//! velocities → output: positions and velocities at each subsequent
//! time-step" contract of §5.

use crate::diagnostics::{Diagnostics, EnergyReport};
use crate::leapfrog::leapfrog_step;
use bhut_geom::{ParticleSet, Vec3};
use bhut_threads::{ThreadConfig, ThreadSim};
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimulationConfig {
    pub dt: f64,
    pub alpha: f64,
    /// Multipole degree (0 = monopole).
    pub degree: u32,
    pub eps: f64,
    pub leaf_capacity: usize,
    pub threads: usize,
    /// Record an `O(n²)` energy report every this many steps (0 = never —
    /// the default for large runs).
    pub diag_every: usize,
    /// Evaluate forces with grouped tree walks and batched kernels (the
    /// default); `false` switches back to the per-particle reference path.
    pub grouped: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            dt: 1e-3,
            alpha: 0.67,
            degree: 0,
            eps: 1e-4,
            leaf_capacity: 8,
            threads: 1,
            diag_every: 0,
            grouped: true,
        }
    }
}

/// Per-step summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepReport {
    pub step: usize,
    pub time: f64,
    pub interactions: u64,
    pub imbalance: f64,
}

/// An in-flight n-body simulation.
pub struct Simulation {
    pub config: SimulationConfig,
    pub particles: ParticleSet,
    pub time: f64,
    pub step_count: usize,
    pub diagnostics: Diagnostics,
    executor: ThreadSim,
    accels: Option<Vec<Vec3>>,
}

impl Simulation {
    pub fn new(particles: ParticleSet, config: SimulationConfig) -> Self {
        let executor = ThreadSim::new(ThreadConfig {
            threads: config.threads.max(1),
            alpha: config.alpha,
            degree: config.degree,
            eps: config.eps,
            leaf_capacity: config.leaf_capacity,
            partitioning: bhut_threads::Partitioning::MortonZones,
            eval_mode: if config.grouped {
                bhut_threads::EvalMode::Grouped
            } else {
                bhut_threads::EvalMode::PerParticle
            },
        });
        Simulation {
            config,
            particles,
            time: 0.0,
            step_count: 0,
            diagnostics: Diagnostics::default(),
            executor,
            accels: None,
        }
    }

    /// Advance one leapfrog step; returns the step summary.
    pub fn step(&mut self) -> StepReport {
        if self.config.diag_every > 0 && self.step_count == 0 {
            self.diagnostics
                .record(self.time, EnergyReport::measure(&self.particles, self.config.eps));
        }
        let accels = match self.accels.take() {
            Some(a) => a,
            None => self.executor.compute_forces(&self.particles.particles).accels,
        };
        let mut interactions = 0;
        let mut imbalance = 1.0;
        let executor = &mut self.executor;
        let new_accels =
            leapfrog_step(&mut self.particles.particles, &accels, self.config.dt, |ps| {
                let out = executor.compute_forces(ps);
                interactions = out.stats.interactions();
                imbalance = out.imbalance();
                out.accels
            });
        self.accels = Some(new_accels);
        self.time += self.config.dt;
        self.step_count += 1;
        if self.config.diag_every > 0 && self.step_count.is_multiple_of(self.config.diag_every) {
            self.diagnostics
                .record(self.time, EnergyReport::measure(&self.particles, self.config.eps));
        }
        StepReport { step: self.step_count, time: self.time, interactions, imbalance }
    }

    /// Advance `n` steps; returns the last step's summary.
    pub fn run(&mut self, n: usize) -> StepReport {
        let mut last = StepReport::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, PlummerSpec};

    #[test]
    fn plummer_short_run_conserves_energy() {
        let set = plummer(PlummerSpec { n: 400, seed: 6, ..Default::default() });
        let cfg = SimulationConfig {
            dt: 2e-3,
            alpha: 0.4,
            eps: 0.02,
            diag_every: 10,
            threads: 2,
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        sim.run(50);
        assert_eq!(sim.step_count, 50);
        assert!((sim.time - 0.1).abs() < 1e-12);
        let drift = sim.diagnostics.max_drift();
        assert!(drift < 5e-3, "energy drift {drift}");
    }

    #[test]
    fn step_reports_carry_work_counters() {
        let set = plummer(PlummerSpec { n: 300, seed: 7, ..Default::default() });
        let mut sim = Simulation::new(set, SimulationConfig::default());
        let r = sim.step();
        assert_eq!(r.step, 1);
        assert!(r.interactions > 0);
        assert!(r.imbalance >= 1.0);
    }

    #[test]
    fn accels_are_reused_across_steps() {
        // The closing kick's accelerations serve as the next opening kick's:
        // two steps must equal one step done twice with fresh state only up
        // to the first force evaluation. Here we just check determinism.
        let set = plummer(PlummerSpec { n: 200, seed: 8, ..Default::default() });
        let mut a = Simulation::new(set.clone(), SimulationConfig::default());
        let mut b = Simulation::new(set, SimulationConfig::default());
        a.run(3);
        b.run(3);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }
}
