//! The multi-timestep simulation driver.
//!
//! Couples the shared-memory treecode executor (S7) with the leapfrog
//! integrator and the diagnostics, exposing the "input: masses, positions,
//! velocities → output: positions and velocities at each subsequent
//! time-step" contract of §5.

use crate::diagnostics::{Diagnostics, EnergyReport};
use crate::leapfrog::leapfrog_step;
use bhut_geom::{ParticleSet, Vec3};
use bhut_obs::StepProfile;
use bhut_threads::{ThreadConfig, ThreadSim};
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimulationConfig {
    pub dt: f64,
    pub alpha: f64,
    /// Multipole degree (0 = monopole).
    pub degree: u32,
    pub eps: f64,
    pub leaf_capacity: usize,
    pub threads: usize,
    /// Record an `O(n²)` energy report every this many steps (0 = never —
    /// the default for large runs).
    pub diag_every: usize,
    /// Evaluate forces with grouped tree walks and batched kernels (the
    /// default); `false` switches back to the per-particle reference path.
    pub grouped: bool,
    /// Attach a phase-level [`StepProfile`] to every this-many-th step's
    /// report (0 = never, the default). Profiled steps pay the span/counter
    /// bookkeeping; unprofiled steps run the plain force path.
    pub profile_every: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            dt: 1e-3,
            alpha: 0.67,
            degree: 0,
            eps: 1e-4,
            leaf_capacity: 8,
            threads: 1,
            diag_every: 0,
            grouped: true,
            profile_every: 0,
        }
    }
}

/// Per-step summary.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    pub step: usize,
    pub time: f64,
    pub interactions: u64,
    pub imbalance: f64,
    /// Phase timings and work counters for this step's force evaluation.
    /// `Some` only on steps selected by [`SimulationConfig::profile_every`].
    pub profile: Option<StepProfile>,
}

/// An in-flight n-body simulation.
pub struct Simulation {
    pub config: SimulationConfig,
    pub particles: ParticleSet,
    pub time: f64,
    pub step_count: usize,
    pub diagnostics: Diagnostics,
    executor: ThreadSim,
    accels: Option<Vec<Vec3>>,
}

impl Simulation {
    pub fn new(particles: ParticleSet, config: SimulationConfig) -> Self {
        let executor = ThreadSim::new(ThreadConfig {
            threads: config.threads.max(1),
            alpha: config.alpha,
            degree: config.degree,
            eps: config.eps,
            leaf_capacity: config.leaf_capacity,
            partitioning: bhut_threads::Partitioning::MortonZones,
            eval_mode: if config.grouped {
                bhut_threads::EvalMode::Grouped
            } else {
                bhut_threads::EvalMode::PerParticle
            },
        });
        Simulation {
            config,
            particles,
            time: 0.0,
            step_count: 0,
            diagnostics: Diagnostics::default(),
            executor,
            accels: None,
        }
    }

    /// Advance one leapfrog step; returns the step summary.
    pub fn step(&mut self) -> StepReport {
        if self.config.diag_every > 0 && self.step_count == 0 {
            self.diagnostics
                .record(self.time, EnergyReport::measure(&self.particles, self.config.eps));
        }
        let accels = match self.accels.take() {
            Some(a) => a,
            None => self.executor.compute_forces(&self.particles.particles).accels,
        };
        let profiled = self.config.profile_every > 0
            && (self.step_count + 1).is_multiple_of(self.config.profile_every);
        let mut interactions = 0;
        let mut imbalance = 1.0;
        let mut profile = None;
        let executor = &mut self.executor;
        let new_accels =
            leapfrog_step(&mut self.particles.particles, &accels, self.config.dt, |ps| {
                let mut out = if profiled {
                    executor.compute_forces_profiled(ps)
                } else {
                    executor.compute_forces(ps)
                };
                interactions = out.stats.interactions();
                imbalance = out.imbalance();
                profile = out.profile.take();
                out.accels
            });
        self.accels = Some(new_accels);
        self.time += self.config.dt;
        self.step_count += 1;
        if let Some(p) = profile.as_mut() {
            p.step = self.step_count as u64;
        }
        if self.config.diag_every > 0 && self.step_count.is_multiple_of(self.config.diag_every) {
            self.diagnostics
                .record(self.time, EnergyReport::measure(&self.particles, self.config.eps));
        }
        StepReport { step: self.step_count, time: self.time, interactions, imbalance, profile }
    }

    /// Advance `n` steps; returns the last step's summary.
    pub fn run(&mut self, n: usize) -> StepReport {
        let mut last = StepReport::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }

    /// The octree the executor would walk for the current particle state —
    /// the exact same construction path (parallel in-cell build when
    /// threaded) as a force evaluation, for inspection and testing.
    pub fn build_tree(&self) -> bhut_tree::Tree {
        self.executor.build_tree(&self.particles.particles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, PlummerSpec};

    #[test]
    fn plummer_short_run_conserves_energy() {
        let set = plummer(PlummerSpec { n: 400, seed: 6, ..Default::default() });
        let cfg = SimulationConfig {
            dt: 2e-3,
            alpha: 0.4,
            eps: 0.02,
            diag_every: 10,
            threads: 2,
            ..Default::default()
        };
        let mut sim = Simulation::new(set, cfg);
        sim.run(50);
        assert_eq!(sim.step_count, 50);
        assert!((sim.time - 0.1).abs() < 1e-12);
        let drift = sim.diagnostics.max_drift();
        assert!(drift < 5e-3, "energy drift {drift}");
    }

    #[test]
    fn step_reports_carry_work_counters() {
        let set = plummer(PlummerSpec { n: 300, seed: 7, ..Default::default() });
        let mut sim = Simulation::new(set, SimulationConfig::default());
        let r = sim.step();
        assert_eq!(r.step, 1);
        assert!(r.interactions > 0);
        assert!(r.imbalance >= 1.0);
    }

    #[test]
    fn profiled_steps_attach_a_matching_profile() {
        let set = plummer(PlummerSpec { n: 300, seed: 9, ..Default::default() });
        let cfg = SimulationConfig { threads: 2, profile_every: 2, ..Default::default() };
        let mut sim = Simulation::new(set, cfg);
        let r1 = sim.step();
        assert!(r1.profile.is_none(), "step 1 is not a multiple of profile_every");
        let r2 = sim.step();
        let profile = r2.profile.expect("step 2 is profiled");
        assert_eq!(profile.step, 2);
        assert_eq!(profile.threads, 2);
        // the report's scalar summaries are the profile's
        assert_eq!(profile.totals.interactions(), r2.interactions);
        assert!(
            (profile.imbalance() - r2.imbalance).abs() < 1e-12,
            "profile imbalance {} vs report {}",
            profile.imbalance(),
            r2.imbalance
        );
        let back = bhut_obs::StepProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn profiling_does_not_change_the_trajectory() {
        let set = plummer(PlummerSpec { n: 200, seed: 11, ..Default::default() });
        let plain = SimulationConfig { threads: 2, ..Default::default() };
        let traced = SimulationConfig { threads: 2, profile_every: 1, ..plain };
        let mut a = Simulation::new(set.clone(), plain);
        let mut b = Simulation::new(set, traced);
        a.run(3);
        b.run(3);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }

    #[test]
    fn build_tree_covers_all_particles() {
        let set = plummer(PlummerSpec { n: 250, seed: 12, ..Default::default() });
        let n = set.len();
        let sim = Simulation::new(set, SimulationConfig { threads: 4, ..Default::default() });
        let tree = sim.build_tree();
        assert_eq!(tree.order.len(), n);
    }

    #[test]
    fn accels_are_reused_across_steps() {
        // The closing kick's accelerations serve as the next opening kick's:
        // two steps must equal one step done twice with fresh state only up
        // to the first force evaluation. Here we just check determinism.
        let set = plummer(PlummerSpec { n: 200, seed: 8, ..Default::default() });
        let mut a = Simulation::new(set.clone(), SimulationConfig::default());
        let mut b = Simulation::new(set, SimulationConfig::default());
        a.run(3);
        b.run(3);
        for (x, y) in a.particles.particles.iter().zip(&b.particles.particles) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }
}
