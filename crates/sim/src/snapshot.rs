//! Snapshot and figure-data I/O.
//!
//! Snapshots are self-describing JSON (particle set + time), so experiment
//! records in `EXPERIMENTS.md` are regenerable and diffable. Position dumps
//! are CSV for plotting (Fig. 8 emits one of these).

use crate::simulation::SimulationConfig;
use bhut_geom::ParticleSet;
use serde::{Deserialize, Serialize, Value};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// A saved simulation state. The rung assignment and configuration are
/// optional so snapshots written before the block-timestep subsystem (and
/// global-dt snapshots, which have no rungs) stay loadable.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    pub time: f64,
    pub particles: ParticleSet,
    /// Per-particle rung assignment (block-timestep runs only).
    pub rungs: Option<Vec<u32>>,
    /// The configuration that produced this state, for faithful resumes.
    pub config: Option<SimulationConfig>,
}

// Hand-written so the two new fields default to `None` when absent — the
// vendored serde derive rejects missing fields, which would break loading
// pre-S12 snapshot files.
impl Deserialize for Snapshot {
    fn from_value(v: &Value) -> Result<Self, String> {
        let time = f64::from_value(v.get_field("time").ok_or("missing field `time` in Snapshot")?)?;
        let particles = ParticleSet::from_value(
            v.get_field("particles").ok_or("missing field `particles` in Snapshot")?,
        )?;
        let rungs = match v.get_field("rungs") {
            Some(x) => Option::<Vec<u32>>::from_value(x)?,
            None => None,
        };
        let config = match v.get_field("config") {
            Some(x) => Option::<SimulationConfig>::from_value(x)?,
            None => None,
        };
        Ok(Snapshot { time, particles, rungs, config })
    }
}

/// Write a snapshot as JSON.
pub fn save_snapshot(path: &Path, time: f64, particles: &ParticleSet) -> io::Result<()> {
    save_snapshot_state(
        path,
        &Snapshot { time, particles: particles.clone(), rungs: None, config: None },
    )
}

/// Write a full snapshot (see [`crate::Simulation::snapshot`]) as JSON.
///
/// The write is crash-safe: the JSON goes to a temp file in the same
/// directory which is fsynced and renamed over `path`, so a crash mid-write
/// can never leave a truncated file at the final name.
pub fn save_snapshot_state(path: &Path, snap: &Snapshot) -> io::Result<()> {
    write_atomically(path, |w| serde_json::to_writer(&mut *w, snap).map_err(io::Error::other))
}

/// Read a snapshot back.
pub fn load_snapshot(path: &Path) -> io::Result<Snapshot> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Trailing marker appended to checkpoint files. JSON parsers ignore
/// trailing whitespace-prefixed garbage only if we never write any — so the
/// marker doubles as a completeness witness: a torn write loses the tail of
/// the file first, and with it the marker.
pub const CHECKPOINT_MARKER: &str = "\n#bhut-checkpoint-v1-end\n";

/// Write `snap` as a checkpoint: atomic (temp file + rename) *and*
/// self-validating (trailing [`CHECKPOINT_MARKER`]).
pub fn save_checkpoint(path: &Path, snap: &Snapshot) -> io::Result<()> {
    write_atomically(path, |w| {
        serde_json::to_writer(&mut *w, snap).map_err(io::Error::other)?;
        w.write_all(CHECKPOINT_MARKER.as_bytes())
    })
}

/// Load a checkpoint, refusing any file whose trailing marker is missing —
/// i.e. a torn or partial write that a plain JSON parse might still accept.
pub fn load_checkpoint(path: &Path) -> io::Result<Snapshot> {
    let text = std::fs::read_to_string(path)?;
    let body = text.strip_suffix(CHECKPOINT_MARKER).ok_or_else(|| {
        io::Error::other(format!(
            "checkpoint {} is missing its trailing marker (torn write?)",
            path.display()
        ))
    })?;
    serde_json::from_str(body).map_err(io::Error::other)
}

/// Run `write` against a temp file next to `path`, fsync, and rename into
/// place. The temp name includes the pid so concurrent writers of different
/// ranks in one directory never collide.
///
/// Public because every long-running producer of reports in the workspace
/// (bench bins, examples) routes its periodic writes through this: a crash
/// or SIGKILL mid-write must leave either the old file or the new one,
/// never a truncated hybrid.
pub fn write_atomically(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("snapshot");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let mut file = BufWriter::new(File::create(&tmp)?);
    let result = write(&mut file).and_then(|()| file.flush()).and_then(|()| {
        file.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    });
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// [`write_atomically`] specialized to a ready-made string payload — the
/// common case for JSON reports.
pub fn write_text_atomically(path: &Path, text: &str) -> io::Result<()> {
    write_atomically(path, |w| w.write_all(text.as_bytes()))
}

/// Dump particle positions as `x,y,z` CSV (with header) for plotting.
pub fn write_positions_csv(out: &mut impl Write, particles: &ParticleSet) -> io::Result<()> {
    writeln!(out, "x,y,z")?;
    for p in particles.iter() {
        writeln!(out, "{},{},{}", p.pos.x, p.pos.y, p.pos.z)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, PlummerSpec};

    #[test]
    fn snapshot_roundtrip() {
        let set = plummer(PlummerSpec { n: 50, seed: 3, ..Default::default() });
        let dir = std::env::temp_dir().join("bhut_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        save_snapshot(&path, 1.25, &set).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.time, 1.25);
        assert_eq!(snap.particles.len(), set.len());
        // JSON float formatting can differ by an ULP; demand near-identity.
        for (a, b) in snap.particles.iter().zip(set.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mass, b.mass);
            assert!(a.pos.dist(b.pos) < 1e-12 * (1.0 + b.pos.norm()));
            assert!(a.vel.dist(b.vel) < 1e-12 * (1.0 + b.vel.norm()));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn full_snapshot_roundtrips_rungs_and_config() {
        use bhut_timestep::{BlockConfig, TimestepMode};
        let set = plummer(PlummerSpec { n: 20, seed: 5, ..Default::default() });
        let cfg = SimulationConfig {
            timestep: TimestepMode::Block(BlockConfig {
                dt_max: 0.05,
                max_rung: 3,
                eta: 0.08,
                eps: 0.02,
            }),
            threads: 2,
            ..Default::default()
        };
        let rungs: Vec<u32> = (0..set.len() as u32).map(|i| i % 4).collect();
        let snap =
            Snapshot { time: 0.75, particles: set, rungs: Some(rungs.clone()), config: Some(cfg) };
        let dir = std::env::temp_dir().join("bhut_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_full.json");
        save_snapshot_state(&path, &snap).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.time, snap.time);
        assert_eq!(back.rungs.as_deref(), Some(&rungs[..]));
        let got = back.config.expect("config survives the round trip");
        assert_eq!(got.timestep, cfg.timestep);
        assert_eq!(got.threads, cfg.threads);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_s12_snapshots_still_load() {
        // A file written before the rungs/config fields existed must load
        // with both defaulted to None.
        let set = plummer(PlummerSpec { n: 4, seed: 9, ..Default::default() });
        // Serialize only the legacy fields by hand.
        let old = serde::Value::Obj(vec![
            ("time".to_string(), serde::Value::Float(2.5)),
            ("particles".to_string(), set.to_value()),
        ])
        .to_json();
        let snap: Snapshot = serde_json::from_str(&old).unwrap();
        assert_eq!(snap.time, 2.5);
        assert_eq!(snap.particles.len(), 4);
        assert!(snap.rungs.is_none());
        assert!(snap.config.is_none());
    }

    #[test]
    fn checkpoint_roundtrips_and_leaves_no_temp_files() {
        let set = plummer(PlummerSpec { n: 12, seed: 7, ..Default::default() });
        let dir = std::env::temp_dir().join("bhut_ckpt_marker_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.ckpt");
        let snap = Snapshot { time: 0.5, particles: set, rungs: None, config: None };
        save_checkpoint(&path, &snap).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.time, 0.5);
        assert_eq!(back.particles.len(), 12);
        // Bitwise: checkpoints must survive the JSON round trip exactly.
        for (a, b) in back.particles.iter().zip(snap.particles.iter()) {
            assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
            assert_eq!(a.vel.z.to_bits(), b.vel.z.to_bits());
            assert_eq!(a.mass.to_bits(), b.mass.to_bits());
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_checkpoint_is_refused() {
        let set = plummer(PlummerSpec { n: 6, seed: 11, ..Default::default() });
        let dir = std::env::temp_dir().join("bhut_ckpt_torn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.ckpt");
        let snap = Snapshot { time: 0.25, particles: set, rungs: None, config: None };
        save_checkpoint(&path, &snap).unwrap();
        // Simulate a torn write: truncate the tail (losing the marker, and
        // for good measure part of the JSON).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - CHECKPOINT_MARKER.len() - 3]).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("marker"), "got: {err}");
        // Even a file that is valid JSON but lacks the marker is refused.
        save_snapshot_state(&path, &snap).unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_snapshot(Path::new("/definitely/not/here.json")).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let set = plummer(PlummerSpec { n: 5, seed: 1, ..Default::default() });
        let mut buf = Vec::new();
        write_positions_csv(&mut buf, &set).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "x,y,z");
        assert_eq!(lines[1].split(',').count(), 3);
    }
}
