//! Snapshot and figure-data I/O.
//!
//! Snapshots are self-describing JSON (particle set + time), so experiment
//! records in `EXPERIMENTS.md` are regenerable and diffable. Position dumps
//! are CSV for plotting (Fig. 8 emits one of these).

use bhut_geom::ParticleSet;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// A saved simulation state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub time: f64,
    pub particles: ParticleSet,
}

/// Write a snapshot as JSON.
pub fn save_snapshot(path: &Path, time: f64, particles: &ParticleSet) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer(file, &Snapshot { time, particles: particles.clone() })
        .map_err(io::Error::other)
}

/// Read a snapshot back.
pub fn load_snapshot(path: &Path) -> io::Result<Snapshot> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Dump particle positions as `x,y,z` CSV (with header) for plotting.
pub fn write_positions_csv(out: &mut impl Write, particles: &ParticleSet) -> io::Result<()> {
    writeln!(out, "x,y,z")?;
    for p in particles.iter() {
        writeln!(out, "{},{},{}", p.pos.x, p.pos.y, p.pos.z)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_geom::{plummer, PlummerSpec};

    #[test]
    fn snapshot_roundtrip() {
        let set = plummer(PlummerSpec { n: 50, seed: 3, ..Default::default() });
        let dir = std::env::temp_dir().join("bhut_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        save_snapshot(&path, 1.25, &set).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.time, 1.25);
        assert_eq!(snap.particles.len(), set.len());
        // JSON float formatting can differ by an ULP; demand near-identity.
        for (a, b) in snap.particles.iter().zip(set.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mass, b.mass);
            assert!(a.pos.dist(b.pos) < 1e-12 * (1.0 + b.pos.norm()));
            assert!(a.vel.dist(b.vel) < 1e-12 * (1.0 + b.vel.norm()));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_snapshot(Path::new("/definitely/not/here.json")).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let set = plummer(PlummerSpec { n: 5, seed: 1, ..Default::default() });
        let mut buf = Vec::new();
        write_positions_csv(&mut buf, &set).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "x,y,z");
        assert_eq!(lines[1].split(',').count(), 3);
    }
}
