//! Hierarchical block timesteps with active-set force evaluation (system
//! **S12**).
//!
//! The paper's drivers (and `bhut-threads`'s real executor) recompute the
//! force on **every** particle at one global `dt`, but clustered n-body
//! workloads are dominated by a small set of fast-moving particles in dense
//! cores. This crate supplies the standard remedy — a power-of-two **rung
//! hierarchy** `dt_r = dt_max / 2^r` with per-particle rung assignment from
//! the acceleration criterion `dt = η·√(ε/|a|)` — and the synchronized
//! kick-drift-kick scheduler that drives it:
//!
//! * [`ActiveSet`] — the per-substep set of particles whose forces must be
//!   recomputed; everything else is drifted but acts only as a *source*,
//! * [`BlockConfig`] / [`TimestepMode`] — the rung hierarchy parameters and
//!   the driver-facing global-vs-block switch,
//! * [`BlockStepper`] — the tick-based scheduler: one *big step* spans
//!   `dt_max`, subdivided into `2^max_rung` ticks; a rung-`r` particle is
//!   kicked at its own `dt_r` boundaries while all particles drift together
//!   between consecutive step-completion events. Rung changes happen only at
//!   a particle's own step boundary, and coarsening is restricted to rungs
//!   whose next boundary aligns with the current tick, so every particle's
//!   kicks stay centered on its drifts (the block-timestep sync rule).
//!
//! With every particle pinned to rung 0 the scheduler collapses to exactly
//! one kick-drift-kick of `dt_max` per big step, with the same floating-point
//! expressions as the global-dt leapfrog — the equivalence is bit-exact and
//! tested in `tests/equivalence.rs` at the workspace root.

pub mod active;
pub mod config;
pub mod stepper;

pub use active::ActiveSet;
pub use config::{BlockConfig, TimestepMode};
pub use stepper::{BlockStepStats, BlockStepper};
