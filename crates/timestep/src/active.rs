//! The set of particles whose forces must be recomputed this substep.

/// A boolean mask over the particle array plus its popcount. Substeps of the
/// block scheduler activate only the particles finishing a rung step; the
/// executor walks the tree for active targets only, while inactive particles
/// still contribute as sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    mask: Vec<bool>,
    count: usize,
}

impl ActiveSet {
    /// Every particle active — equivalent to a full force evaluation.
    pub fn all(n: usize) -> Self {
        ActiveSet { mask: vec![true; n], count: n }
    }

    /// No particle active.
    pub fn none(n: usize) -> Self {
        ActiveSet { mask: vec![false; n], count: 0 }
    }

    pub fn from_mask(mask: Vec<bool>) -> Self {
        let count = mask.iter().filter(|&&b| b).count();
        ActiveSet { mask, count }
    }

    /// Total particles the mask covers (active or not).
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Number of active particles.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether every particle is active.
    pub fn is_full(&self) -> bool {
        self.count == self.mask.len()
    }

    pub fn is_active(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// Flip particle `i`; keeps the popcount consistent.
    pub fn set(&mut self, i: usize, active: bool) {
        if self.mask[i] != active {
            self.mask[i] = active;
            if active {
                self.count += 1;
            } else {
                self.count -= 1;
            }
        }
    }

    /// The raw mask, for executors that filter by index.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Indices of active particles, ascending.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.mask.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_queries() {
        let mut a = ActiveSet::from_mask(vec![true, false, true, false]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.count(), 2);
        assert!(!a.is_full());
        assert!(a.is_active(0) && !a.is_active(1));
        assert_eq!(a.indices().collect::<Vec<_>>(), vec![0, 2]);
        a.set(1, true);
        assert_eq!(a.count(), 3);
        a.set(1, true); // idempotent
        assert_eq!(a.count(), 3);
        a.set(0, false);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn full_and_empty() {
        assert!(ActiveSet::all(5).is_full());
        assert_eq!(ActiveSet::all(5).count(), 5);
        assert_eq!(ActiveSet::none(5).count(), 0);
        assert!(ActiveSet::all(0).is_full());
        assert!(ActiveSet::all(0).is_empty());
    }
}
