//! The synchronized kick-drift-kick block scheduler.

use crate::active::ActiveSet;
use crate::config::BlockConfig;
use bhut_geom::{Particle, Vec3};

/// Work summary of one big step (one `dt_max` span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStepStats {
    /// Drift/force events inside the big step (1 when every particle sits
    /// on rung 0, up to `2^max_rung` when the finest rung is occupied).
    pub substeps: u64,
    /// Per-particle force evaluations across all substeps (excluding the
    /// one-time priming evaluation of a fresh stepper).
    pub force_evals: u64,
    /// Force evaluations charged to each rung, indexed by rung.
    pub forces_per_rung: Vec<u64>,
    /// Particles on each rung after the big step, indexed by rung.
    pub population: Vec<u64>,
    /// Rung moves toward finer dt (rung number increased).
    pub promotions: u64,
    /// Rung moves toward coarser dt (rung number decreased).
    pub demotions: u64,
}

impl BlockStepStats {
    fn new(max_rung: u32) -> Self {
        BlockStepStats {
            substeps: 0,
            force_evals: 0,
            forces_per_rung: vec![0; max_rung as usize + 1],
            population: vec![0; max_rung as usize + 1],
            promotions: 0,
            demotions: 0,
        }
    }
}

/// The block-timestep integrator state: per-particle rungs plus the cached
/// accelerations each particle's next opening kick needs.
///
/// One [`BlockStepper::big_step`] call advances the system by exactly
/// `dt_max`, interleaving the rungs' kick-drift-kick cycles on the shared
/// tick grid. Rungs are reassigned from the acceleration criterion at each
/// particle's own step boundary, subject to the alignment rule
/// ([`BlockConfig::coarsest_allowed`]).
#[derive(Debug, Clone)]
pub struct BlockStepper {
    pub cfg: BlockConfig,
    rungs: Vec<u32>,
    accels: Vec<Vec3>,
    primed: bool,
    rungs_restored: bool,
}

impl BlockStepper {
    pub fn new(cfg: BlockConfig) -> Self {
        BlockStepper {
            cfg,
            rungs: Vec::new(),
            accels: Vec::new(),
            primed: false,
            rungs_restored: false,
        }
    }

    /// Current rung assignment (empty before the first big step).
    pub fn rungs(&self) -> &[u32] {
        &self.rungs
    }

    /// Whether the initial full force evaluation has happened.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Adopt rung state from a snapshot: the first big step keeps these
    /// rungs instead of reassigning from the priming accelerations, so a
    /// restart resumes the hierarchy mid-flight. Rungs are clamped to
    /// `[0, max_rung]`.
    pub fn restore_rungs(&mut self, rungs: Vec<u32>) {
        self.rungs = rungs.into_iter().map(|r| r.min(self.cfg.max_rung)).collect();
        self.rungs_restored = true;
        self.primed = false;
    }

    /// Advance every particle by `dt_max`.
    ///
    /// `forces(particles, active)` must return the acceleration at the
    /// current positions for every *active* particle (inactive entries are
    /// ignored). On a fresh (or restored) stepper the first call primes the
    /// cached accelerations with a full evaluation and — unless rungs were
    /// restored — assigns initial rungs from it.
    pub fn big_step(
        &mut self,
        particles: &mut [Particle],
        mut forces: impl FnMut(&[Particle], &ActiveSet) -> Vec<Vec3>,
    ) -> BlockStepStats {
        let cfg = self.cfg;
        let n = particles.len();
        let mut stats = BlockStepStats::new(cfg.max_rung);
        if n == 0 {
            return stats;
        }
        if !self.primed {
            let accels = forces(particles, &ActiveSet::all(n));
            assert_eq!(accels.len(), n, "priming evaluation must cover every particle");
            if !self.rungs_restored || self.rungs.len() != n {
                self.rungs = accels.iter().map(|a| cfg.rung_for(a.norm())).collect();
            }
            self.accels = accels;
            self.primed = true;
        }

        let ticks = cfg.ticks();
        let dt_tick = cfg.dt_tick();
        let mut t: u64 = 0;
        while t < ticks {
            // Opening half-kick for every particle starting a rung step now.
            // All step boundaries live on the tick grid, so membership is a
            // divisibility test against the particle's step length.
            for (i, p) in particles.iter_mut().enumerate() {
                let r = self.rungs[i];
                if t.is_multiple_of(cfg.rung_len(r)) {
                    p.vel += self.accels[i] * (cfg.dt_of_rung(r) * 0.5);
                }
            }

            // Next step-completion event: the soonest boundary any particle
            // reaches. Power-of-two alignment guarantees the finest occupied
            // rung bounds it, so with everyone on rung 0 this is one jump of
            // the whole big step.
            let mut delta = ticks - t;
            for &r in &self.rungs {
                let len = cfg.rung_len(r);
                let rem = len - t % len;
                if rem < delta {
                    delta = rem;
                }
            }
            let t_next = t + delta;

            // Drift-all: positions advance together, so the tree the active
            // particles walk sees every source at the same epoch.
            let ddt = delta as f64 * dt_tick;
            for p in particles.iter_mut() {
                p.pos += p.vel * ddt;
            }

            // Particles completing a rung step at t_next need fresh forces.
            let active = ActiveSet::from_mask(
                self.rungs.iter().map(|&r| t_next.is_multiple_of(cfg.rung_len(r))).collect(),
            );
            debug_assert!(active.count() > 0, "every substep ends at someone's boundary");
            let new_accels = forces(particles, &active);
            assert_eq!(new_accels.len(), n, "force evaluation must return n entries");

            // Closing half-kick, acceleration cache update, and rung
            // reassignment — all only at the particle's own boundary.
            let floor = cfg.coarsest_allowed(t_next);
            for i in active.indices() {
                let r = self.rungs[i];
                particles[i].vel += new_accels[i] * (cfg.dt_of_rung(r) * 0.5);
                self.accels[i] = new_accels[i];
                stats.forces_per_rung[r as usize] += 1;
                let new_r = cfg.rung_for(new_accels[i].norm()).max(floor);
                if new_r > r {
                    stats.promotions += 1;
                } else if new_r < r {
                    stats.demotions += 1;
                }
                self.rungs[i] = new_r;
            }
            stats.force_evals += active.count() as u64;
            stats.substeps += 1;
            t = t_next;
        }

        for &r in &self.rungs {
            stats.population[r as usize] += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain softened direct summation, for closures in these tests.
    fn direct_accels(particles: &[Particle], eps: f64) -> Vec<Vec3> {
        let eps2 = eps * eps;
        particles
            .iter()
            .map(|p| {
                let mut acc = Vec3::ZERO;
                for q in particles {
                    if q.id == p.id {
                        continue;
                    }
                    let d = q.pos - p.pos;
                    let r2 = d.dot(d) + eps2;
                    if r2 > 0.0 {
                        acc += d * (q.mass / (r2 * r2.sqrt()));
                    }
                }
                acc
            })
            .collect()
    }

    fn binary() -> Vec<Particle> {
        vec![
            Particle::new(0, 0.5, Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0)),
            Particle::new(1, 0.5, Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0)),
        ]
    }

    #[test]
    fn rung0_pinned_is_bitwise_leapfrog() {
        // max_rung = 0 pins everyone to dt_max; the scheduler must execute
        // the very same floating-point expressions as a global KDK step.
        let dt = 0.01;
        let cfg = BlockConfig { dt_max: dt, max_rung: 0, eta: 0.1, eps: 0.0 };
        let mut block = binary();
        let mut stepper = BlockStepper::new(cfg);
        let mut global = binary();
        let mut acc = direct_accels(&global, 0.0);
        for _ in 0..25 {
            stepper.big_step(&mut block, |ps, active| {
                assert!(active.is_full());
                direct_accels(ps, 0.0)
            });
            // Reference global KDK with the canonical expressions.
            for (p, a) in global.iter_mut().zip(&acc) {
                p.vel += *a * (dt * 0.5);
            }
            for p in global.iter_mut() {
                p.pos += p.vel * dt;
            }
            acc = direct_accels(&global, 0.0);
            for (p, a) in global.iter_mut().zip(&acc) {
                p.vel += *a * (dt * 0.5);
            }
        }
        for (b, g) in block.iter().zip(&global) {
            assert_eq!(b.pos, g.pos);
            assert_eq!(b.vel, g.vel);
        }
    }

    #[test]
    fn constant_accel_schedule_and_kicks() {
        // Fixed accelerations of magnitude 1, 16, 64 with η = ε = 1 map to
        // rungs 0, 1, 2 of a dt_max = 0.5, max_rung = 2 hierarchy. All
        // values are exact in binary floating point, so each particle's
        // velocity gain over one big step is exactly a·dt_max.
        let cfg = BlockConfig { dt_max: 0.5, max_rung: 2, eta: 1.0, eps: 1.0 };
        let accs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 16.0, 0.0), Vec3::new(0.0, 0.0, 64.0)];
        let mut particles: Vec<Particle> =
            (0..3).map(|i| Particle::new(i, 1.0, Vec3::ZERO, Vec3::ZERO)).collect();
        let mut stepper = BlockStepper::new(cfg);
        let mut evals = 0u64;
        let stats = stepper.big_step(&mut particles, |ps, _active| {
            evals += 1;
            (0..ps.len()).map(|i| accs[ps[i].id as usize]).collect()
        });
        assert_eq!(stepper.rungs(), &[0, 1, 2]);
        // Finest rung occupied → one substep per tick.
        assert_eq!(stats.substeps, cfg.ticks());
        assert_eq!(stats.forces_per_rung, vec![1, 2, 4]);
        assert_eq!(stats.force_evals, 7);
        assert_eq!(stats.population, vec![1, 1, 1]);
        assert_eq!(evals, 1 + stats.substeps); // prime + one per substep
        for (i, p) in particles.iter().enumerate() {
            assert_eq!(p.vel, accs[i] * cfg.dt_max, "particle {i}");
        }
    }

    #[test]
    fn rung_changes_only_at_aligned_boundaries() {
        // A deterministic pseudo-random force field churns the rungs; the
        // scheduler must keep every rung in range and every reassignment
        // aligned (checked indirectly: per-rung eval counts match what the
        // rung lengths admit, and the big step always lands exactly).
        let cfg = BlockConfig { dt_max: 0.25, max_rung: 3, eta: 1.0, eps: 1.0 };
        let n = 40;
        let mut particles: Vec<Particle> = (0..n)
            .map(|i| Particle::new(i, 1.0, Vec3::new(i as f64 * 0.1, 0.0, 0.0), Vec3::ZERO))
            .collect();
        let mut stepper = BlockStepper::new(cfg);
        let mut tick = 0u64;
        for _ in 0..4 {
            let stats = stepper.big_step(&mut particles, |ps, _| {
                tick += 1;
                (0..ps.len())
                    .map(|i| {
                        // LCG-ish magnitude spanning several rungs.
                        let h =
                            (i as u64).wrapping_mul(6364136223846793005).wrapping_add(tick) % 97;
                        Vec3::new(0.1 + h as f64 * 3.0, 0.0, 0.0)
                    })
                    .collect()
            });
            assert!(stepper.rungs().iter().all(|&r| r <= cfg.max_rung));
            assert!(stats.substeps >= 1 && stats.substeps <= cfg.ticks());
            assert_eq!(stats.force_evals, stats.forces_per_rung.iter().sum::<u64>());
            assert_eq!(stats.population.iter().sum::<u64>(), n as u64);
            // Rung r can be evaluated at most 2^r times per particle.
            for (r, &count) in stats.forces_per_rung.iter().enumerate() {
                assert!(count <= n as u64 * (1 << r), "rung {r}: {count} evals");
            }
        }
    }

    #[test]
    fn restored_rungs_survive_priming() {
        let cfg = BlockConfig { dt_max: 0.5, max_rung: 2, eta: 1.0, eps: 1.0 };
        let mut particles = binary();
        let mut stepper = BlockStepper::new(cfg);
        stepper.restore_rungs(vec![2, 7]); // 7 clamps to max_rung
        assert_eq!(stepper.rungs(), &[2, 2]);
        // Zero forces would assign rung 0 everywhere; the restored rungs
        // must drive the first big step instead. The zero accelerations then
        // coarsen both particles as soon as alignment allows: rung 2 at
        // ticks 1 and 2, rung 1 at tick 4 — never skipping the sync rule.
        let stats = stepper.big_step(&mut particles, |ps, _| vec![Vec3::ZERO; ps.len()]);
        assert_eq!(stats.forces_per_rung, vec![0, 2, 4]);
        assert_eq!(stats.substeps, 3);
        assert_eq!(stepper.rungs(), &[0, 0]);
        assert_eq!(stats.demotions, 4);
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut stepper = BlockStepper::new(BlockConfig::default());
        let stats = stepper.big_step(&mut [], |_, _| Vec::new());
        assert_eq!(stats.substeps, 0);
        assert_eq!(stats.force_evals, 0);
    }
}
