//! Rung-hierarchy parameters and the driver-facing timestep mode.

use serde::{Deserialize, Serialize, Value};

/// Parameters of the power-of-two rung hierarchy.
///
/// Rung `r` steps at `dt_r = dt_max / 2^r`; the finest rung is `max_rung`.
/// A particle's target rung comes from the acceleration criterion
/// `dt = η·√(ε/|a|)`, rounded **down** to the next rung boundary (the
/// assigned `dt_r` never exceeds the criterion).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockConfig {
    /// The big-step length — rung 0's dt, and the synchronization period.
    pub dt_max: f64,
    /// Deepest rung; the finest dt is `dt_max / 2^max_rung`.
    pub max_rung: u32,
    /// Accuracy parameter of the timestep criterion `dt = η·√(ε/|a|)`.
    pub eta: f64,
    /// Softening length used in the criterion (normally the force softening).
    pub eps: f64,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig { dt_max: 0.1, max_rung: 4, eta: 0.1, eps: 1e-2 }
    }
}

impl BlockConfig {
    /// Ticks per big step: `2^max_rung`. Rung `r` steps span `2^(max_rung-r)`
    /// ticks, so every rung boundary lands on an integer tick.
    pub fn ticks(&self) -> u64 {
        1u64 << self.max_rung
    }

    /// Duration of one tick. Powers-of-two division is exact in binary
    /// floating point, so `rung_len(r) as f64 * dt_tick() == dt_of_rung(r)`
    /// bit-for-bit — the scheduler relies on this to make the rung-0 path
    /// identical to a global-dt leapfrog.
    pub fn dt_tick(&self) -> f64 {
        self.dt_max / self.ticks() as f64
    }

    /// `dt_r = dt_max / 2^r`.
    pub fn dt_of_rung(&self, r: u32) -> f64 {
        self.dt_max / (1u64 << r) as f64
    }

    /// Step length of rung `r` in ticks: `2^(max_rung - r)`.
    pub fn rung_len(&self, r: u32) -> u64 {
        1u64 << (self.max_rung - r)
    }

    /// The criterion timestep for acceleration magnitude `a_norm`.
    pub fn criterion_dt(&self, a_norm: f64) -> f64 {
        if a_norm > 0.0 {
            self.eta * (self.eps / a_norm).sqrt()
        } else {
            f64::INFINITY
        }
    }

    /// The rung whose `dt_r` is the largest not exceeding the criterion dt
    /// for `a_norm` — clamped to `[0, max_rung]`, so a particle demanding a
    /// dt above `dt_max` sits on rung 0 and one demanding less than the
    /// finest dt saturates at `max_rung`.
    pub fn rung_for(&self, a_norm: f64) -> u32 {
        let dt = self.criterion_dt(a_norm);
        for r in 0..=self.max_rung {
            if self.dt_of_rung(r) <= dt {
                return r;
            }
        }
        self.max_rung
    }

    /// The coarsest (smallest) rung a particle may move to at tick `t` of
    /// the big step: its next boundary must align, so `2^(max_rung - r)`
    /// must divide `t`. At `t ≡ 0 (mod ticks)` every rung is allowed.
    pub fn coarsest_allowed(&self, t: u64) -> u32 {
        let t = t % self.ticks();
        if t == 0 {
            0
        } else {
            self.max_rung.saturating_sub(t.trailing_zeros())
        }
    }
}

/// How the simulation driver advances time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TimestepMode {
    /// One global dt for every particle (the classic leapfrog path).
    #[default]
    Global,
    /// Hierarchical block timesteps over a rung hierarchy.
    Block(BlockConfig),
}

// The vendored serde derive handles named-field structs only, so the enum's
// conversions are written out: a tagged object `{"mode": "global"}` or
// `{"mode": "block", "block": {...}}`.
impl Serialize for TimestepMode {
    fn to_value(&self) -> Value {
        match self {
            TimestepMode::Global => {
                Value::Obj(vec![("mode".to_string(), Value::Str("global".to_string()))])
            }
            TimestepMode::Block(cfg) => Value::Obj(vec![
                ("mode".to_string(), Value::Str("block".to_string())),
                ("block".to_string(), cfg.to_value()),
            ]),
        }
    }
}

impl Deserialize for TimestepMode {
    fn from_value(v: &Value) -> Result<Self, String> {
        let mode = v.get_field("mode").ok_or("missing field `mode` in TimestepMode")?;
        match String::from_value(mode)?.as_str() {
            "global" => Ok(TimestepMode::Global),
            "block" => {
                let cfg = v.get_field("block").ok_or("missing field `block` in TimestepMode")?;
                Ok(TimestepMode::Block(BlockConfig::from_value(cfg)?))
            }
            other => Err(format!("unknown timestep mode {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_geometry() {
        let cfg = BlockConfig { dt_max: 0.4, max_rung: 3, eta: 0.1, eps: 1e-2 };
        assert_eq!(cfg.ticks(), 8);
        assert_eq!(cfg.dt_of_rung(0), 0.4);
        assert_eq!(cfg.dt_of_rung(3), 0.05);
        assert_eq!(cfg.rung_len(0), 8);
        assert_eq!(cfg.rung_len(3), 1);
        // Power-of-two arithmetic is exact.
        assert_eq!(cfg.rung_len(1) as f64 * cfg.dt_tick(), cfg.dt_of_rung(1));
        assert_eq!(cfg.ticks() as f64 * cfg.dt_tick(), cfg.dt_max);
    }

    #[test]
    fn rung_assignment_rounds_down() {
        let cfg = BlockConfig { dt_max: 0.4, max_rung: 3, eta: 1.0, eps: 1.0 };
        // criterion_dt = 1/sqrt(a); dt never exceeds the criterion.
        for a in [0.1, 1.0, 7.0, 30.0, 1e4] {
            let r = cfg.rung_for(a);
            let dt = cfg.dt_of_rung(r);
            let want = cfg.criterion_dt(a);
            assert!(dt <= want || r == cfg.max_rung, "a={a}: dt {dt} > criterion {want}");
            // One rung coarser would violate the criterion (unless pinned at 0).
            if r > 0 {
                assert!(cfg.dt_of_rung(r - 1) > want, "a={a}: rung {r} too fine");
            }
        }
        // Zero acceleration → infinite criterion dt → rung 0.
        assert_eq!(cfg.rung_for(0.0), 0);
        // Monstrous acceleration saturates at max_rung.
        assert_eq!(cfg.rung_for(1e30), cfg.max_rung);
    }

    #[test]
    fn coarsening_respects_alignment() {
        let cfg = BlockConfig { max_rung: 3, ..Default::default() };
        // t = 0 (or a multiple of 8): everything is synchronized.
        assert_eq!(cfg.coarsest_allowed(0), 0);
        assert_eq!(cfg.coarsest_allowed(8), 0);
        assert_eq!(cfg.coarsest_allowed(16), 0);
        // Odd ticks admit only the finest rung.
        assert_eq!(cfg.coarsest_allowed(1), 3);
        assert_eq!(cfg.coarsest_allowed(5), 3);
        // t = 2 aligns with rung 2 (len 2); t = 4 with rung 1 (len 4).
        assert_eq!(cfg.coarsest_allowed(2), 2);
        assert_eq!(cfg.coarsest_allowed(4), 1);
        assert_eq!(cfg.coarsest_allowed(6), 2);
        // An allowed rung's next boundary always lands on an integer tick.
        for t in 1..8u64 {
            let r = cfg.coarsest_allowed(t);
            assert_eq!(t % cfg.rung_len(r), 0, "tick {t} rung {r}");
        }
    }

    #[test]
    fn timestep_mode_json_roundtrip() {
        let modes = [
            TimestepMode::Global,
            TimestepMode::Block(BlockConfig { dt_max: 0.25, max_rung: 5, eta: 0.05, eps: 0.02 }),
        ];
        for mode in modes {
            let v = mode.to_value();
            let back = TimestepMode::from_value(&v).unwrap();
            assert_eq!(back, mode);
        }
        assert!(TimestepMode::from_value(&Value::Obj(vec![(
            "mode".to_string(),
            Value::Str("nope".to_string())
        )]))
        .is_err());
        assert!(TimestepMode::from_value(&Value::Null).is_err());
    }
}
