//! Geometric primitives and particle workloads for Barnes–Hut n-body
//! simulation.
//!
//! This crate is substrate **S1** of the reproduction (see `DESIGN.md`): it
//! provides the 3-D vector/box math the treecode is built on, the particle
//! representation, and seeded samplers for the particle distributions used in
//! the paper's evaluation — Plummer models and (multi-)Gaussian clusters of
//! varying irregularity — plus a registry of the paper's named problem
//! instances (`g_160535`, `p_353992`, `s_10g_a`, ...).

pub mod aabb;
pub mod datasets;
pub mod distributions;
pub mod particle;
pub mod vec3;

pub use aabb::Aabb;
pub use datasets::{dataset, dataset_domain, dataset_scaled, DatasetSpec, PAPER_DATASETS};
pub use distributions::{
    multi_gaussian, plummer, single_gaussian, uniform_cube, GaussianSpec, PlummerSpec,
};
pub use particle::{Particle, ParticleSet};
pub use vec3::Vec3;
