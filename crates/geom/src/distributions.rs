//! Seeded particle-distribution samplers.
//!
//! The paper evaluates on "Gaussian and Plummer distributions of varying
//! irregularity" (§5). We reproduce both:
//!
//! * [`plummer`] — the standard astrophysical Plummer (1911) sphere, sampled
//!   with the Aarseth–Hénon–Wielen inverse-CDF recipe, including velocities
//!   from the isotropic distribution function (so multi-timestep runs are
//!   physically sensible).
//! * [`single_gaussian`] / [`multi_gaussian`] — isotropic Gaussian blobs of
//!   controlled variance placed randomly in a cubic domain, matching the
//!   `s_1g_a` / `s_10g_b` family (§5.1, Table 4): a 100³ domain with each
//!   blob's particles concentrated in a 2×2×2 or 4×4×4 subregion.
//!
//! All samplers are deterministic given a seed.

use crate::particle::{Particle, ParticleSet};
use crate::vec3::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a Plummer sphere.
#[derive(Debug, Clone, Copy)]
pub struct PlummerSpec {
    /// Number of particles.
    pub n: usize,
    /// Total mass (equally divided).
    pub total_mass: f64,
    /// Plummer scale radius `a` in `Φ(r) = -GM / sqrt(r² + a²)`.
    pub scale_radius: f64,
    /// Positions beyond `cutoff * scale_radius` are rejected (the standard
    /// practice; the analytic Plummer sphere has infinite extent).
    pub cutoff: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlummerSpec {
    fn default() -> Self {
        PlummerSpec { n: 1000, total_mass: 1.0, scale_radius: 1.0, cutoff: 10.0, seed: 42 }
    }
}

/// Sample a Plummer sphere (positions *and* self-consistent velocities,
/// G = 1 units). The result is recentered so the center of mass and net
/// momentum are zero.
pub fn plummer(spec: PlummerSpec) -> ParticleSet {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let m_each = spec.total_mass / spec.n as f64;
    let mut particles = Vec::with_capacity(spec.n);
    for id in 0..spec.n {
        // Radius by inverting the cumulative mass profile
        // M(r)/M = r³/(r²+a²)^{3/2}  =>  r = a / sqrt(x^{-2/3} - 1).
        let r = loop {
            let x: f64 = rng.gen_range(1e-10..1.0);
            let r = spec.scale_radius / (x.powf(-2.0 / 3.0) - 1.0).sqrt();
            if r < spec.cutoff * spec.scale_radius {
                break r;
            }
        };
        let pos = random_unit(&mut rng) * r;
        // Velocity magnitude via von Neumann rejection on
        // g(q) = q²(1-q²)^{7/2}, q = v/v_esc  (Aarseth, Hénon & Wielen 1974).
        let q = loop {
            let q: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..0.1);
            if y < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let v_esc = (2.0 * spec.total_mass).sqrt()
            * (r * r + spec.scale_radius * spec.scale_radius).powf(-0.25);
        let vel = random_unit(&mut rng) * (q * v_esc);
        particles.push(Particle::new(id as u32, m_each, pos, vel));
    }
    let mut set = ParticleSet::new(particles);
    set.recenter();
    set
}

/// Parameters of a (multi-)Gaussian distribution in a cubic domain.
#[derive(Debug, Clone, Copy)]
pub struct GaussianSpec {
    /// Total number of particles, divided evenly among `clusters` blobs
    /// (remainder goes to the first blobs).
    pub n: usize,
    /// Number of Gaussian blobs placed uniformly at random in the domain.
    pub clusters: usize,
    /// Side of the cubic simulation domain (the paper's `s_*` family uses
    /// 100×100×100).
    pub domain_side: f64,
    /// Side of the subregion that should contain essentially all (≈ 3σ) of a
    /// blob's particles — 2.0 reproduces the paper's "2×2×2" high-variance
    /// cases, 4.0 the "4×4×4" lower-variance ones.
    pub concentration_side: f64,
    /// Total mass, equally divided.
    pub total_mass: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaussianSpec {
    fn default() -> Self {
        GaussianSpec {
            n: 1000,
            clusters: 1,
            domain_side: 100.0,
            concentration_side: 4.0,
            total_mass: 1.0,
            seed: 42,
        }
    }
}

/// Sample `spec.clusters` isotropic Gaussian blobs. Blob centers are placed
/// uniformly at random but kept far enough from the walls that the 3σ sphere
/// stays inside the domain; samples outside the domain are re-drawn (truncated
/// Gaussian) so the returned set is exactly contained in the domain cube.
pub fn multi_gaussian(spec: GaussianSpec) -> ParticleSet {
    assert!(spec.clusters >= 1, "need at least one cluster");
    assert!(
        spec.concentration_side < spec.domain_side,
        "blob concentration must fit in the domain"
    );
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // 3σ ≈ half the concentration side => σ = side/6.
    let sigma = spec.concentration_side / 6.0;
    let m_each = spec.total_mass / spec.n as f64;
    let margin = spec.concentration_side / 2.0;
    let lo = margin;
    let hi = spec.domain_side - margin;

    let mut particles = Vec::with_capacity(spec.n);
    let base = spec.n / spec.clusters;
    let extra = spec.n % spec.clusters;
    let mut id = 0u32;
    for c in 0..spec.clusters {
        let center = Vec3::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi), rng.gen_range(lo..hi));
        let count = base + usize::from(c < extra);
        for _ in 0..count {
            let pos = loop {
                let p = center + gaussian_vec(&mut rng) * sigma;
                if p.x >= 0.0
                    && p.x <= spec.domain_side
                    && p.y >= 0.0
                    && p.y <= spec.domain_side
                    && p.z >= 0.0
                    && p.z <= spec.domain_side
                {
                    break p;
                }
            };
            particles.push(Particle::new(id, m_each, pos, Vec3::ZERO));
            id += 1;
        }
    }
    ParticleSet::new(particles)
}

/// A single Gaussian blob (convenience wrapper over [`multi_gaussian`]).
pub fn single_gaussian(spec: GaussianSpec) -> ParticleSet {
    multi_gaussian(GaussianSpec { clusters: 1, ..spec })
}

/// `n` particles uniform in a cube of side `side`, unit total mass. The
/// "easy" load-balance case against which the irregular distributions are
/// contrasted.
pub fn uniform_cube(n: usize, side: f64, seed: u64) -> ParticleSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m_each = 1.0 / n as f64;
    let particles = (0..n)
        .map(|id| {
            let pos = Vec3::new(
                rng.gen_range(0.0..side),
                rng.gen_range(0.0..side),
                rng.gen_range(0.0..side),
            );
            Particle::new(id as u32, m_each, pos, Vec3::ZERO)
        })
        .collect();
    ParticleSet::new(particles)
}

/// Uniform random point on the unit sphere (Marsaglia 1972).
fn random_unit(rng: &mut SmallRng) -> Vec3 {
    loop {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        let s = a * a + b * b;
        if s < 1.0 {
            let t = 2.0 * (1.0 - s).sqrt();
            return Vec3::new(a * t, b * t, 1.0 - 2.0 * s);
        }
    }
}

/// 3-D standard normal via Box–Muller.
fn gaussian_vec(rng: &mut SmallRng) -> Vec3 {
    let mut pair = || {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt();
        (r * u2.cos(), r * u2.sin())
    };
    let (x, y) = pair();
    let (z, _) = pair();
    Vec3::new(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plummer_basic_properties() {
        let s = plummer(PlummerSpec { n: 2000, ..Default::default() });
        assert_eq!(s.len(), 2000);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        // recentered
        assert!(s.center_of_mass().unwrap().norm() < 1e-10);
        // all within the cutoff (plus recentering slack)
        for p in s.iter() {
            assert!(p.pos.norm() < 11.0, "particle beyond cutoff: {:?}", p.pos);
            assert!(p.pos.is_finite() && p.vel.is_finite());
        }
    }

    #[test]
    fn plummer_half_mass_radius_matches_theory() {
        // Plummer half-mass radius = a / sqrt(2^{2/3} - 1) ≈ 1.3048 a.
        let s = plummer(PlummerSpec { n: 20_000, seed: 7, ..Default::default() });
        let mut radii: Vec<f64> = s.iter().map(|p| p.pos.norm()).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let half = radii[radii.len() / 2];
        let expect = 1.0 / (2f64.powf(2.0 / 3.0) - 1.0).sqrt();
        assert!(
            (half - expect).abs() / expect < 0.05,
            "half-mass radius {half} vs theory {expect}"
        );
    }

    #[test]
    fn plummer_velocities_bound() {
        // Sampled speeds never exceed local escape speed.
        let s = plummer(PlummerSpec { n: 5000, seed: 3, ..Default::default() });
        // Recentering shifts are tiny; test against a slightly padded bound.
        for p in s.iter() {
            let r = p.pos.norm();
            let v_esc = (2.0f64).sqrt() * (r * r + 1.0).powf(-0.25);
            assert!(p.vel.norm() <= v_esc * 1.05);
        }
    }

    #[test]
    fn plummer_deterministic_by_seed() {
        let a = plummer(PlummerSpec { n: 100, seed: 9, ..Default::default() });
        let b = plummer(PlummerSpec { n: 100, seed: 9, ..Default::default() });
        let c = plummer(PlummerSpec { n: 100, seed: 10, ..Default::default() });
        assert_eq!(a.particles, b.particles);
        assert_ne!(a.particles, c.particles);
    }

    #[test]
    fn gaussian_concentration() {
        let spec = GaussianSpec { n: 5000, concentration_side: 2.0, seed: 1, ..Default::default() };
        let s = single_gaussian(spec);
        assert_eq!(s.len(), 5000);
        let com = s.center_of_mass().unwrap();
        // ≈ 99.7% of particles within the 2×2×2 box around the blob center;
        // demand at least 95% within 1.2× of it to allow sampling noise.
        let inside =
            s.iter().filter(|p| (p.pos - com).to_array().iter().all(|d| d.abs() <= 1.2)).count();
        assert!(inside as f64 / s.len() as f64 > 0.95, "only {inside} inside");
    }

    #[test]
    fn multi_gaussian_counts_and_domain() {
        let spec = GaussianSpec { n: 1003, clusters: 10, seed: 5, ..Default::default() };
        let s = multi_gaussian(spec);
        assert_eq!(s.len(), 1003);
        for p in s.iter() {
            for d in p.pos.to_array() {
                assert!((0.0..=100.0).contains(&d));
            }
        }
    }

    #[test]
    fn multi_gaussian_blobs_are_distinct() {
        // With 10 blobs in a 100³ box, the particle cloud should span much
        // more than one blob's concentration region.
        let spec = GaussianSpec { n: 2000, clusters: 10, seed: 5, ..Default::default() };
        let s = multi_gaussian(spec);
        let bb = crate::aabb::Aabb::bounding(s.iter().map(|p| p.pos)).unwrap();
        assert!(bb.extent().max_component() > 20.0);
    }

    #[test]
    fn uniform_fills_domain() {
        let s = uniform_cube(4000, 10.0, 11);
        let bb = crate::aabb::Aabb::bounding(s.iter().map(|p| p.pos)).unwrap();
        assert!(bb.extent().min_component() > 9.0);
        assert!((s.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_unit_is_unit() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            let v = random_unit(&mut rng);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }
}
