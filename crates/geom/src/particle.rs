//! Particle representation.
//!
//! A simulation instance is a [`ParticleSet`]: positions, velocities and
//! masses plus a stable `id` so particles can be tracked across the
//! redistribution steps of the parallel formulations (SPDA cluster moves,
//! DPDA costzones exchange).

use crate::aabb::Aabb;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// One body: mass, position, velocity, and a stable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Stable index into the originating [`ParticleSet`]; survives
    /// inter-processor redistribution.
    pub id: u32,
    pub mass: f64,
    pub pos: Vec3,
    pub vel: Vec3,
}

impl Particle {
    pub fn new(id: u32, mass: f64, pos: Vec3, vel: Vec3) -> Self {
        Particle { id, mass, pos, vel }
    }

    /// A unit-mass particle at rest.
    pub fn at(id: u32, pos: Vec3) -> Self {
        Particle::new(id, 1.0, pos, Vec3::ZERO)
    }
}

/// An owned collection of particles with convenience aggregate queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParticleSet {
    pub particles: Vec<Particle>,
}

impl ParticleSet {
    pub fn new(particles: Vec<Particle>) -> Self {
        ParticleSet { particles }
    }

    /// Build from positions with unit masses and zero velocities, assigning
    /// sequential ids.
    pub fn from_positions(positions: impl IntoIterator<Item = Vec3>) -> Self {
        let particles =
            positions.into_iter().enumerate().map(|(i, p)| Particle::at(i as u32, p)).collect();
        ParticleSet { particles }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Particle> {
        self.particles.iter()
    }

    pub fn total_mass(&self) -> f64 {
        self.particles.iter().map(|p| p.mass).sum()
    }

    /// Mass-weighted centroid; `None` when empty or massless.
    pub fn center_of_mass(&self) -> Option<Vec3> {
        let m = self.total_mass();
        if m <= 0.0 {
            return None;
        }
        let s: Vec3 = self.particles.iter().map(|p| p.pos * p.mass).sum();
        Some(s / m)
    }

    /// Smallest cube containing all particle positions (padded slightly), the
    /// canonical root cell for tree construction. `None` when empty.
    pub fn bounding_cube(&self) -> Option<Aabb> {
        let pad = 1e-9 * self.particles.iter().map(|p| p.pos.norm()).fold(1.0, f64::max);
        Aabb::bounding_cube(self.particles.iter().map(|p| p.pos), pad)
    }

    /// Total kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        self.particles.iter().map(|p| 0.5 * p.mass * p.vel.norm_sq()).sum()
    }

    /// Translate every particle so the center of mass sits at the origin and
    /// the net momentum is zero — standard cleanup after sampling a random
    /// distribution so the cluster does not drift.
    pub fn recenter(&mut self) {
        let m = self.total_mass();
        if m <= 0.0 {
            return;
        }
        let com: Vec3 = self.particles.iter().map(|p| p.pos * p.mass).sum::<Vec3>() / m;
        let mom: Vec3 = self.particles.iter().map(|p| p.vel * p.mass).sum::<Vec3>() / m;
        for p in &mut self.particles {
            p.pos -= com;
            p.vel -= mom;
        }
    }
}

impl FromIterator<Particle> for ParticleSet {
    fn from_iter<T: IntoIterator<Item = Particle>>(iter: T) -> Self {
        ParticleSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> ParticleSet {
        ParticleSet::new(vec![
            Particle::new(0, 1.0, Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)),
            Particle::new(1, 3.0, Vec3::new(4.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)),
        ])
    }

    #[test]
    fn aggregates() {
        let s = pair();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_mass(), 4.0);
        assert_eq!(s.center_of_mass().unwrap(), Vec3::new(3.0, 0.0, 0.0));
        // KE = 0.5*1*1 + 0.5*3*1 = 2
        assert_eq!(s.kinetic_energy(), 2.0);
    }

    #[test]
    fn empty_set() {
        let s = ParticleSet::default();
        assert!(s.is_empty());
        assert!(s.center_of_mass().is_none());
        assert!(s.bounding_cube().is_none());
    }

    #[test]
    fn from_positions_assigns_ids() {
        let s = ParticleSet::from_positions([Vec3::ZERO, Vec3::ONE]);
        assert_eq!(s.particles[0].id, 0);
        assert_eq!(s.particles[1].id, 1);
        assert_eq!(s.particles[1].mass, 1.0);
    }

    #[test]
    fn recenter_zeroes_com_and_momentum() {
        let mut s = pair();
        s.recenter();
        let com = s.center_of_mass().unwrap();
        assert!(com.norm() < 1e-12);
        let mom: Vec3 = s.particles.iter().map(|p| p.vel * p.mass).sum();
        assert!(mom.norm() < 1e-12);
    }

    #[test]
    fn bounding_cube_contains_everything() {
        let s = pair();
        let c = s.bounding_cube().unwrap();
        for p in s.iter() {
            assert!(c.contains(p.pos));
        }
        let e = c.extent();
        assert!((e.x - e.y).abs() < 1e-9 && (e.y - e.z).abs() < 1e-9);
    }

    #[test]
    fn collect_from_iterator() {
        let s: ParticleSet = (0..5).map(|i| Particle::at(i, Vec3::splat(i as f64))).collect();
        assert_eq!(s.len(), 5);
    }
}
