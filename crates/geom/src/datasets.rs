//! Registry of the paper's named problem instances.
//!
//! §5 names its workloads `g_<n>` (Gaussian), `p_<n>` (Plummer) and the
//! `s_1g_a` / `s_10g_b` irregularity family of Table 4. The exact seeds and
//! blob placements of the original datasets are lost to history, so we
//! regenerate statistically equivalent instances: same particle counts, same
//! distribution family, same concentration parameters where the paper states
//! them (100³ domain; 2×2×2 vs 4×4×4 blob concentration; 1 vs 10 blobs;
//! g_1192768 contains *two* Gaussians per §5.1).

use crate::distributions::{multi_gaussian, plummer, GaussianSpec, PlummerSpec};
use crate::particle::ParticleSet;

/// How a named instance is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// `clusters` Gaussian blobs, `concentration_side` each, in a 100³ box.
    Gaussian { clusters: usize, concentration_side_tenths: u32 },
    /// A Plummer sphere.
    Plummer,
}

/// A named dataset from the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// The paper's name, e.g. `"g_326214"`.
    pub name: &'static str,
    /// Particle count at full (paper) scale.
    pub n: usize,
    pub kind: DatasetKind,
    /// Seed used for regeneration (fixed per instance for reproducibility).
    pub seed: u64,
}

/// Every named instance appearing in Tables 1–7 and Fig. 8.
pub const PAPER_DATASETS: &[DatasetSpec] = &[
    // Table 1/2/3/5/6 Gaussian instances. The paper only says these are
    // Gaussian mixtures of strong irregularity ("density variations across
    // domains maybe several orders of magnitude"); we model them as a
    // handful of tight (10x10x10 at 3 sigma) blobs scattered in the 100^3
    // domain, growing the blob count with n.
    DatasetSpec {
        name: "g_28131",
        n: 28_131,
        kind: DatasetKind::Gaussian { clusters: 6, concentration_side_tenths: 100 },
        seed: 0x9e3779b97f4a7c15,
    },
    DatasetSpec {
        name: "g_160535",
        n: 160_535,
        kind: DatasetKind::Gaussian { clusters: 10, concentration_side_tenths: 100 },
        seed: 0xbf58476d1ce4e5b9,
    },
    DatasetSpec {
        name: "g_326214",
        n: 326_214,
        kind: DatasetKind::Gaussian { clusters: 14, concentration_side_tenths: 100 },
        seed: 0x94d049bb133111eb,
    },
    DatasetSpec {
        name: "g_657499",
        n: 657_499,
        kind: DatasetKind::Gaussian { clusters: 18, concentration_side_tenths: 100 },
        seed: 0xd6e8feb86659fd93,
    },
    DatasetSpec {
        name: "g_1192768",
        n: 1_192_768,
        kind: DatasetKind::Gaussian { clusters: 24, concentration_side_tenths: 100 },
        seed: 0xa0761d6478bd642f,
    },
    // Table 5/6/7 Plummer instances.
    DatasetSpec {
        name: "p_63192",
        n: 63_192,
        kind: DatasetKind::Plummer,
        seed: 0xe7037ed1a0b428db,
    },
    DatasetSpec {
        name: "p_353992",
        n: 353_992,
        kind: DatasetKind::Plummer,
        seed: 0x8ebc6af09c88c6e3,
    },
    // Fig. 8 sample.
    DatasetSpec { name: "p_5000", n: 5_000, kind: DatasetKind::Plummer, seed: 0x589965cc75374cc3 },
    // Table 4 irregularity family: 25 130 particles in a 100^3 domain.
    DatasetSpec {
        name: "s_1g_a",
        n: 25_130,
        kind: DatasetKind::Gaussian { clusters: 1, concentration_side_tenths: 20 },
        seed: 0x1d8e4e27c47d124f,
    },
    DatasetSpec {
        name: "s_1g_b",
        n: 25_130,
        kind: DatasetKind::Gaussian { clusters: 1, concentration_side_tenths: 40 },
        seed: 0xeb44accab455d165,
    },
    DatasetSpec {
        name: "s_10g_a",
        n: 25_130,
        kind: DatasetKind::Gaussian { clusters: 10, concentration_side_tenths: 20 },
        seed: 0x6c9c9a1c03f3f643,
    },
    DatasetSpec {
        name: "s_10g_b",
        n: 25_130,
        kind: DatasetKind::Gaussian { clusters: 10, concentration_side_tenths: 40 },
        seed: 0x3e8b37a2898b78a1,
    },
];

/// Look up a named dataset spec.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    PAPER_DATASETS.iter().find(|d| d.name == name)
}

/// The declared simulation domain of a named instance: the Gaussian
/// families live in a fixed 100³ box (the paper's cluster grids tile *that*
/// domain, not the data's bounding cube — which is what makes concentrated
/// instances saturate, Table 4); Plummer spheres have no declared box.
pub fn dataset_domain(name: &str) -> Option<crate::aabb::Aabb> {
    match spec(name)?.kind {
        DatasetKind::Gaussian { .. } => Some(crate::aabb::Aabb::origin_cube(100.0)),
        DatasetKind::Plummer => None,
    }
}

/// Generate a named instance at full (paper) scale.
///
/// # Panics
/// If `name` is not in [`PAPER_DATASETS`].
pub fn dataset(name: &str) -> ParticleSet {
    dataset_scaled(name, 1.0)
}

/// Generate a named instance with the particle count scaled by `scale`
/// (0 < scale ≤ 1). Scaling preserves the distribution family, blob
/// structure and seed so trends remain comparable while keeping quick runs
/// cheap.
///
/// # Panics
/// If `name` is unknown or `scale` is out of `(0, 1]`.
pub fn dataset_scaled(name: &str, scale: f64) -> ParticleSet {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
    let d = spec(name).unwrap_or_else(|| panic!("unknown dataset {name:?}"));
    let n = ((d.n as f64 * scale).round() as usize).max(16);
    generate(d, n)
}

fn generate(d: &DatasetSpec, n: usize) -> ParticleSet {
    match d.kind {
        DatasetKind::Gaussian { clusters, concentration_side_tenths } => {
            multi_gaussian(GaussianSpec {
                n,
                clusters,
                domain_side: 100.0,
                concentration_side: concentration_side_tenths as f64 / 10.0,
                total_mass: 1.0,
                seed: d.seed,
            })
        }
        DatasetKind::Plummer => plummer(PlummerSpec {
            n,
            total_mass: 1.0,
            scale_radius: 1.0,
            cutoff: 10.0,
            seed: d.seed,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        for (i, a) in PAPER_DATASETS.iter().enumerate() {
            for b in &PAPER_DATASETS[i + 1..] {
                assert_ne!(a.name, b.name);
                assert_ne!(a.seed, b.seed, "{} and {} share a seed", a.name, b.name);
            }
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(spec("g_326214").unwrap().n, 326_214);
        assert!(spec("nope").is_none());
    }

    #[test]
    fn scaled_counts() {
        let s = dataset_scaled("g_160535", 0.01);
        assert_eq!(s.len(), 1605);
    }

    #[test]
    fn table4_family_matches_paper_counts() {
        for name in ["s_1g_a", "s_1g_b", "s_10g_a", "s_10g_b"] {
            assert_eq!(spec(name).unwrap().n, 25_130, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = dataset("g_unknown");
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn bad_scale_panics() {
        let _ = dataset_scaled("p_5000", 1.5);
    }

    #[test]
    fn small_scale_instances_generate() {
        // Smoke-generate every instance at 0.2% scale.
        for d in PAPER_DATASETS {
            let s = dataset_scaled(d.name, 0.002);
            assert!(!s.is_empty(), "{} empty", d.name);
            assert!(s.iter().all(|p| p.pos.is_finite()));
        }
    }
}
