//! Axis-aligned bounding boxes and octant arithmetic.
//!
//! The Barnes–Hut oct-tree recursively splits a cubic domain into eight
//! octants; `Aabb` carries both the cubic cells of that decomposition and the
//! tight boxes used by the *box collapsing* technique (§2 of the paper) that
//! bounds the tree size for pathological particle pairs.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned box `[min, max]` (inclusive on both ends).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// Build from corners; panics in debug builds if `min > max` on any axis.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z);
        Aabb { min, max }
    }

    /// A cube centered at `center` with side length `side`.
    #[inline]
    pub fn cube(center: Vec3, side: f64) -> Self {
        let h = Vec3::splat(side * 0.5);
        Aabb::new(center - h, center + h)
    }

    /// The unit-ish cube `[0, side]^3`.
    #[inline]
    pub fn origin_cube(side: f64) -> Self {
        Aabb::new(Vec3::ZERO, Vec3::splat(side))
    }

    /// Smallest box containing all `points`; `None` if empty.
    pub fn bounding(points: impl IntoIterator<Item = Vec3>) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (min, max) = it.fold((first, first), |(lo, hi), p| (lo.min(p), hi.max(p)));
        Some(Aabb::new(min, max))
    }

    /// Smallest *cube* containing all `points` (used as the tree root so that
    /// octants stay cubic); `None` if empty. The cube is centered on the
    /// bounding box and padded by `pad` on each side so boundary particles
    /// fall strictly inside.
    pub fn bounding_cube(points: impl IntoIterator<Item = Vec3>, pad: f64) -> Option<Self> {
        let b = Self::bounding(points)?;
        let side = (b.max - b.min).max_component() + 2.0 * pad;
        Some(Aabb::cube(b.center(), side.max(f64::MIN_POSITIVE)))
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extents.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// The length of the longest side — the "dimension of the box" used by
    /// the Barnes–Hut multipole acceptance criterion.
    #[inline]
    pub fn side(&self) -> f64 {
        self.extent().max_component()
    }

    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Whether `p` lies inside (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Octant index (0..8) of point `p` relative to the box center: bit 0 set
    /// if `p.x` is in the upper half, bit 1 for `y`, bit 2 for `z`. This
    /// matches the Morton child ordering in `bhut-morton`, so in-order
    /// traversal of children yields the Z-curve.
    #[inline]
    pub fn octant_of(&self, p: Vec3) -> usize {
        let c = self.center();
        ((p.x >= c.x) as usize) | (((p.y >= c.y) as usize) << 1) | (((p.z >= c.z) as usize) << 2)
    }

    /// The sub-box for octant `oct` (inverse of [`Aabb::octant_of`]).
    #[inline]
    pub fn octant(&self, oct: usize) -> Aabb {
        debug_assert!(oct < 8);
        let c = self.center();
        let pick = |bit: usize, lo: f64, mid: f64, hi: f64| -> (f64, f64) {
            if oct >> bit & 1 == 1 {
                (mid, hi)
            } else {
                (lo, mid)
            }
        };
        let (x0, x1) = pick(0, self.min.x, c.x, self.max.x);
        let (y0, y1) = pick(1, self.min.y, c.y, self.max.y);
        let (z0, z1) = pick(2, self.min.z, c.z, self.max.z);
        Aabb::new(Vec3::new(x0, y0, z0), Vec3::new(x1, y1, z1))
    }

    /// Grow the box to include `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Union of two boxes.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// *Box collapsing* (§2): the smallest cube-aligned descendant of `self`
    /// (i.e. reachable by repeated octant subdivision) that still contains
    /// all of `tight`. Collapsing skips long chains of single-child nodes,
    /// which is what bounds the treecode complexity at `O(n log n)` even for
    /// adversarial particle placements.
    pub fn collapse_to(&self, tight: &Aabb) -> Aabb {
        let mut cell = *self;
        loop {
            let oct = cell.octant_of(tight.min);
            let child = cell.octant(oct);
            if child.contains_box(tight) && child.side() > 0.0 {
                cell = child;
            } else {
                return cell;
            }
        }
    }

    /// Squared distance from `p` to the nearest point of the box (0 inside).
    pub fn dist_sq_to(&self, p: Vec3) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Squared distance from `p` to the *farthest* point of the box. Together
    /// with [`Aabb::dist_sq_to`] this brackets the distance from `p` to any
    /// point inside the box — the bracket the grouped multipole acceptance
    /// test needs.
    pub fn max_dist_sq_to(&self, p: Vec3) -> f64 {
        let dx = (p.x - self.min.x).abs().max((self.max.x - p.x).abs());
        let dy = (p.y - self.min.y).abs().max((self.max.y - p.y).abs());
        let dz = (p.z - self.min.z).abs().max((self.max.z - p.z).abs());
        dx * dx + dy * dy + dz * dz
    }

    /// Squared distance between the nearest points of two boxes (0 if they
    /// touch or overlap).
    pub fn dist_sq_to_box(&self, other: &Aabb) -> f64 {
        let gap = |amin: f64, amax: f64, bmin: f64, bmax: f64| -> f64 {
            (bmin - amax).max(0.0).max(amin - bmax)
        };
        let dx = gap(self.min.x, self.max.x, other.min.x, other.max.x);
        let dy = gap(self.min.y, self.max.y, other.min.y, other.max.y);
        let dz = gap(self.min.z, self.max.z, other.min.z, other.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Corner `i` (0..8), with bit 0/1/2 selecting max on the x/y/z axis —
    /// the same bit convention as [`Aabb::octant`].
    #[inline]
    pub fn corner(&self, i: usize) -> Vec3 {
        debug_assert!(i < 8);
        Vec3::new(
            if i & 1 == 1 { self.max.x } else { self.min.x },
            if i & 2 == 2 { self.max.y } else { self.min.y },
            if i & 4 == 4 { self.max.z } else { self.min.z },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::origin_cube(1.0)
    }

    #[test]
    fn cube_construction() {
        let c = Aabb::cube(Vec3::splat(1.0), 2.0);
        assert_eq!(c.min, Vec3::ZERO);
        assert_eq!(c.max, Vec3::splat(2.0));
        assert_eq!(c.center(), Vec3::splat(1.0));
        assert_eq!(c.side(), 2.0);
        assert_eq!(c.volume(), 8.0);
    }

    #[test]
    fn bounding_of_points() {
        let pts = [Vec3::new(1.0, 5.0, -1.0), Vec3::new(-2.0, 0.0, 3.0)];
        let b = Aabb::bounding(pts).unwrap();
        assert_eq!(b.min, Vec3::new(-2.0, 0.0, -1.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 3.0));
        assert!(Aabb::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_cube_is_cubic_and_contains() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 10.0, 2.0)];
        let c = Aabb::bounding_cube(pts, 0.5).unwrap();
        let e = c.extent();
        assert!((e.x - e.y).abs() < 1e-12 && (e.y - e.z).abs() < 1e-12);
        for p in pts {
            assert!(c.contains(p));
        }
    }

    #[test]
    fn octant_roundtrip() {
        let b = unit();
        for oct in 0..8 {
            let sub = b.octant(oct);
            assert_eq!(b.octant_of(sub.center()), oct);
            assert!((sub.volume() - b.volume() / 8.0).abs() < 1e-12);
            assert!(b.contains_box(&sub));
        }
    }

    #[test]
    fn octant_bit_convention() {
        let b = unit();
        // x-upper-half only => octant 1; z-upper-half only => octant 4.
        assert_eq!(b.octant_of(Vec3::new(0.9, 0.1, 0.1)), 1);
        assert_eq!(b.octant_of(Vec3::new(0.1, 0.9, 0.1)), 2);
        assert_eq!(b.octant_of(Vec3::new(0.1, 0.1, 0.9)), 4);
        assert_eq!(b.octant_of(Vec3::new(0.9, 0.9, 0.9)), 7);
    }

    #[test]
    fn containment() {
        let b = unit();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO)); // boundary inclusive
        assert!(!b.contains(Vec3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn expand_and_union() {
        let mut b = unit();
        b.expand_to(Vec3::splat(2.0));
        assert!(b.contains(Vec3::splat(2.0)));
        let u = unit().union(&Aabb::cube(Vec3::splat(3.0), 1.0));
        assert!(u.contains(Vec3::splat(3.4)));
        assert!(u.contains(Vec3::ZERO));
    }

    #[test]
    fn collapse_skips_empty_levels() {
        // Two points crammed into a tiny corner of a huge cube: the collapsed
        // cell must contain them and be much smaller than the root.
        let root = Aabb::origin_cube(1024.0);
        let tight = Aabb::bounding([Vec3::new(0.5, 0.5, 0.5), Vec3::new(1.0, 1.0, 1.0)]).unwrap();
        let c = root.collapse_to(&tight);
        assert!(c.contains_box(&tight));
        assert!(c.side() <= 2.0);
        // And it is an exact power-of-two descendant of the root: [0.5,1]^3.
        assert_eq!(c.side(), 0.5);
        assert_eq!(c.min, Vec3::splat(0.5));
    }

    #[test]
    fn collapse_noop_when_tight_spans_center() {
        let root = unit();
        let tight = Aabb::bounding([Vec3::splat(0.4), Vec3::splat(0.6)]).unwrap();
        assert_eq!(root.collapse_to(&tight), root);
    }

    #[test]
    fn dist_sq_inside_and_outside() {
        let b = unit();
        assert_eq!(b.dist_sq_to(Vec3::splat(0.5)), 0.0);
        assert_eq!(b.dist_sq_to(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.dist_sq_to(Vec3::new(2.0, 2.0, 0.5)), 2.0);
    }

    #[test]
    fn max_dist_reaches_farthest_corner() {
        let b = unit();
        // From the origin corner, the farthest point is (1,1,1).
        assert_eq!(b.max_dist_sq_to(Vec3::ZERO), 3.0);
        // From outside along +x, the farthest point is the min-x face.
        assert_eq!(b.max_dist_sq_to(Vec3::new(2.0, 0.0, 0.0)), 4.0 + 1.0 + 1.0);
        // Brackets dist_sq_to for arbitrary points.
        for i in 0..8 {
            let p = Vec3::new(0.3 * i as f64 - 1.0, 0.7, 1.9);
            assert!(b.dist_sq_to(p) <= b.max_dist_sq_to(p));
        }
    }

    #[test]
    fn box_box_distance() {
        let a = unit();
        assert_eq!(a.dist_sq_to_box(&Aabb::cube(Vec3::splat(0.5), 0.2)), 0.0); // contained
        assert_eq!(a.dist_sq_to_box(&unit()), 0.0); // identical
        let b = Aabb::new(Vec3::new(3.0, 0.0, 0.0), Vec3::new(4.0, 1.0, 1.0));
        assert_eq!(a.dist_sq_to_box(&b), 4.0);
        let c = Aabb::new(Vec3::new(2.0, 3.0, 0.0), Vec3::new(3.0, 4.0, 1.0));
        assert_eq!(a.dist_sq_to_box(&c), 1.0 + 4.0);
        // Consistent with the pointwise minimum over one box's corners.
        for i in 0..8 {
            assert!(a.dist_sq_to_box(&b) <= b.dist_sq_to(a.corner(i)));
        }
    }

    #[test]
    fn corners_enumerate_extremes() {
        let b = unit();
        assert_eq!(b.corner(0), Vec3::ZERO);
        assert_eq!(b.corner(7), Vec3::splat(1.0));
        assert_eq!(b.corner(1), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(b.corner(6), Vec3::new(0.0, 1.0, 1.0));
    }
}
