//! A minimal 3-D vector of `f64` components.
//!
//! The treecode only needs a handful of operations (add, scale, norms, dot),
//! so we keep this dependency-free and `Copy`. All operations are `#[inline]`
//! — they sit on the innermost force-evaluation loop.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm. Preferred in MAC tests to avoid the sqrt.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the direction of `self`; `None` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        (n > 0.0).then(|| self / n)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        self.dist_sq(o).sqrt()
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array, for indexed access by axis.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        v -= Vec3::new(0.5, 0.5, 0.5);
        v *= 2.0;
        v /= 3.0;
        assert_eq!(v, Vec3::splat(1.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // anti-commutativity
        assert_eq!(x.cross(y), -(y.cross(x)));
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dist(Vec3::ZERO), 5.0);
        assert_eq!(v.dist_sq(Vec3::new(3.0, 0.0, 0.0)), 16.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn component_extrema() {
        let a = Vec3::new(1.0, -2.0, 5.0);
        let b = Vec3::new(0.0, 4.0, 2.0);
        assert_eq!(a.min(b), Vec3::new(0.0, -2.0, 2.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 4.0, 5.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -2.0);
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        assert_eq!(v.to_array(), [7.0, 8.0, 9.0]);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
