//! Property tests on the geometric substrate: the oct-tree's correctness
//! rests on these invariants holding for arbitrary boxes and points.

use bhut_geom::{Aabb, Vec3};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Vec3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_cube() -> impl Strategy<Value = Aabb> {
    (arb_point(), 0.1f64..50.0).prop_map(|(c, side)| Aabb::cube(c, side))
}

proptest! {
    /// The eight octants tile the parent exactly.
    #[test]
    fn octants_tile_parent(cube in arb_cube()) {
        let vol: f64 = (0..8).map(|o| cube.octant(o).volume()).sum();
        prop_assert!((vol - cube.volume()).abs() < 1e-9 * cube.volume());
        for o in 0..8 {
            prop_assert!(cube.contains_box(&cube.octant(o)));
        }
    }

    /// A contained point's octant contains the point.
    #[test]
    fn octant_of_is_consistent(cube in arb_cube(), p in arb_point()) {
        if cube.contains(p) {
            let oct = cube.octant_of(p);
            prop_assert!(cube.octant(oct).contains(p), "octant {oct} misses its point");
        }
    }

    /// Collapsing never loses the tight box and never grows the cell.
    #[test]
    fn collapse_preserves_containment(cube in arb_cube(), a in arb_point(), b in arb_point()) {
        let scale = cube.side() / 250.0;
        let pa = cube.center() + (a * (scale / 100.0));
        let pb = cube.center() + (b * (scale / 100.0));
        let tight = Aabb::bounding([pa, pb]).unwrap();
        prop_assume!(cube.contains_box(&tight));
        let c = cube.collapse_to(&tight);
        prop_assert!(c.contains_box(&tight));
        prop_assert!(cube.contains_box(&c));
        prop_assert!(c.side() <= cube.side());
    }

    /// dist_sq_to is zero exactly for contained points, positive otherwise,
    /// and is a lower bound on the distance to any contained point.
    #[test]
    fn dist_sq_lower_bound(cube in arb_cube(), p in arb_point(), q in arb_point()) {
        let d2 = cube.dist_sq_to(p);
        if cube.contains(p) {
            prop_assert_eq!(d2, 0.0);
        } else {
            prop_assert!(d2 > 0.0);
        }
        // clamp q into the box: distance from p to it must be >= d2
        let inside = Vec3::new(
            q.x.clamp(cube.min.x, cube.max.x),
            q.y.clamp(cube.min.y, cube.max.y),
            q.z.clamp(cube.min.z, cube.max.z),
        );
        prop_assert!(p.dist_sq(inside) >= d2 - 1e-9 * d2.abs().max(1.0));
    }

    /// Union is commutative, idempotent, and contains both inputs.
    #[test]
    fn union_laws(a in arb_cube(), b in arb_cube()) {
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a) && u.contains_box(&b));
        prop_assert_eq!(u, b.union(&a));
        prop_assert_eq!(a.union(&a), a);
    }

    /// Vector algebra: distributivity and norm scaling.
    #[test]
    fn vec3_algebra(a in arb_point(), b in arb_point(), s in -10.0f64..10.0) {
        let lhs = (a + b) * s;
        let rhs = a * s + b * s;
        prop_assert!(lhs.dist(rhs) < 1e-9 * (1.0 + lhs.norm()));
        prop_assert!(((a * s).norm() - s.abs() * a.norm()).abs() < 1e-9 * (1.0 + a.norm()));
        // Cauchy–Schwarz
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-9);
    }
}
