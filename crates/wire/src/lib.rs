//! Length-prefixed framing, binary wire encodings, and retry backoff —
//! the transport vocabulary shared by the multi-process mesh
//! (`bhut-proc`) and the query server (`bhut-serve`).
//!
//! Every message on every channel — rank↔rank mesh streams, the
//! child→parent control channel, and client↔server query traffic — is one
//! *frame*: a 6-byte little-endian header (`tag: u16`, `len: u32`)
//! followed by `len` payload bytes. [`write_frame`] and [`read_frame`]
//! loop over `write_all`/`read_exact`, so short reads and short writes
//! (partial socket buffers, signal interruptions) are invisible to
//! callers; the round-trip is pinned by a test that delivers one byte at
//! a time.
//!
//! Particle and acceleration payloads are fixed-width little-endian f64
//! bit patterns — **not** JSON — so state migrating between ranks and
//! results returning to clients survive bit-for-bit. That is what lets
//! the force-equivalence gates demand ≤1e-12 (in practice: bitwise)
//! against the single-process path.

use bhut_geom::{Particle, Vec3};
use std::io::{Read, Write};
use std::time::Duration;

/// Hard ceiling on one frame's payload (64 MiB) — a corrupted length
/// prefix must not trigger an unbounded allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Encoded size of one [`Particle`]: id + mass + pos + vel.
pub const PARTICLE_BYTES: usize = 4 + 8 * 7;

/// Encoded size of one force record: id + accel + potential.
pub const FORCE_BYTES: usize = 4 + 8 * 4;

/// Write one `(tag, payload)` frame. `write_all` absorbs short writes.
pub fn write_frame(w: &mut impl Write, tag: u16, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() as u64 <= MAX_FRAME as u64, "frame too large");
    let mut header = [0u8; 6];
    header[..2].copy_from_slice(&tag.to_le_bytes());
    header[2..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `read_exact` absorbs short reads; a length prefix over
/// [`MAX_FRAME`] is rejected as corruption instead of allocated.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<(u16, Vec<u8>)> {
    let mut header = [0u8; 6];
    r.read_exact(&mut header)?;
    let tag = u16::from_le_bytes([header[0], header[1]]);
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Append an f64's little-endian bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a u32, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a u64, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read the f64 at byte offset `at`. Panics on a short buffer — callers
/// length-check the payload before walking it.
pub fn get_f64(b: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

/// Read the u32 at byte offset `at`.
pub fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

/// Read the u64 at byte offset `at`.
pub fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

/// Bit-exact particle encoding (id, mass, pos, vel — little-endian).
pub fn encode_particles(particles: &[Particle]) -> Vec<u8> {
    let mut out = Vec::with_capacity(particles.len() * PARTICLE_BYTES);
    for p in particles {
        out.extend_from_slice(&p.id.to_le_bytes());
        put_f64(&mut out, p.mass);
        for v in [p.pos.x, p.pos.y, p.pos.z, p.vel.x, p.vel.y, p.vel.z] {
            put_f64(&mut out, v);
        }
    }
    out
}

pub fn decode_particles(bytes: &[u8]) -> Result<Vec<Particle>, String> {
    if !bytes.len().is_multiple_of(PARTICLE_BYTES) {
        return Err(format!("particle payload of {} bytes is not a multiple", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / PARTICLE_BYTES);
    for chunk in bytes.chunks_exact(PARTICLE_BYTES) {
        out.push(Particle::new(
            get_u32(chunk, 0),
            get_f64(chunk, 4),
            Vec3::new(get_f64(chunk, 12), get_f64(chunk, 20), get_f64(chunk, 28)),
            Vec3::new(get_f64(chunk, 36), get_f64(chunk, 44), get_f64(chunk, 52)),
        ));
    }
    Ok(out)
}

/// Bit-exact (id, acceleration, potential) records.
pub fn encode_forces(records: &[(u32, Vec3, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * FORCE_BYTES);
    for (id, a, phi) in records {
        out.extend_from_slice(&id.to_le_bytes());
        for v in [a.x, a.y, a.z, *phi] {
            put_f64(&mut out, v);
        }
    }
    out
}

pub fn decode_forces(bytes: &[u8]) -> Result<Vec<(u32, Vec3, f64)>, String> {
    if !bytes.len().is_multiple_of(FORCE_BYTES) {
        return Err(format!("force payload of {} bytes is not a multiple", bytes.len()));
    }
    Ok(bytes
        .chunks_exact(FORCE_BYTES)
        .map(|c| {
            (
                get_u32(c, 0),
                Vec3::new(get_f64(c, 4), get_f64(c, 12), get_f64(c, 20)),
                get_f64(c, 28),
            )
        })
        .collect())
}

/// `(id, weight)` pairs — DPDA's measured per-particle loads.
pub fn encode_weights(pairs: &[(u32, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(pairs.len() * 12);
    for (id, w) in pairs {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

pub fn decode_weights(bytes: &[u8]) -> Result<Vec<(u32, u64)>, String> {
    if !bytes.len().is_multiple_of(12) {
        return Err(format!("weight payload of {} bytes is not a multiple", bytes.len()));
    }
    Ok(bytes
        .chunks_exact(12)
        .map(|c| (get_u32(c, 0), u64::from_le_bytes(c[4..12].try_into().expect("8 bytes"))))
        .collect())
}

/// f64 vectors for reductions (bit patterns, not decimal text).
pub fn encode_f64s(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for &v in vals {
        put_f64(&mut out, v);
    }
    out
}

pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err(format!("f64 payload of {} bytes is not a multiple", bytes.len()));
    }
    Ok(bytes.chunks_exact(8).map(|c| get_f64(c, 0)).collect())
}

/// Jittered exponential backoff for connect/accept/retry loops.
///
/// Delays double from `base` up to `cap`, each drawn uniformly from
/// `[exp/2, exp]` ("equal jitter") by a deterministic per-instance
/// generator, so `p` peers retrying against the same listener spread out
/// instead of polling in lockstep. Every delay is additionally clamped to
/// the remaining budget before a deadline, so backoff never overshoots it.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// Production schedule: 1 ms doubling to a 50 ms ceiling.
    pub fn new(seed: u64) -> Self {
        Backoff::with_limits(seed, Duration::from_millis(1), Duration::from_millis(50))
    }

    pub fn with_limits(seed: u64, base: Duration, cap: Duration) -> Self {
        // splitmix64 seeding keeps adjacent seeds (rank indices) decorrelated.
        Backoff { base, cap, attempt: 0, state: seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B5 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The next delay to sleep, capped by `remaining` (time to deadline).
    pub fn next_delay(&mut self, remaining: Duration) -> Duration {
        let exp =
            self.base.saturating_mul(1u32 << self.attempt.min(20)).min(self.cap).as_secs_f64();
        self.attempt = self.attempt.saturating_add(1);
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(exp * (0.5 + 0.5 * unit)).min(remaining)
    }

    /// Restart the schedule (e.g. after a successful accept, for the next
    /// pending peer).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `chunk` bytes per call and a reader
    /// that returns at most `chunk` bytes per call — the pathological
    /// short-read/short-write stream.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let take = buf.len().min(self.chunk);
            self.data.extend_from_slice(&buf[..take]);
            Ok(take)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = buf.len().min(self.chunk).min(self.data.len() - self.pos);
            buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
            self.pos += take;
            Ok(take)
        }
    }

    #[test]
    fn framing_survives_short_reads_and_writes() {
        let payload: Vec<u8> = (0..1031u32).map(|i| (i % 251) as u8).collect();
        for chunk in [1, 2, 3, 7, 1024] {
            let mut stream = Trickle { data: Vec::new(), pos: 0, chunk };
            write_frame(&mut stream, 42, &payload).unwrap();
            write_frame(&mut stream, 7, b"").unwrap();
            let (tag, got) = read_frame(&mut stream).unwrap();
            assert_eq!(tag, 42);
            assert_eq!(got, payload, "chunk {chunk}");
            let (tag, got) = read_frame(&mut stream).unwrap();
            assert_eq!(tag, 7);
            assert!(got.is_empty());
        }
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut stream = Trickle { data: Vec::new(), pos: 0, chunk: usize::MAX >> 1 };
        write_frame(&mut stream, 1, &[1, 2, 3, 4]).unwrap();
        stream.data.truncate(stream.data.len() - 2);
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut stream = Trickle { data: bytes, pos: 0, chunk: 64 };
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn particle_roundtrip_is_bitwise() {
        let particles = vec![
            Particle::new(0, 0.1 + 0.2, Vec3::new(1.0 / 3.0, -2e-301, f64::MIN_POSITIVE), {
                Vec3::new(0.1, 0.2, 0.3)
            }),
            Particle::new(u32::MAX - 1, 5e300, Vec3::ZERO, Vec3::new(-0.0, 1e-17, 2.5)),
        ];
        let back = decode_particles(&encode_particles(&particles)).unwrap();
        assert_eq!(back.len(), particles.len());
        for (a, b) in particles.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.mass.to_bits(), b.mass.to_bits());
            for (x, y) in [(a.pos, b.pos), (a.vel, b.vel)] {
                assert_eq!(x.x.to_bits(), y.x.to_bits());
                assert_eq!(x.y.to_bits(), y.y.to_bits());
                assert_eq!(x.z.to_bits(), y.z.to_bits());
            }
        }
        assert!(decode_particles(&[0u8; PARTICLE_BYTES - 1]).is_err());
    }

    #[test]
    fn force_weight_and_f64_roundtrips() {
        let forces = vec![(3u32, Vec3::new(0.1, -0.2, 1.0 / 7.0), -1.5e-13)];
        let back = decode_forces(&encode_forces(&forces)).unwrap();
        assert_eq!(back[0].0, 3);
        assert_eq!(back[0].1.x.to_bits(), forces[0].1.x.to_bits());
        assert_eq!(back[0].2.to_bits(), forces[0].2.to_bits());

        let weights = vec![(9u32, u64::MAX), (0, 0)];
        assert_eq!(decode_weights(&encode_weights(&weights)).unwrap(), weights);

        let vals = vec![0.1, f64::NEG_INFINITY, -0.0];
        let back = decode_f64s(&encode_f64s(&vals)).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_forces(&[0u8; 5]).is_err());
        assert!(decode_weights(&[0u8; 5]).is_err());
        assert!(decode_f64s(&[0u8; 5]).is_err());
    }

    #[test]
    fn scalar_helpers_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 5);
        put_f64(&mut buf, -0.0);
        assert_eq!(get_u32(&buf, 0), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 4), u64::MAX - 5);
        assert_eq!(get_f64(&buf, 12).to_bits(), (-0.0f64).to_bits());
    }

    /// The backoff schedule: delays live in the equal-jitter envelope
    /// `[exp/2, exp]` of a doubling-to-cap exponential, never exceed the
    /// remaining deadline budget, and replay exactly for a fixed seed.
    #[test]
    fn backoff_schedule_is_jittered_capped_and_deterministic() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(50);
        let far = Duration::from_secs(60);
        let mut b = Backoff::with_limits(7, base, cap);
        let delays: Vec<Duration> = (0..12).map(|_| b.next_delay(far)).collect();
        for (i, d) in delays.iter().enumerate() {
            let exp = base.saturating_mul(1u32 << i.min(20)).min(cap);
            assert!(*d <= exp, "attempt {i}: {d:?} above envelope {exp:?}");
            assert!(*d * 2 >= exp, "attempt {i}: {d:?} below half-envelope {exp:?}");
        }
        // Deep attempts sit at the cap's envelope, not past it.
        assert!(delays[11] <= cap && delays[11] * 2 >= cap);

        // Same seed, same schedule; different seed, different jitter.
        let mut b2 = Backoff::with_limits(7, base, cap);
        let replay: Vec<Duration> = (0..12).map(|_| b2.next_delay(far)).collect();
        assert_eq!(delays, replay);
        let mut b3 = Backoff::with_limits(8, base, cap);
        let other: Vec<Duration> = (0..12).map(|_| b3.next_delay(far)).collect();
        assert_ne!(delays, other);

        // The deadline budget clamps every delay.
        let mut b4 = Backoff::with_limits(7, base, cap);
        for _ in 0..6 {
            let _ = b4.next_delay(far);
        }
        let tight = Duration::from_micros(300);
        assert!(b4.next_delay(tight) <= tight);

        // reset() restarts the exponential ramp.
        b4.reset();
        let d = b4.next_delay(far);
        assert!(d <= base, "post-reset delay {d:?} above base {base:?}");
    }
}
