//! Portable SIMD substrate for the batched force kernels.
//!
//! The crates.io registry is unreachable in this build environment, so
//! instead of `wide`/`portable_simd` this small crate provides the three
//! pieces the SoA interaction-slab kernels need:
//!
//! * **Fixed-width lane types** — [`F64s`] (4 × f64), [`F32s`] (8 × f32) and
//!   the widening accumulator [`F64w`] (8 × f64). They are plain arrays with
//!   `#[inline(always)]` element-wise ops: compiled inside a
//!   `#[target_feature(enable = "avx2")]` context (see [`simd_dispatch!`])
//!   LLVM lowers every op to one 256-bit vector instruction; compiled at the
//!   baseline ISA they stay correct scalar/SSE2 code. This is the same
//!   multiversioning idiom `pulp`/`multiversion` package, without the
//!   dependency.
//! * **Runtime dispatch** — [`isa`] probes the CPU once (cached) into three
//!   tiers (AVX-512F ⊃ AVX2+FMA ⊃ portable) and the [`simd_dispatch!`]
//!   macro emits a portable body plus an AVX2+FMA-compiled clone of it,
//!   selecting per call. The `force-scalar` feature pins the portable body
//!   everywhere, which is also the only path on non-x86_64.
//! * **Aligned, padded slab storage** — [`AlignedF64Slab`] /
//!   [`AlignedF32Slab`] / [`AlignedU32Slab`] back the reusable SoA scratch
//!   with 64-byte-aligned blocks, so every [`PAD_MULTIPLE`]-element chunk
//!   starts on a cache line and a slab padded with sentinels never makes a
//!   vector loop straddle a ragged tail.
//!
//! [`KernelPrecision`] names the arithmetic modes the kernels implement on
//! top of this: exact scalar f64 (the pre-SIMD reference), vectorized f64
//! (the default), and mixed f32-lane/f64-accumulate.

use std::sync::atomic::{AtomicU8, Ordering};

/// f64 lanes per vector op (256-bit registers).
pub const F64_LANES: usize = 4;
/// f32 lanes per vector op (256-bit registers).
pub const F32_LANES: usize = 8;
/// Slab padding granularity, in elements. Eight f64 (one 64-byte cache
/// line) is a whole number of both [`F64_LANES`] and [`F32_LANES`] chunks,
/// so one padded length serves every kernel precision.
pub const PAD_MULTIPLE: usize = 8;
/// Slab block alignment, bytes.
pub const SLAB_ALIGN: usize = 64;

/// Arithmetic mode of the batched P2P/M2P kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPrecision {
    /// Vectorized f64 lanes — same per-interaction arithmetic as
    /// [`KernelPrecision::ScalarF64`] up to summation order and an
    /// inverse-sqrt refactoring (≤1e-12 relative on full sweeps). The
    /// default.
    #[default]
    F64,
    /// f32 lane arithmetic with per-target f64 accumulation. Lane roundoff
    /// (~1e-6 relative) sits far below the θ-MAC discretization error, which
    /// the `simd` bench bin verifies against the direct-sum reference.
    MixedF32,
    /// The original scalar loops, bit-identical to the per-particle walk's
    /// kernels — the accuracy and performance baseline.
    ScalarF64,
}

impl KernelPrecision {
    /// Short stable name for configs/JSON (`"f64" | "mixed_f32" |
    /// "scalar_f64"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelPrecision::F64 => "f64",
            KernelPrecision::MixedF32 => "mixed_f32",
            KernelPrecision::ScalarF64 => "scalar_f64",
        }
    }

    /// Inverse of [`KernelPrecision::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "f64" => Ok(KernelPrecision::F64),
            "mixed_f32" => Ok(KernelPrecision::MixedF32),
            "scalar_f64" => Ok(KernelPrecision::ScalarF64),
            other => Err(format!("unknown kernel precision {other:?}")),
        }
    }
}

/// Instruction sets the dispatcher distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// 512-bit vectors (AVX-512F, which implies the AVX2+FMA tier too).
    /// Only the f64 slab kernels have 512-bit bodies; everything else runs
    /// its AVX2 body under this tier.
    Avx512,
    /// 256-bit vectors via the AVX2+FMA-compiled clone of a dispatched
    /// body. FMA is part of the tier contract because the f64 kernels'
    /// Newton–Raphson rsqrt uses a fused negative-multiply-add.
    Avx2,
    /// The baseline-ISA body (scalar/SSE2 on x86_64, NEON-autovec on
    /// aarch64) — always available, and pinned by `force-scalar`.
    Portable,
}

const ISA_UNKNOWN: u8 = 0;
const ISA_AVX2: u8 = 1;
const ISA_PORTABLE: u8 = 2;
const ISA_AVX512: u8 = 3;

static ISA_CACHE: AtomicU8 = AtomicU8::new(ISA_UNKNOWN);

/// The instruction set dispatched kernels run under on this machine,
/// probed once per process and cached.
pub fn isa() -> Isa {
    match ISA_CACHE.load(Ordering::Relaxed) {
        ISA_AVX512 => Isa::Avx512,
        ISA_AVX2 => Isa::Avx2,
        ISA_PORTABLE => Isa::Portable,
        _ => {
            let isa = probe();
            let tag = match isa {
                Isa::Avx512 => ISA_AVX512,
                Isa::Avx2 => ISA_AVX2,
                Isa::Portable => ISA_PORTABLE,
            };
            ISA_CACHE.store(tag, Ordering::Relaxed);
            isa
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
fn probe() -> Isa {
    let avx2 = std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
    if avx2 && std::is_x86_feature_detected!("avx512f") {
        Isa::Avx512
    } else if avx2 {
        Isa::Avx2
    } else {
        Isa::Portable
    }
}

#[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
fn probe() -> Isa {
    Isa::Portable
}

/// Emit a function twice — once portable, once compiled with
/// `#[target_feature(enable = "avx2,fma")]` on x86_64 — plus a thin runtime
/// dispatcher choosing by [`isa`] (the AVX-512 tier also takes the AVX2
/// clone). The body must be safe code; marking the clone `target_feature`
/// is what lets LLVM lower the lane types' loops to 256-bit instructions.
///
/// ```
/// bhut_simd::simd_dispatch! {
///     /// Sum of squares.
///     pub fn sum_sq(xs: &[f64]) -> f64 {
///         xs.iter().map(|x| x * x).sum()
///     }
/// }
/// assert_eq!(sum_sq(&[3.0, 4.0]), 25.0);
/// ```
#[macro_export]
macro_rules! simd_dispatch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident( $($arg:ident : $ty:ty),* $(,)? ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) -> $ret {
            #[inline(always)]
            fn portable($($arg: $ty),*) -> $ret $body

            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn avx2($($arg: $ty),*) -> $ret {
                portable($($arg),*)
            }

            #[cfg(target_arch = "x86_64")]
            if $crate::isa() != $crate::Isa::Portable {
                // SAFETY: both non-portable tiers runtime-detected AVX2+FMA
                // on this CPU (AVX-512F implies them).
                return unsafe { avx2($($arg),*) };
            }
            portable($($arg),*)
        }
    };
}

macro_rules! lane_type {
    ($(#[$meta:meta])* $name:ident, $elem:ty, $bits:ty, $lanes:expr, $zero:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name(pub [$elem; $lanes]);

        impl $name {
            pub const LANES: usize = $lanes;

            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                $name([v; $lanes])
            }

            #[inline(always)]
            pub fn zero() -> Self {
                Self::splat($zero)
            }

            /// Load the first `LANES` elements of `s`.
            #[inline(always)]
            pub fn load(s: &[$elem]) -> Self {
                let mut v = [$zero; $lanes];
                v.copy_from_slice(&s[..$lanes]);
                $name(v)
            }

            #[allow(clippy::should_implement_trait)] // lane op, not std::ops
            #[inline(always)]
            pub fn add(self, o: Self) -> Self {
                let mut v = self.0;
                for j in 0..$lanes {
                    v[j] += o.0[j];
                }
                $name(v)
            }

            #[allow(clippy::should_implement_trait)] // lane op, not std::ops
            #[inline(always)]
            pub fn sub(self, o: Self) -> Self {
                let mut v = self.0;
                for j in 0..$lanes {
                    v[j] -= o.0[j];
                }
                $name(v)
            }

            #[allow(clippy::should_implement_trait)] // lane op, not std::ops
            #[inline(always)]
            pub fn mul(self, o: Self) -> Self {
                let mut v = self.0;
                for j in 0..$lanes {
                    v[j] *= o.0[j];
                }
                $name(v)
            }

            #[allow(clippy::should_implement_trait)] // lane op, not std::ops
            #[inline(always)]
            pub fn div(self, o: Self) -> Self {
                let mut v = self.0;
                for j in 0..$lanes {
                    v[j] /= o.0[j];
                }
                $name(v)
            }

            #[inline(always)]
            pub fn sqrt(self) -> Self {
                let mut v = self.0;
                for j in 0..$lanes {
                    v[j] = v[j].sqrt();
                }
                $name(v)
            }

            /// Reciprocal square root (`1/√x`), computed as an exact IEEE
            /// sqrt followed by one division — the "fused rsqrt" the force
            /// kernel shares between its potential and acceleration halves.
            #[inline(always)]
            pub fn rsqrt(self) -> Self {
                Self::splat(1.0 as $elem).div(self.sqrt())
            }

            /// Elementwise maximum, in the x86 `maxpd`/`maxps` convention
            /// (`self > o ? self : o`, so `o` wins ties and NaNs): the
            /// kernels clamp `r²` to [`crate::R2_FLOOR_F64`] /
            /// [`crate::R2_FLOOR_F32`] with this before the fused rsqrt,
            /// and the intrinsic bodies must agree bit for bit.
            #[inline(always)]
            pub fn max(self, o: Self) -> Self {
                let mut v = self.0;
                for j in 0..$lanes {
                    v[j] = if v[j] > o.0[j] { v[j] } else { o.0[j] };
                }
                $name(v)
            }

            /// Horizontal sum, in fixed lane order (deterministic across
            /// ISAs — the dispatcher never changes results, only speed).
            #[inline(always)]
            pub fn hsum(self) -> $elem {
                let mut acc = $zero;
                for j in 0..$lanes {
                    acc += self.0[j];
                }
                acc
            }
        }
    };
}

lane_type!(
    /// Four f64 lanes (one 256-bit register under AVX2).
    F64s,
    f64,
    u64,
    4,
    0.0f64
);
lane_type!(
    /// Eight f32 lanes (one 256-bit register under AVX2).
    F32s,
    f32,
    u32,
    8,
    0.0f32
);

/// Eight f64 accumulator lanes matching one [`F32s`] chunk: the mixed
/// precision kernels compute per-interaction terms in f32 and widen each
/// chunk into this before accumulating, so roundoff does not compound with
/// slab length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64w(pub [f64; F32_LANES]);

impl F64w {
    #[inline(always)]
    pub fn zero() -> Self {
        F64w([0.0; F32_LANES])
    }

    /// Widen an f32 chunk to f64 and add it lane-wise.
    #[inline(always)]
    pub fn add_widened(&mut self, o: F32s) {
        for j in 0..F32_LANES {
            self.0[j] += o.0[j] as f64;
        }
    }

    #[inline(always)]
    pub fn hsum(self) -> f64 {
        let mut acc = 0.0;
        for j in 0..F32_LANES {
            acc += self.0[j];
        }
        acc
    }
}

/// Floor clamped onto `r²` (one `max` per chunk) before the fused rsqrt, so
/// the vector sqrt/divide run unconditionally on every lane without ever
/// producing an Inf or NaN. Padding sentinels sit at the origin with zero
/// mass, so their (clamped) lanes still contribute exactly `+0.0`; the clamp
/// is a bitwise no-op on any lane with `r² > floor`, i.e. on every physical
/// configuration — separations would have to drop below `1e-50` (f64) before
/// it rounds anything. The value is chosen so the worst-case amplified terms
/// (`φ ≤ m/√floor`, `|a| ≤ m/floor`) stay finite rather than overflowing
/// into the accumulators.
pub const R2_FLOOR_F64: f64 = 1e-100;

/// [`R2_FLOOR_F64`] for the f32 mirror kernels (separations below `1e-6` in
/// simulation units only arise with `ε = 0`; `m/floor = 1e12·m` stays well
/// inside f32 range).
pub const R2_FLOOR_F32: f32 = 1e-12;

/// Seed constant for [`rsqrt_nr_f64`]: `magic - (bits >> 1)` flips the
/// exponent around 1.0 and halves it, landing within ~3.4% of `1/√x`.
/// This is the f64 analogue of the classic f32 `0x5f3759df` trick.
pub const RSQRT_MAGIC_F64: u64 = 0x5FE6_EB50_C7B5_37A9;

/// Division-free reciprocal square root: integer magic-constant seed plus
/// four Newton–Raphson steps, good to ≤2 ulp over the kernels' whole input
/// range (asserted in the tests across `[1e-100, 1e100]`).
///
/// The force kernels use this instead of `1/√x` because `vsqrtpd` and
/// `vdivpd` share one unpipelined divider port that caps the f64 kernel at
/// ~½ of its mul/add throughput; the NR form is pure mul/FMA. Determinism
/// is why the seed is a *software* bit trick rather than `vrsqrt14pd`:
/// hardware estimate tables differ per microarchitecture, while this exact
/// shift/subtract — refined only by correctly-rounded mul and fused
/// negative-multiply-add — gives every ISA tier the same bits.
///
/// The fused step is written `(-xh).mul_add(t, 1.5)`, which is the IEEE
/// operation `fma(-xh, t, 1.5)` — exactly what `vfnmadd` computes — so the
/// intrinsic bodies can mirror it bit for bit.
#[inline(always)]
pub fn rsqrt_nr_f64(x: f64) -> f64 {
    let xh = 0.5 * x;
    let mut y = f64::from_bits(RSQRT_MAGIC_F64.wrapping_sub(x.to_bits() >> 1));
    for _ in 0..4 {
        let t = y * y;
        let r = (-xh).mul_add(t, 1.5);
        y *= r;
    }
    y
}

impl F64s {
    /// Lane-wise [`rsqrt_nr_f64`] — the f64 kernels' reciprocal square
    /// root. (The f32 kernels keep the exact sqrt+div [`F32s::rsqrt`]: the
    /// f32 divider is fast enough that NR would cost more than it saves.)
    #[inline(always)]
    pub fn rsqrt_nr(self) -> Self {
        let mut v = self.0;
        for lane in &mut v {
            *lane = rsqrt_nr_f64(*lane);
        }
        F64s(v)
    }
}

/// Mask a mass chunk by id: lanes whose id equals `target` contribute zero
/// mass (the slab-kernel form of the per-particle walk's `skip_id`).
/// Multiplies by a `{1.0, 0.0}` factor rather than bit-selecting the loaded
/// mass: a multiply is pure data flow LLVM cannot legally fold away
/// (sign/NaN rules), while a select on a load tempts it into per-lane
/// conditional loads that re-scalarize the loop. Exact: masses are finite
/// and non-negative, so `m·1.0 = m` and `m·0.0 = +0.0` bit for bit.
#[inline(always)]
pub fn masked_mass_f64(ms: &[f64], ids: &[u32], target: u32) -> F64s {
    let mut v = [0.0f64; F64_LANES];
    for j in 0..F64_LANES {
        let keep = u64::from(ids[j] != target).wrapping_neg();
        v[j] = ms[j] * f64::from_bits(1.0f64.to_bits() & keep);
    }
    F64s(v)
}

/// [`masked_mass_f64`] for the f32 mirror slabs.
#[inline(always)]
pub fn masked_mass_f32(ms: &[f32], ids: &[u32], target: u32) -> F32s {
    let mut v = [0.0f32; F32_LANES];
    for j in 0..F32_LANES {
        let keep = u32::from(ids[j] != target).wrapping_neg();
        v[j] = ms[j] * f32::from_bits(1.0f32.to_bits() & keep);
    }
    F32s(v)
}

macro_rules! aligned_slab {
    ($(#[$meta:meta])* $name:ident, $block:ident, $elem:ty, $per:expr, $zero:expr) => {
        #[repr(C, align(64))]
        #[derive(Debug, Clone, Copy)]
        struct $block([$elem; $per]);

        $(#[$meta])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            blocks: Vec<$block>,
            /// Elements pushed since the last clear (excludes padding).
            len: usize,
            /// Elements covered by [`Self::pad_to`] (≥ `len` once padded).
            padded: usize,
        }

        impl $name {
            pub fn new() -> Self {
                Self::default()
            }

            /// Logical (un-padded) element count.
            #[inline(always)]
            pub fn len(&self) -> usize {
                self.len
            }

            #[inline(always)]
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Allocated capacity, elements.
            pub fn capacity(&self) -> usize {
                self.blocks.len() * $per
            }

            /// Empty the slab, keeping capacity.
            #[inline]
            pub fn clear(&mut self) {
                self.len = 0;
                self.padded = 0;
            }

            #[inline(always)]
            pub fn push(&mut self, v: $elem) {
                let (b, j) = (self.len / $per, self.len % $per);
                if b == self.blocks.len() {
                    self.blocks.push($block([$zero; $per]));
                }
                self.blocks[b].0[j] = v;
                self.len += 1;
                // Pushing invalidates any previous padding.
                self.padded = self.len;
            }

            /// Extend the slab with `sentinel` until its padded length is a
            /// multiple of `multiple` (the logical length is unchanged).
            pub fn pad_to(&mut self, multiple: usize, sentinel: $elem) {
                let target = self.len.next_multiple_of(multiple.max(1));
                while self.blocks.len() * $per < target {
                    self.blocks.push($block([$zero; $per]));
                }
                let len = self.len;
                let flat = self.flat_mut();
                for slot in &mut flat[len..target] {
                    *slot = sentinel;
                }
                self.padded = target;
            }

            /// Padded element count (= logical length until [`Self::pad_to`]
            /// runs).
            #[inline(always)]
            pub fn padded_len(&self) -> usize {
                self.padded.max(self.len)
            }

            /// The slab including its padding sentinels — what the vector
            /// kernels iterate. 64-byte aligned; length a whole number of
            /// pad multiples once padded.
            #[inline(always)]
            pub fn padded(&self) -> &[$elem] {
                &self.flat()[..self.padded_len()]
            }

            /// Drop capacity beyond `max(keep, len)` elements and release
            /// the excess allocation.
            pub fn shrink_to(&mut self, keep: usize) {
                let blocks = keep.max(self.padded_len()).div_ceil($per);
                if blocks < self.blocks.len() {
                    self.blocks.truncate(blocks);
                    self.blocks.shrink_to_fit();
                }
            }

            #[inline(always)]
            fn flat(&self) -> &[$elem] {
                // SAFETY: `Vec<$block>` stores its `[$elem; $per]` arrays
                // contiguously; reinterpreting as a flat element slice of
                // `blocks.len() * $per` elements is layout-exact.
                unsafe {
                    std::slice::from_raw_parts(
                        self.blocks.as_ptr().cast::<$elem>(),
                        self.blocks.len() * $per,
                    )
                }
            }

            #[inline(always)]
            fn flat_mut(&mut self) -> &mut [$elem] {
                // SAFETY: as in `flat`.
                unsafe {
                    std::slice::from_raw_parts_mut(
                        self.blocks.as_mut_ptr().cast::<$elem>(),
                        self.blocks.len() * $per,
                    )
                }
            }
        }

        impl std::ops::Deref for $name {
            type Target = [$elem];

            /// The logical contents, padding excluded — so `slab.len()`,
            /// indexing and iteration behave exactly like the `Vec` the
            /// slab replaced.
            #[inline(always)]
            fn deref(&self) -> &[$elem] {
                &self.flat()[..self.len]
            }
        }

        impl Extend<$elem> for $name {
            fn extend<I: IntoIterator<Item = $elem>>(&mut self, iter: I) {
                for v in iter {
                    self.push(v);
                }
            }
        }
    };
}

aligned_slab!(
    /// Growable f64 slab in 64-byte-aligned blocks.
    AlignedF64Slab,
    BlockF64,
    f64,
    8,
    0.0f64
);
aligned_slab!(
    /// Growable f32 slab in 64-byte-aligned blocks.
    AlignedF32Slab,
    BlockF32,
    f32,
    16,
    0.0f32
);
aligned_slab!(
    /// Growable u32 slab in 64-byte-aligned blocks.
    AlignedU32Slab,
    BlockU32,
    u32,
    16,
    0u32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_multiple_covers_both_lane_widths() {
        assert_eq!(PAD_MULTIPLE % F64_LANES, 0);
        assert_eq!(PAD_MULTIPLE % F32_LANES, 0);
        assert_eq!(PAD_MULTIPLE * std::mem::size_of::<f64>(), SLAB_ALIGN);
    }

    #[test]
    fn isa_is_stable_and_respects_force_scalar() {
        let a = isa();
        assert_eq!(a, isa(), "cached probe must be deterministic");
        if cfg!(feature = "force-scalar") || !cfg!(target_arch = "x86_64") {
            assert_eq!(a, Isa::Portable);
        }
    }

    #[test]
    fn lane_arithmetic_matches_scalar() {
        let a = F64s([1.0, 2.0, 3.0, 4.0]);
        let b = F64s([0.5, 0.25, 2.0, 8.0]);
        assert_eq!(a.add(b).0, [1.5, 2.25, 5.0, 12.0]);
        assert_eq!(a.sub(b).0, [0.5, 1.75, 1.0, -4.0]);
        assert_eq!(a.mul(b).0, [0.5, 0.5, 6.0, 32.0]);
        assert_eq!(a.div(b).0, [2.0, 8.0, 1.5, 0.5]);
        assert_eq!(F64s([4.0, 9.0, 16.0, 0.25]).sqrt().0, [2.0, 3.0, 4.0, 0.5]);
        assert_eq!(a.hsum(), 10.0);
        let r = F64s([4.0, 0.0, 1.0, 0.0]).rsqrt();
        assert_eq!(r.0[0], 0.5);
        assert!(r.0[1].is_infinite());
        // max follows the x86 convention: ties and NaNs take the second
        // operand, and a clamp is a bitwise no-op on lanes above the floor.
        let clamped = F64s([4.0, 0.0, 1.0, 0.0]).max(F64s::splat(R2_FLOOR_F64));
        assert_eq!(clamped.0, [4.0, R2_FLOOR_F64, 1.0, R2_FLOOR_F64]);
        assert!(clamped.rsqrt().0.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nr_rsqrt_is_two_ulp_accurate_over_the_kernel_range() {
        // Log-uniform sweep across everything the floored kernels can feed
        // it, from the r² floor up to far beyond any physical separation.
        for k in 0..=100_000 {
            let x = 10f64.powf(-100.0 + 200.0 * (k as f64 / 100_000.0));
            let exact = 1.0 / x.sqrt();
            let got = rsqrt_nr_f64(x);
            let rel = ((got - exact) / exact).abs();
            assert!(rel < 5e-16, "x={x:e}: got {got:e}, exact {exact:e}, rel {rel:e}");
        }
        // And the lane version is the scalar helper per lane, bit for bit.
        let xs = [R2_FLOOR_F64, 1e-8, 3.7, 1e2];
        let lanes = F64s(xs).rsqrt_nr();
        for (lane, &x) in lanes.0.iter().zip(&xs) {
            assert_eq!(*lane, rsqrt_nr_f64(x));
        }
    }

    #[test]
    fn widening_accumulator_is_f64_exact_per_chunk() {
        let mut acc = F64w::zero();
        let chunk = F32s([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        acc.add_widened(chunk);
        acc.add_widened(chunk);
        assert_eq!(acc.hsum(), 72.0);
    }

    #[test]
    fn masked_mass_zeroes_the_target_lane() {
        let ms = [1.0f64, 2.0, 3.0, 4.0];
        let ids = [7u32, 9, 11, 13];
        assert_eq!(masked_mass_f64(&ms, &ids, 11).0, [1.0, 2.0, 0.0, 4.0]);
        assert_eq!(masked_mass_f64(&ms, &ids, 99).0, ms);
        let ms32 = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ids32 = [0u32, 1, 2, 3, 4, 5, 6, 7];
        assert_eq!(masked_mass_f32(&ms32, &ids32, 0).0[0], 0.0);
        assert_eq!(masked_mass_f32(&ms32, &ids32, 0).0[1..], ms32[1..]);
    }

    #[test]
    fn dispatched_body_matches_portable() {
        simd_dispatch! {
            fn dot(xs: &[f64], ys: &[f64]) -> f64 {
                let mut acc = F64s::zero();
                for i in (0..xs.len()).step_by(F64_LANES) {
                    acc = acc.add(F64s::load(&xs[i..]).mul(F64s::load(&ys[i..])));
                }
                acc.hsum()
            }
        }
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let want: f64 = {
            // Same order of operations as the lane body: per-lane partial
            // sums, then a fixed-order horizontal reduction.
            let mut lanes = [0.0f64; F64_LANES];
            for i in (0..xs.len()).step_by(F64_LANES) {
                for j in 0..F64_LANES {
                    lanes[j] += xs[i + j] * ys[i + j];
                }
            }
            lanes.iter().sum()
        };
        assert_eq!(dot(&xs, &ys), want, "dispatch must never change results");
    }

    #[test]
    fn slab_push_pad_and_alignment() {
        let mut s = AlignedF64Slab::new();
        for i in 0..11 {
            s.push(i as f64);
        }
        assert_eq!(s.len(), 11);
        assert_eq!(&s[..3], &[0.0, 1.0, 2.0]);
        s.pad_to(PAD_MULTIPLE, -1.0);
        assert_eq!(s.len(), 11, "padding must not change the logical length");
        assert_eq!(s.padded_len(), 16);
        assert_eq!(&s.padded()[11..], &[-1.0; 5]);
        assert_eq!(s.padded().as_ptr() as usize % SLAB_ALIGN, 0, "slab base must be 64B aligned");
        // A later push invalidates the padding bookkeeping.
        s.push(11.0);
        assert_eq!(s.padded_len(), 12);
        s.clear();
        assert_eq!(s.len(), 0);
        assert_eq!(s.padded_len(), 0);
        assert!(s.capacity() >= 16, "clear keeps capacity");
    }

    #[test]
    fn slab_empty_pad_is_empty() {
        let mut s = AlignedF64Slab::new();
        s.pad_to(PAD_MULTIPLE, 0.0);
        assert_eq!(s.padded_len(), 0);
        assert!(s.padded().is_empty());
    }

    #[test]
    fn slab_shrink_releases_capacity_but_never_contents() {
        let mut s = AlignedU32Slab::new();
        for i in 0..10_000 {
            s.push(i);
        }
        s.clear();
        for i in 0..100u32 {
            s.push(i);
        }
        let before = s.capacity();
        assert!(before >= 10_000);
        s.shrink_to(256);
        assert!(s.capacity() < before);
        assert!(s.capacity() >= 256);
        assert_eq!(s.len(), 100);
        assert_eq!(s[99], 99);
        // Shrinking below the live contents clamps to them.
        s.shrink_to(0);
        assert!(s.capacity() >= 100);
        assert_eq!(&s[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn slab_reuse_roundtrip() {
        let mut s = AlignedF32Slab::new();
        for round in 0..3 {
            s.clear();
            for i in 0..33 {
                s.push((round * 100 + i) as f32);
            }
            s.pad_to(PAD_MULTIPLE, 0.0);
            assert_eq!(s.len(), 33);
            assert_eq!(s.padded_len(), 40);
            assert_eq!(s[0], (round * 100) as f32);
            assert_eq!(s.padded()[39], 0.0);
        }
    }

    #[test]
    fn precision_names_roundtrip() {
        for p in [KernelPrecision::F64, KernelPrecision::MixedF32, KernelPrecision::ScalarF64] {
            assert_eq!(KernelPrecision::parse(p.as_str()), Ok(p));
        }
        assert!(KernelPrecision::parse("f16").is_err());
        assert_eq!(KernelPrecision::default(), KernelPrecision::F64);
    }
}
