//! Execution tracing: per-processor busy intervals from a BSP run.
//!
//! A [`Trace`] records one span per (processor, superstep) with the virtual
//! start/end clocks and the messages sent, enough to draw the classic
//! processor–time Gantt chart of a parallel run (the picture behind the
//! paper's Table 3 phase discussion). Serializes to JSON for external
//! plotting.
//!
//! The span type is the workspace-wide [`bhut_obs::Span`], so a simulated
//! trace and a wall-clock [`bhut_obs::StepProfile`] share one JSON schema
//! and plot on the same chart.

use serde::{Deserialize, Serialize};

pub use bhut_obs::Span;

/// A whole run's spans, in execution order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    pub fn record(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Total busy time of one processor.
    pub fn busy(&self, rank: usize) -> f64 {
        self.spans.iter().filter(|s| s.rank == rank).map(|s| s.end - s.start).sum()
    }

    /// Idle time of `rank` relative to the global makespan.
    pub fn idle(&self, rank: usize) -> f64 {
        self.makespan() - self.busy(rank)
    }

    /// The run's end time.
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Machine utilization: Σ busy / (p · makespan).
    pub fn utilization(&self, p: usize) -> f64 {
        let total: f64 = self.spans.iter().map(|s| s.end - s.start).sum();
        let denom = p as f64 * self.makespan();
        if denom == 0.0 {
            1.0
        } else {
            total / denom
        }
    }

    /// JSON for external plotting.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, superstep: u64, start: f64, end: f64, sent: u64) -> Span {
        Span { rank, superstep, start, end, sent, phase: String::new() }
    }

    fn demo() -> Trace {
        let mut t = Trace::default();
        t.record(span(0, 0, 0.0, 2.0, 1));
        t.record(span(1, 0, 0.0, 1.0, 0));
        t.record(span(1, 1, 2.5, 4.0, 0));
        t
    }

    #[test]
    fn busy_idle_makespan() {
        let t = demo();
        assert_eq!(t.makespan(), 4.0);
        assert_eq!(t.busy(0), 2.0);
        assert_eq!(t.busy(1), 2.5);
        assert_eq!(t.idle(0), 2.0);
        assert!((t.utilization(2) - 4.5 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let t = demo();
        let j = t.to_json();
        let back: Trace = serde_json::from_str(&j).unwrap();
        assert_eq!(back.spans, t.spans);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.utilization(4), 1.0);
        // No spans: every processor is "idle for the whole (zero) run".
        assert_eq!(t.idle(0), 0.0);
        assert_eq!(t.busy(3), 0.0);
    }

    #[test]
    fn single_span() {
        let mut t = Trace::default();
        t.record(span(2, 0, 1.0, 3.5, 4));
        assert_eq!(t.makespan(), 3.5);
        assert_eq!(t.busy(2), 2.5);
        assert_eq!(t.idle(2), 1.0);
        // Ranks that never ran are idle for the whole makespan.
        assert_eq!(t.busy(0), 0.0);
        assert_eq!(t.idle(0), 3.5);
        assert!((t.utilization(1) - 2.5 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan() {
        // All spans are zero-width at t = 0: utilization degenerates to the
        // neutral 1.0 rather than dividing by zero.
        let mut t = Trace::default();
        t.record(span(0, 0, 0.0, 0.0, 0));
        t.record(span(1, 0, 0.0, 0.0, 0));
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.busy(0), 0.0);
        assert_eq!(t.idle(1), 0.0);
        assert_eq!(t.utilization(2), 1.0);
        assert_eq!(t.utilization(0), 1.0);
    }

    #[test]
    fn spans_share_the_obs_schema() {
        // `Trace` serializes machine spans with the same keys a wall-clock
        // `StepProfile` uses, so both plot with one script.
        let j = demo().to_json();
        for key in ["rank", "superstep", "start", "end", "sent", "phase"] {
            assert!(j.contains(key), "trace JSON missing {key}: {j}");
        }
    }
}
