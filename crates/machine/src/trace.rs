//! Execution tracing: per-processor busy intervals from a BSP run.
//!
//! A [`Trace`] records one span per (processor, superstep) with the virtual
//! start/end clocks and the messages sent, enough to draw the classic
//! processor–time Gantt chart of a parallel run (the picture behind the
//! paper's Table 3 phase discussion). Serializes to JSON for external
//! plotting.

use serde::{Deserialize, Serialize};

/// One busy interval of one virtual processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub rank: usize,
    pub superstep: u64,
    /// Virtual clock when the step began (after message-arrival waits).
    pub start: f64,
    /// Virtual clock when the step ended.
    pub end: f64,
    /// Messages sent during the step.
    pub sent: u64,
}

/// A whole run's spans, in execution order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    pub fn record(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Total busy time of one processor.
    pub fn busy(&self, rank: usize) -> f64 {
        self.spans.iter().filter(|s| s.rank == rank).map(|s| s.end - s.start).sum()
    }

    /// Idle time of `rank` relative to the global makespan.
    pub fn idle(&self, rank: usize) -> f64 {
        self.makespan() - self.busy(rank)
    }

    /// The run's end time.
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Machine utilization: Σ busy / (p · makespan).
    pub fn utilization(&self, p: usize) -> f64 {
        let total: f64 = self.spans.iter().map(|s| s.end - s.start).sum();
        let denom = p as f64 * self.makespan();
        if denom == 0.0 {
            1.0
        } else {
            total / denom
        }
    }

    /// JSON for external plotting.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Trace {
        let mut t = Trace::default();
        t.record(Span { rank: 0, superstep: 0, start: 0.0, end: 2.0, sent: 1 });
        t.record(Span { rank: 1, superstep: 0, start: 0.0, end: 1.0, sent: 0 });
        t.record(Span { rank: 1, superstep: 1, start: 2.5, end: 4.0, sent: 0 });
        t
    }

    #[test]
    fn busy_idle_makespan() {
        let t = demo();
        assert_eq!(t.makespan(), 4.0);
        assert_eq!(t.busy(0), 2.0);
        assert_eq!(t.busy(1), 2.5);
        assert_eq!(t.idle(0), 2.0);
        assert!((t.utilization(2) - 4.5 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let t = demo();
        let j = t.to_json();
        let back: Trace = serde_json::from_str(&j).unwrap();
        assert_eq!(back.spans, t.spans);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.utilization(4), 1.0);
    }
}
