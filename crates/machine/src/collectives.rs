//! Collective operations over per-processor state.
//!
//! §3 of the paper: the SPSA formulation is "coupled with two collective
//! communication operations" — an **all-to-all broadcast** that replicates
//! branch nodes / top-of-tree levels, and (for DPDA) an **all-to-all
//! personalized communication** that redistributes particles to their new
//! owners. These helpers move real data between the per-processor state
//! vectors of a phase-structured simulation and charge every processor's
//! clock with the topology's closed-form collective cost.
//!
//! They operate on a `&mut [f64]` of processor clocks: collectives are
//! bulk-synchronous, so all clocks first synchronize to the maximum (the
//! barrier the paper's loosely synchronous phases imply), then advance by
//! the collective's cost.

use crate::cost::CostModel;
use crate::topology::{Collective, Topology};

/// Collective executor bound to a machine.
#[derive(Debug, Clone, Copy)]
pub struct Collectives<'a, T: Topology> {
    pub topo: &'a T,
    pub cost: CostModel,
}

impl<'a, T: Topology> Collectives<'a, T> {
    pub fn new(topo: &'a T, cost: CostModel) -> Self {
        Collectives { topo, cost }
    }

    fn sync(&self, clocks: &mut [f64]) -> f64 {
        let max = clocks.iter().copied().fold(0.0, f64::max);
        for c in clocks.iter_mut() {
            *c = max;
        }
        max
    }

    fn charge(&self, clocks: &mut [f64], op: Collective, m: u64) {
        let t = self.topo.collective_time(op, m, &self.cost);
        for c in clocks.iter_mut() {
            *c += t;
        }
    }

    /// All-to-all broadcast (allgather): every processor contributes its
    /// `contrib[i]`; everyone receives the concatenation (in rank order).
    /// `words_per_item` prices one item of `C`.
    pub fn all_to_all_broadcast<C: Clone>(
        &self,
        clocks: &mut [f64],
        contrib: &[Vec<C>],
        words_per_item: u64,
    ) -> Vec<C> {
        assert_eq!(contrib.len(), self.topo.p());
        self.sync(clocks);
        // Non-uniform contributions: every processor ends up receiving the
        // whole concatenation, so the bandwidth term is the *total* word
        // count (for uniform m this equals the textbook m·(p−1) up to one
        // share).
        let total = contrib.iter().map(|c| c.len() as u64 * words_per_item).sum();
        self.charge(clocks, Collective::AllToAllBroadcast, total);
        contrib.iter().flat_map(|c| c.iter().cloned()).collect()
    }

    /// All-to-all personalized exchange: `send[src][dst]` is delivered to
    /// `dst`; returns `recv[dst]` as a vec of `(src, items)`.
    pub fn all_to_all_personalized<C>(
        &self,
        clocks: &mut [f64],
        send: Vec<Vec<Vec<C>>>,
        words_per_item: u64,
    ) -> Vec<Vec<(usize, Vec<C>)>> {
        let p = self.topo.p();
        assert_eq!(send.len(), p);
        self.sync(clocks);
        let m = send
            .iter()
            .flat_map(|row| row.iter().map(|v| v.len() as u64 * words_per_item))
            .max()
            .unwrap_or(0);
        self.charge(clocks, Collective::AllToAllPersonalized, m);
        let mut recv: Vec<Vec<(usize, Vec<C>)>> = (0..p).map(|_| Vec::new()).collect();
        for (src, row) in send.into_iter().enumerate() {
            assert_eq!(row.len(), p, "send matrix must be p×p");
            for (dst, items) in row.into_iter().enumerate() {
                if !items.is_empty() {
                    recv[dst].push((src, items));
                }
            }
        }
        recv
    }

    /// All-reduce of per-processor `f64` values with `op`; everyone gets the
    /// reduction.
    pub fn all_reduce_f64(
        &self,
        clocks: &mut [f64],
        values: &[f64],
        op: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        assert_eq!(values.len(), self.topo.p());
        self.sync(clocks);
        self.charge(clocks, Collective::Reduce, 1);
        values.iter().copied().reduce(op).unwrap_or(0.0)
    }

    /// Exclusive prefix sum (scan) of per-processor values: result `i` is the
    /// sum of values `0..i`.
    pub fn exscan_f64(&self, clocks: &mut [f64], values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.topo.p());
        self.sync(clocks);
        self.charge(clocks, Collective::Scan, 1);
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0.0;
        for v in values {
            out.push(acc);
            acc += v;
        }
        out
    }

    /// One-to-all broadcast of `m_words` from `root` (data handled by
    /// caller; this just accounts the time).
    pub fn broadcast_time(&self, clocks: &mut [f64], m_words: u64) {
        self.sync(clocks);
        self.charge(clocks, Collective::Broadcast, m_words);
    }

    /// Barrier: clocks synchronize to the maximum (plus a reduce of one
    /// word, the canonical implementation).
    pub fn barrier(&self, clocks: &mut [f64]) {
        self.sync(clocks);
        self.charge(clocks, Collective::Reduce, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Hypercube;

    fn setup() -> (Hypercube, CostModel) {
        (Hypercube::new(8), CostModel::unit())
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks = vec![0.0; 8];
        let contrib: Vec<Vec<u32>> = (0..8).map(|r| vec![r as u32; r % 3]).collect();
        let all = coll.all_to_all_broadcast(&mut clocks, &contrib, 1);
        let want: Vec<u32> = contrib.concat();
        assert_eq!(all, want);
        // everyone advanced equally
        assert!(clocks.iter().all(|&c| (c - clocks[0]).abs() < 1e-12 && c > 0.0));
    }

    #[test]
    fn allgather_cost_formula() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks = vec![0.0; 8];
        let contrib: Vec<Vec<u32>> = (0..8).map(|_| vec![0; 4]).collect();
        coll.all_to_all_broadcast(&mut clocks, &contrib, 1);
        // hypercube allgather: t_s·log p + t_w·total = 3 + 32 = 35.
        assert!((clocks[0] - 35.0).abs() < 1e-9, "{}", clocks[0]);
    }

    #[test]
    fn allgather_synchronizes_clocks_first() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks: Vec<f64> = (0..8).map(|i| i as f64).collect();
        coll.all_to_all_broadcast(&mut clocks, &vec![Vec::<u32>::new(); 8], 1);
        // barrier to 7.0, plus cost with m=0: t_s·log p = 3.
        for &c in &clocks {
            assert!((c - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn personalized_routes_correctly() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks = vec![0.0; 8];
        // src sends vec![src*10 + dst] to each dst ≠ src.
        let send: Vec<Vec<Vec<u32>>> = (0..8)
            .map(|src| {
                (0..8)
                    .map(|dst| if src == dst { vec![] } else { vec![(src * 10 + dst) as u32] })
                    .collect()
            })
            .collect();
        let recv = coll.all_to_all_personalized(&mut clocks, send, 1);
        for (dst, items) in recv.iter().enumerate() {
            assert_eq!(items.len(), 7);
            for (src, data) in items {
                assert_eq!(data, &vec![(src * 10 + dst) as u32]);
            }
        }
    }

    #[test]
    fn reduce_and_scan() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks = vec![0.0; 8];
        let vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(coll.all_reduce_f64(&mut clocks, &vals, f64::max), 7.0);
        assert_eq!(coll.all_reduce_f64(&mut clocks, &vals, |a, b| a + b), 28.0);
        let scan = coll.exscan_f64(&mut clocks, &vals);
        assert_eq!(scan, vec![0.0, 0.0, 1.0, 3.0, 6.0, 10.0, 15.0, 21.0]);
    }

    #[test]
    fn barrier_equalizes() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks: Vec<f64> = (0..8).map(|i| 2.0 * i as f64).collect();
        coll.barrier(&mut clocks);
        assert!(clocks.iter().all(|&c| (c - clocks[0]).abs() < 1e-12));
        assert!(clocks[0] >= 14.0);
    }

    #[test]
    #[should_panic(expected = "p×p")]
    fn personalized_rejects_ragged_matrix() {
        let (topo, cost) = setup();
        let coll = Collectives::new(&topo, cost);
        let mut clocks = vec![0.0; 8];
        let mut send: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); 8]; 8];
        send[3] = vec![Vec::new(); 5];
        let _ = coll.all_to_all_personalized(&mut clocks, send, 1);
    }
}
