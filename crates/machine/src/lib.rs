//! A simulated message-passing multicomputer (substrate **S5**).
//!
//! The paper's experiments ran on a 256-processor nCUBE2 (hypercube) and a
//! 256-processor CM5 (fat tree). This crate substitutes a deterministic
//! machine simulator so the parallel formulations can be executed, validated
//! and *timed* on a single host:
//!
//! * [`topology`] — interconnects with per-pair hop counts: [`Hypercube`],
//!   [`Mesh2D`], [`FatTree`] (CM5-like), [`Crossbar`].
//! * [`cost`] — the classic `t_s` / `t_h` / `t_w` / `t_flop` linear model
//!   with presets for the nCUBE2 and CM5 eras.
//! * [`bsp`] — a superstep (BSP) execution engine: virtual processors run
//!   [`Program`]s, exchange typed messages, and accumulate *virtual clocks*;
//!   messages sent in superstep `t` are delivered at superstep `t+1` with a
//!   latency of `t_s + hops·t_h + words·t_w`. Execution is sequential and
//!   fully deterministic, so every experiment is replayable.
//! * [`collectives`] — the two collective operations the formulations lean
//!   on (§3: "coupled with two collective communication operations"):
//!   all-to-all broadcast and all-to-all personalized exchange, plus
//!   reductions/scans, with the cost formulas of Kumar, Grama, Gupta &
//!   Karypis \[20\] applied per topology.
//! * [`stats`] — run reports: per-processor clocks, flops, message and word
//!   counts, parallel time, efficiency, load imbalance.
//! * [`phases`] — the canonical phase grouping that folds a simulated
//!   profile and a real multi-process profile onto one comparable
//!   [`PhaseShares`] table (the simulator-vs-reality CI gate's metric).
//!
//! The substitution preserves the paper's observable behaviour: *who wins
//! and by how much* is a function of work distribution and communication
//! volume, both of which are computed exactly; only the constants come from
//! the cost model instead of silicon.

pub mod bsp;
pub mod collectives;
pub mod cost;
pub mod phases;
pub mod stats;
pub mod topology;
pub mod trace;

pub use bsp::{Ctx, Envelope, Machine, Program, Status};
pub use collectives::Collectives;
pub use cost::CostModel;
pub use phases::PhaseShares;
pub use stats::RunReport;
pub use topology::{Crossbar, FatTree, Hypercube, Mesh2D, Topology};
pub use trace::{Span, Trace};
