//! Interconnection topologies.
//!
//! A [`Topology`] provides the processor count and per-pair hop distances
//! that the cost model turns into message latencies, plus closed-form costs
//! for the collective operations (the formulas of Kumar et al., *Introduction
//! to Parallel Computing* — reference \[20\] of the paper).

use crate::cost::CostModel;

/// The collective operations the treecode formulations use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// All-to-all broadcast (allgather): `m` is the *total* words gathered
    /// over all processors; everyone ends with all of them.
    AllToAllBroadcast,
    /// All-to-all personalized: every processor sends a distinct `m`-word
    /// message to every other.
    AllToAllPersonalized,
    /// One-to-all broadcast of `m` words.
    Broadcast,
    /// All-reduce / reduction of `m` words.
    Reduce,
    /// Parallel prefix (scan) of `m` words.
    Scan,
}

/// An interconnect: processor count, hop metric, and collective costs.
pub trait Topology {
    /// Number of processors.
    fn p(&self) -> usize;

    /// Routing distance between two processor labels.
    fn hops(&self, a: usize, b: usize) -> u32;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Network diameter (max hops).
    fn diameter(&self) -> u32 {
        let p = self.p();
        let mut d = 0;
        for a in 0..p {
            for b in 0..p {
                d = d.max(self.hops(a, b));
            }
        }
        d
    }

    /// Time for a collective with per-processor payload `m` words under
    /// `cost`. Default formulas assume a hypercube-quality network (log-depth
    /// trees); topologies with weaker bisection override.
    fn collective_time(&self, op: Collective, m: u64, cost: &CostModel) -> f64 {
        let p = self.p() as f64;
        let lg = p.log2().ceil().max(1.0);
        let m = m as f64;
        match op {
            // t_s·log p + t_w·m_total: doubling gather (m is total words).
            Collective::AllToAllBroadcast => cost.t_s * lg + cost.t_w * m,
            // (t_s + t_w·m·p/2)·log p: E-cube exchange.
            Collective::AllToAllPersonalized => (cost.t_s + cost.t_w * m * p / 2.0) * lg,
            Collective::Broadcast | Collective::Reduce | Collective::Scan => {
                (cost.t_s + cost.t_w * m) * lg
            }
        }
    }
}

/// A binary hypercube of dimension `dim` (the nCUBE2).
#[derive(Debug, Clone, Copy)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// # Panics
    /// If `p` is not a power of two.
    pub fn new(p: usize) -> Self {
        assert!(p.is_power_of_two() && p > 0, "hypercube needs a power-of-two p, got {p}");
        Hypercube { dim: p.trailing_zeros() }
    }

    pub fn dim(&self) -> u32 {
        self.dim
    }
}

impl Topology for Hypercube {
    fn p(&self) -> usize {
        1 << self.dim
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        (a ^ b).count_ones()
    }

    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn diameter(&self) -> u32 {
        self.dim
    }
}

/// A 2-D mesh (optionally a torus) with row-major labels.
#[derive(Debug, Clone, Copy)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
    wrap: bool,
}

impl Mesh2D {
    pub fn new(rows: usize, cols: usize, wrap: bool) -> Self {
        assert!(rows > 0 && cols > 0);
        Mesh2D { rows, cols, wrap }
    }

    fn axis_dist(&self, a: usize, b: usize, n: usize) -> u32 {
        let d = a.abs_diff(b);
        if self.wrap {
            d.min(n - d) as u32
        } else {
            d as u32
        }
    }
}

impl Topology for Mesh2D {
    fn p(&self) -> usize {
        self.rows * self.cols
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        let (ar, ac) = (a / self.cols, a % self.cols);
        let (br, bc) = (b / self.cols, b % self.cols);
        self.axis_dist(ar, br, self.rows) + self.axis_dist(ac, bc, self.cols)
    }

    fn name(&self) -> &'static str {
        "mesh2d"
    }

    fn collective_time(&self, op: Collective, m: u64, cost: &CostModel) -> f64 {
        // Mesh formulas (store-and-forward rows-then-columns, [20] ch. 4):
        let p = self.p() as f64;
        let sq = p.sqrt().max(1.0);
        let m = m as f64;
        match op {
            // 2 t_s(√p − 1) + t_w·m_total
            Collective::AllToAllBroadcast => {
                let _ = p;
                2.0 * cost.t_s * (sq - 1.0) + cost.t_w * m
            }
            // (2 t_s + t_w m p)(√p − 1) approximation
            Collective::AllToAllPersonalized => (2.0 * cost.t_s + cost.t_w * m * p) * (sq - 1.0),
            Collective::Broadcast | Collective::Reduce | Collective::Scan => {
                2.0 * (cost.t_s + cost.t_w * m) * (sq - 1.0)
            }
        }
    }
}

/// A `radix`-ary fat tree (the CM5 data network was a 4-ary fat tree).
/// Hops between leaves = 2 × height of their lowest common ancestor.
#[derive(Debug, Clone, Copy)]
pub struct FatTree {
    p: usize,
    radix: usize,
}

impl FatTree {
    /// A CM5-style 4-ary fat tree over `p` leaves.
    pub fn cm5(p: usize) -> Self {
        assert!(p > 0);
        FatTree { p, radix: 4 }
    }

    pub fn new(p: usize, radix: usize) -> Self {
        assert!(p > 0 && radix >= 2);
        FatTree { p, radix }
    }
}

impl Topology for FatTree {
    fn p(&self) -> usize {
        self.p
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        let (mut a, mut b) = (a, b);
        let mut h = 0;
        while a != b {
            a /= self.radix;
            b /= self.radix;
            h += 1;
        }
        2 * h
    }

    fn name(&self) -> &'static str {
        "fat-tree"
    }
}

/// An idealized full crossbar: every pair one hop apart. Useful as the
/// "communication is cheap" control in topology ablations.
#[derive(Debug, Clone, Copy)]
pub struct Crossbar {
    p: usize,
}

impl Crossbar {
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        Crossbar { p }
    }
}

impl Topology for Crossbar {
    fn p(&self) -> usize {
        self.p
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        u32::from(a != b)
    }

    fn name(&self) -> &'static str {
        "crossbar"
    }

    fn diameter(&self) -> u32 {
        u32::from(self.p > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_hops_and_diameter() {
        let h = Hypercube::new(16);
        assert_eq!(h.p(), 16);
        assert_eq!(h.hops(0b0000, 0b1111), 4);
        assert_eq!(h.hops(5, 5), 0);
        assert_eq!(h.hops(0b0001, 0b0011), 1);
        assert_eq!(h.diameter(), 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power() {
        let _ = Hypercube::new(12);
    }

    #[test]
    fn mesh_hops() {
        let m = Mesh2D::new(4, 4, false);
        assert_eq!(m.hops(0, 15), 6); // (0,0) -> (3,3)
        assert_eq!(m.hops(0, 3), 3);
        let t = Mesh2D::new(4, 4, true);
        assert_eq!(t.hops(0, 3), 1); // wraps
        assert_eq!(t.hops(0, 15), 2);
    }

    #[test]
    fn fat_tree_hops() {
        let f = FatTree::cm5(256);
        assert_eq!(f.hops(0, 0), 0);
        assert_eq!(f.hops(0, 1), 2); // same leaf switch
        assert_eq!(f.hops(0, 4), 4); // one level up
        assert_eq!(f.hops(0, 255), 8); // root
                                       // symmetry
        for (a, b) in [(3, 77), (100, 200), (0, 255)] {
            assert_eq!(f.hops(a, b), f.hops(b, a));
        }
    }

    #[test]
    fn crossbar_is_flat() {
        let c = Crossbar::new(7);
        assert_eq!(c.hops(1, 2), 1);
        assert_eq!(c.hops(3, 3), 0);
        assert_eq!(c.diameter(), 1);
    }

    #[test]
    fn collective_costs_scale_sanely() {
        let cost = CostModel::ncube2();
        let small = Hypercube::new(16);
        let large = Hypercube::new(256);
        for op in [
            Collective::AllToAllBroadcast,
            Collective::AllToAllPersonalized,
            Collective::Broadcast,
            Collective::Reduce,
            Collective::Scan,
        ] {
            let t_small = small.collective_time(op, 64, &cost);
            let t_large = large.collective_time(op, 64, &cost);
            assert!(t_small > 0.0);
            assert!(t_large > t_small, "{op:?} must cost more at larger p");
            // More data costs more.
            assert!(small.collective_time(op, 128, &cost) > t_small);
        }
    }

    #[test]
    fn mesh_collectives_cost_more_than_hypercube() {
        let cost = CostModel::ncube2();
        let h = Hypercube::new(64);
        let m = Mesh2D::new(8, 8, false);
        let th = h.collective_time(Collective::Broadcast, 16, &cost);
        let tm = m.collective_time(Collective::Broadcast, 16, &cost);
        assert!(tm > th, "mesh bcast {tm} should exceed hypercube {th}");
    }
}
