//! The superstep (BSP) execution engine.
//!
//! Virtual processors implement [`Program`]; the [`Machine`] drives them
//! through supersteps. In each superstep every live processor receives the
//! messages whose arrival time has passed its own clock, does some local
//! work (charging its virtual clock through [`Ctx`]), and queues outgoing
//! messages stamped with their send times. Messages from the future stay
//! queued — a busy processor is never synchronized to its senders — and a
//! *blocked* processor idle-advances to the earliest pending arrival, so
//! the final per-processor clocks reflect the true critical path of the
//! simulated execution, including genuine idle waits but no artificial
//! barrier waits.
//!
//! Execution is single-threaded and deterministic: processors step in rank
//! order and inboxes are sorted by (arrival time, source, sequence number).

use crate::cost::CostModel;
use crate::stats::RunReport;
use crate::topology::Topology;
use crate::trace::{Span, Trace};

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    pub src: usize,
    pub dst: usize,
    /// Size in words (f64 units) for cost accounting.
    pub words: u64,
    pub payload: M,
}

/// What a processor reports at the end of a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Has more local work; step again even with an empty inbox.
    Ready,
    /// Out of local work; only progresses when messages arrive.
    Blocked,
    /// Finished. A `Done` processor still receives messages (they are
    /// dropped) but is not stepped again.
    Done,
}

/// Per-superstep execution context handed to a [`Program`].
pub struct Ctx<'a, M> {
    rank: usize,
    p: usize,
    clock: f64,
    flops: u64,
    inbox: Vec<Envelope<M>>,
    outbox: &'a mut Vec<Envelope<M>>,
    send_times: Vec<f64>,
    sent_words: u64,
    sent_msgs: u64,
    cost: CostModel,
}

impl<M> Ctx<'_, M> {
    /// This processor's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Messages delivered for this superstep, ordered by arrival.
    pub fn inbox(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inbox)
    }

    /// Charge `flops` floating-point operations of local work.
    pub fn charge_flops(&mut self, flops: u64) {
        self.flops += flops;
        self.clock += self.cost.compute_time(flops);
    }

    /// Charge raw seconds of local work (non-flop overheads).
    pub fn charge_time(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    /// Queue a message of `words` payload words to `dst`; it is delivered
    /// next superstep. The sender is busy for `t_s + words·t_w`; the message
    /// is stamped with the sender's clock *at the send*, so work done later
    /// in the same superstep does not delay it.
    pub fn send(&mut self, dst: usize, words: u64, payload: M) {
        assert!(dst < self.p, "rank {dst} out of range");
        self.clock += self.cost.t_s + self.cost.t_w * words as f64;
        self.sent_words += words;
        self.sent_msgs += 1;
        self.send_times.push(self.clock);
        self.outbox.push(Envelope { src: self.rank, dst, words, payload });
    }

    /// Current virtual time of this processor.
    pub fn now(&self) -> f64 {
        self.clock
    }
}

/// A virtual processor: stepped once per superstep until it reports
/// [`Status::Done`].
pub trait Program {
    type Msg;

    /// Perform one superstep of work. Implementations should bound the work
    /// done per call (e.g. one bin of particles) so message interleaving is
    /// faithful to a real asynchronous run.
    fn step(&mut self, ctx: &mut Ctx<'_, Self::Msg>) -> Status;
}

/// The machine: a topology plus a cost model.
#[derive(Debug, Clone, Copy)]
pub struct Machine<T: Topology> {
    pub topo: T,
    pub cost: CostModel,
}

impl<T: Topology> Machine<T> {
    pub fn new(topo: T, cost: CostModel) -> Self {
        Machine { topo, cost }
    }

    pub fn p(&self) -> usize {
        self.topo.p()
    }

    /// Run one program instance per processor until every processor is
    /// `Done`, or the system quiesces (every processor `Done`/`Blocked` with
    /// no messages in flight — distributed termination for request/reply
    /// protocols).
    pub fn run<P: Program>(&self, programs: Vec<P>) -> RunReport {
        self.run_programs(programs).0
    }

    /// [`Machine::run`], but hands the (mutated) programs back so callers
    /// can harvest per-processor results.
    pub fn run_programs<P: Program>(&self, programs: Vec<P>) -> (RunReport, Vec<P>) {
        let (report, programs, _) = self.run_inner(programs, false);
        (report, programs)
    }

    /// [`Machine::run_programs`] plus a [`Trace`] of per-processor busy
    /// spans for Gantt-style visualization.
    pub fn run_traced<P: Program>(&self, programs: Vec<P>) -> (RunReport, Vec<P>, Trace) {
        let (report, programs, trace) = self.run_inner(programs, true);
        (report, programs, trace.expect("tracing requested"))
    }

    fn run_inner<P: Program>(
        &self,
        mut programs: Vec<P>,
        traced: bool,
    ) -> (RunReport, Vec<P>, Option<Trace>) {
        let mut trace = traced.then(Trace::default);
        let p = self.topo.p();
        assert_eq!(programs.len(), p, "need one program per processor");

        let mut clocks = vec![0.0f64; p];
        let mut flops = vec![0u64; p];
        let mut status = vec![Status::Ready; p];
        // (arrival, src, seq, envelope) queued per destination.
        type Queued<M> = (f64, usize, u64, Envelope<M>);
        let mut pending: Vec<Vec<Queued<P::Msg>>> = (0..p).map(|_| Vec::new()).collect();
        let mut seq = 0u64;
        let mut outbox: Vec<Envelope<P::Msg>> = Vec::new();
        let mut total_msgs = 0u64;
        let mut total_words = 0u64;
        let mut supersteps = 0u64;

        loop {
            supersteps += 1;
            let mut progressed = false;
            for rank in 0..p {
                let has_mail = !pending[rank].is_empty();
                match status[rank] {
                    Status::Done => {
                        pending[rank].clear(); // drop late mail
                        continue;
                    }
                    Status::Blocked if !has_mail => continue,
                    _ => {}
                }
                // Deliver only messages that have *arrived* (arrival ≤ own
                // clock): a busy processor keeps computing rather than
                // synchronizing to its senders. A blocked processor with
                // only-future mail idle-advances to the earliest arrival —
                // that wait is real.
                if status[rank] == Status::Blocked
                    && pending[rank].iter().all(|m| m.0 > clocks[rank])
                {
                    let earliest = pending[rank].iter().map(|m| m.0).fold(f64::INFINITY, f64::min);
                    clocks[rank] = clocks[rank].max(earliest);
                }
                let now = clocks[rank];
                let queue = std::mem::take(&mut pending[rank]);
                let (mut inbox_raw, defer): (Vec<_>, Vec<_>) =
                    queue.into_iter().partition(|m| m.0 <= now);
                pending[rank] = defer;
                inbox_raw.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                });
                let inbox: Vec<Envelope<P::Msg>> =
                    inbox_raw.into_iter().map(|(_, _, _, e)| e).collect();

                let step_start = clocks[rank];
                let mut ctx = Ctx {
                    rank,
                    p,
                    clock: clocks[rank],
                    flops: 0,
                    inbox,
                    outbox: &mut outbox,
                    send_times: Vec::new(),
                    sent_words: 0,
                    sent_msgs: 0,
                    cost: self.cost,
                };
                let st = programs[rank].step(&mut ctx);
                clocks[rank] = ctx.clock;
                flops[rank] += ctx.flops;
                total_words += ctx.sent_words;
                total_msgs += ctx.sent_msgs;
                let send_times = std::mem::take(&mut ctx.send_times);
                if let Some(trace) = trace.as_mut() {
                    trace.record(Span {
                        rank,
                        superstep: supersteps,
                        start: step_start,
                        end: clocks[rank],
                        sent: ctx.sent_msgs,
                        phase: String::new(),
                    });
                }
                status[rank] = st;
                progressed = true;

                // Route queued messages, stamped at their send times.
                for (env, sent_at) in outbox.drain(..).zip(send_times) {
                    let hops = self.topo.hops(rank, env.dst);
                    let arrival = sent_at + self.cost.t_h * hops as f64;
                    pending[env.dst].push((arrival, rank, seq, env));
                    seq += 1;
                }
            }

            let in_flight: usize = pending.iter().map(Vec::len).sum();
            let all_done = status.iter().all(|s| *s == Status::Done);
            // Quiescence: every processor is Done or Blocked and no message
            // is in flight. For request/reply protocols (function shipping)
            // this *is* distributed termination — a processor that finished
            // its own work stays Blocked to serve remote requests, and the
            // run ends when no one can generate further traffic.
            let quiesced = in_flight == 0
                && status.iter().all(|s| matches!(s, Status::Done | Status::Blocked));
            if (all_done && in_flight == 0) || quiesced || (!progressed && in_flight == 0) {
                break;
            }
        }

        let report =
            RunReport { clocks, flops, messages: total_msgs, words: total_words, supersteps };
        (report, programs, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Crossbar, Hypercube};

    /// Each processor does `work` flops and finishes.
    struct Compute {
        work: u64,
        done: bool,
    }

    impl Program for Compute {
        type Msg = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Status {
            if !self.done {
                ctx.charge_flops(self.work);
                self.done = true;
            }
            Status::Done
        }
    }

    #[test]
    fn pure_compute_clocks() {
        let m = Machine::new(Crossbar::new(4), CostModel::unit());
        let report = m.run(vec![
            Compute { work: 5, done: false },
            Compute { work: 9, done: false },
            Compute { work: 1, done: false },
            Compute { work: 0, done: false },
        ]);
        assert_eq!(report.clocks, vec![5.0, 9.0, 1.0, 0.0]);
        assert_eq!(report.parallel_time(), 9.0);
        assert_eq!(report.total_flops(), 15);
        assert_eq!(report.messages, 0);
    }

    /// Rank 0 sends a token around the ring; each hop increments it.
    struct RingToken {
        expected: u64,
        sent_initial: bool,
        finished: bool,
    }

    impl Program for RingToken {
        type Msg = u64;
        fn step(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            let rank = ctx.rank();
            let p = ctx.p();
            if rank == 0 && !self.sent_initial {
                self.sent_initial = true;
                ctx.send(1 % p, 1, 0);
                return Status::Blocked;
            }
            let inbox = ctx.inbox();
            if let Some(env) = inbox.into_iter().next() {
                let v = env.payload + 1;
                if rank == 0 {
                    assert_eq!(v, self.expected);
                    self.finished = true;
                    return Status::Done;
                }
                ctx.send((rank + 1) % p, 1, v);
                self.finished = true;
                return Status::Done;
            }
            if self.finished {
                Status::Done
            } else {
                Status::Blocked
            }
        }
    }

    #[test]
    fn ring_token_passes_and_clocks_accumulate() {
        let p = 8;
        let m = Machine::new(Hypercube::new(p), CostModel::unit());
        let programs = (0..p)
            .map(|_| RingToken { expected: p as u64, sent_initial: false, finished: false })
            .collect();
        let report = m.run(programs);
        assert_eq!(report.messages, p as u64);
        assert_eq!(report.words, p as u64);
        // The token chain serializes: total time ≥ p messages × (t_s + t_w).
        assert!(report.parallel_time() >= p as f64 * 2.0);
    }

    /// Quiescence: everyone blocked with nothing in flight ends the run.
    struct Waiter;
    impl Program for Waiter {
        type Msg = ();
        fn step(&mut self, _ctx: &mut Ctx<'_, ()>) -> Status {
            Status::Blocked
        }
    }

    #[test]
    fn quiescence_terminates() {
        let m = Machine::new(Crossbar::new(2), CostModel::unit());
        let report = m.run(vec![Waiter, Waiter]);
        assert_eq!(report.messages, 0);
        assert_eq!(report.parallel_time(), 0.0);
    }

    /// Receiver clock respects arrival time (idle wait is visible).
    struct SlowSender {
        sent: bool,
    }
    impl Program for SlowSender {
        type Msg = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Status {
            if ctx.rank() == 0 {
                if !self.sent {
                    self.sent = true;
                    ctx.charge_flops(100); // long local work first
                    ctx.send(1, 10, ());
                }
                Status::Done
            } else {
                if self.sent {
                    return Status::Done;
                }
                if ctx.inbox().is_empty() {
                    Status::Blocked
                } else {
                    self.sent = true;
                    ctx.charge_flops(1);
                    Status::Done
                }
            }
        }
    }

    #[test]
    fn receiver_waits_for_arrival() {
        let m = Machine::new(Crossbar::new(2), CostModel::unit());
        let report = m.run(vec![SlowSender { sent: false }, SlowSender { sent: false }]);
        // Sender: 100 flops + t_s + 10·t_w = 111; arrival = 111 + 1 hop.
        // Receiver: max(0, 112) + 1 flop = 113.
        assert!((report.clocks[0] - 111.0).abs() < 1e-9, "{:?}", report.clocks);
        assert!((report.clocks[1] - 113.0).abs() < 1e-9, "{:?}", report.clocks);
    }

    /// Done processors drop late mail without stalling termination.
    struct FireAndForget {
        fired: bool,
    }
    impl Program for FireAndForget {
        type Msg = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Status {
            if !self.fired {
                self.fired = true;
                let dst = (ctx.rank() + 1) % ctx.p();
                ctx.send(dst, 1, ());
            }
            Status::Done
        }
    }

    #[test]
    fn late_mail_to_done_processors_is_dropped() {
        let m = Machine::new(Crossbar::new(3), CostModel::unit());
        let report = m.run(vec![
            FireAndForget { fired: false },
            FireAndForget { fired: false },
            FireAndForget { fired: false },
        ]);
        assert_eq!(report.messages, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        struct Bad;
        impl Program for Bad {
            type Msg = ();
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Status {
                ctx.send(99, 1, ());
                Status::Done
            }
        }
        let m = Machine::new(Crossbar::new(2), CostModel::unit());
        let _ = m.run(vec![Bad, Bad]);
    }

    #[test]
    fn determinism() {
        let run = || {
            let p = 8;
            let m = Machine::new(Hypercube::new(p), CostModel::ncube2());
            let programs = (0..p)
                .map(|_| RingToken { expected: p as u64, sent_initial: false, finished: false })
                .collect();
            m.run(programs)
        };
        let a = run();
        let b = run();
        assert_eq!(a.clocks, b.clocks);
        assert_eq!(a.supersteps, b.supersteps);
    }
}
