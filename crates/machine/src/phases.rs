//! Canonical phase grouping for simulator-vs-reality comparison.
//!
//! The virtual-clock simulator reports the paper's five phases
//! (`local_tree`, `tree_merge`, `broadcast`, `force`, `load_balance`); the
//! real multi-process backend reports its own six (`exchange`, `build`,
//! `walk`, `kernel`, `update`, `load_balance`). To put a prediction and a
//! measurement in the same table, both are folded onto four canonical
//! groups:
//!
//! | group      | simulated phases          | real phases              |
//! |------------|---------------------------|--------------------------|
//! | `build`    | local_tree                | build                    |
//! | `exchange` | tree_merge + broadcast    | exchange                 |
//! | `force`    | force                     | walk + kernel (or eval)  |
//! | `balance`  | load_balance              | load_balance + update    |
//!
//! [`PhaseShares`] holds the normalized per-group share of total busy time;
//! [`PhaseShares::max_abs_error`] is the comparison metric the `proc-smoke`
//! CI gate consumes: the largest absolute difference in share points
//! between prediction and measurement. Shares are dimensionless fractions,
//! so virtual seconds and wall seconds compare directly.

use bhut_obs::{phase, StepProfile};
use serde::{Deserialize, Serialize};

/// The four canonical phase groups.
pub const GROUPS: [&str; 4] = ["build", "exchange", "force", "balance"];

/// Normalized share of total busy time per canonical phase group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseShares {
    pub build: f64,
    pub exchange: f64,
    pub force: f64,
    pub balance: f64,
}

/// Canonical group of a raw phase name, `None` for phases outside the
/// comparison (e.g. `scatter`, raw BSP supersteps).
pub fn group_of(phase_name: &str) -> Option<&'static str> {
    match phase_name {
        phase::LOCAL_TREE | phase::BUILD => Some("build"),
        phase::TREE_MERGE | phase::BROADCAST | phase::EXCHANGE => Some("exchange"),
        phase::FORCE | phase::WALK | phase::KERNEL | phase::EVAL => Some("force"),
        phase::LOAD_BALANCE | phase::UPDATE => Some("balance"),
        _ => None,
    }
}

impl PhaseShares {
    /// Fold a profile's spans onto the canonical groups and normalize to
    /// shares of the grouped busy time. A profile with no groupable spans
    /// yields all-zero shares.
    pub fn from_profile(profile: &StepProfile) -> PhaseShares {
        let mut sums = [0.0f64; 4];
        for span in &profile.spans {
            if let Some(g) = group_of(&span.phase) {
                let slot = GROUPS.iter().position(|&n| n == g).expect("known group");
                sums[slot] += span.duration();
            }
        }
        let total: f64 = sums.iter().sum();
        if total <= 0.0 {
            return PhaseShares::default();
        }
        PhaseShares {
            build: sums[0] / total,
            exchange: sums[1] / total,
            force: sums[2] / total,
            balance: sums[3] / total,
        }
    }

    /// Shares in [`GROUPS`] order.
    pub fn as_array(&self) -> [f64; 4] {
        [self.build, self.exchange, self.force, self.balance]
    }

    /// Largest absolute share difference against `other`, in share points
    /// (0.25 = a phase's share of the step was mispredicted by 25 points).
    pub fn max_abs_error(&self, other: &PhaseShares) -> f64 {
        self.as_array().iter().zip(other.as_array()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Per-group absolute errors against `other`, in [`GROUPS`] order.
    pub fn abs_errors(&self, other: &PhaseShares) -> [f64; 4] {
        let (a, b) = (self.as_array(), other.as_array());
        [0, 1, 2, 3].map(|i| (a[i] - b[i]).abs())
    }

    /// Shares sum to 1 (within roundoff) unless the profile was empty.
    pub fn is_normalized(&self) -> bool {
        (self.as_array().iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bhut_obs::Span;

    fn profile(spans: &[(&str, f64)]) -> StepProfile {
        let mut p = StepProfile::new(1);
        let mut t = 0.0;
        for (i, (name, d)) in spans.iter().enumerate() {
            p.record(Span::new(0, i as u64, name, t, t + d));
            t += d;
        }
        p
    }

    #[test]
    fn simulated_phases_fold_onto_groups() {
        let p = profile(&[
            (phase::LOCAL_TREE, 1.0),
            (phase::TREE_MERGE, 0.5),
            (phase::BROADCAST, 0.5),
            (phase::FORCE, 7.0),
            (phase::LOAD_BALANCE, 1.0),
        ]);
        let s = PhaseShares::from_profile(&p);
        assert!((s.build - 0.1).abs() < 1e-12);
        assert!((s.exchange - 0.1).abs() < 1e-12);
        assert!((s.force - 0.7).abs() < 1e-12);
        assert!((s.balance - 0.1).abs() < 1e-12);
        assert!(s.is_normalized());
    }

    #[test]
    fn real_phases_fold_onto_the_same_groups() {
        let p = profile(&[
            (phase::EXCHANGE, 1.0),
            (phase::BUILD, 2.0),
            (phase::WALK, 3.0),
            (phase::KERNEL, 3.0),
            (phase::UPDATE, 0.5),
            (phase::LOAD_BALANCE, 0.5),
        ]);
        let s = PhaseShares::from_profile(&p);
        assert!((s.build - 0.2).abs() < 1e-12);
        assert!((s.exchange - 0.1).abs() < 1e-12);
        assert!((s.force - 0.6).abs() < 1e-12);
        assert!((s.balance - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ungroupable_phases_are_excluded() {
        let p = profile(&[(phase::FORCE, 1.0), (phase::SCATTER, 9.0), ("bsp", 5.0)]);
        let s = PhaseShares::from_profile(&p);
        assert_eq!(s.force, 1.0);
        assert!(s.is_normalized());
    }

    #[test]
    fn error_metric_is_symmetric_max_over_groups() {
        let a = PhaseShares { build: 0.1, exchange: 0.1, force: 0.7, balance: 0.1 };
        let b = PhaseShares { build: 0.3, exchange: 0.05, force: 0.6, balance: 0.05 };
        assert!((a.max_abs_error(&b) - 0.2).abs() < 1e-12);
        assert_eq!(a.max_abs_error(&b), b.max_abs_error(&a));
        assert_eq!(a.max_abs_error(&a), 0.0);
        let errs = a.abs_errors(&b);
        assert!((errs[0] - 0.2).abs() < 1e-12);
        assert!((errs[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_yields_zero_shares() {
        let s = PhaseShares::from_profile(&StepProfile::new(2));
        assert_eq!(s, PhaseShares::default());
        assert!(!s.is_normalized());
    }
}
