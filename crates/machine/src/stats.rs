//! Run reports and derived performance metrics.

use serde::{Deserialize, Serialize};

/// The outcome of a simulated run (or one accounted phase).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Final virtual clock of each processor, in seconds.
    pub clocks: Vec<f64>,
    /// Flops charged by each processor.
    pub flops: Vec<u64>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload words sent.
    pub words: u64,
    /// Supersteps executed.
    pub supersteps: u64,
}

impl RunReport {
    /// Parallel time: the slowest processor's clock.
    pub fn parallel_time(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Mean processor clock.
    pub fn mean_time(&self) -> f64 {
        if self.clocks.is_empty() {
            return 0.0;
        }
        self.clocks.iter().sum::<f64>() / self.clocks.len() as f64
    }

    /// Load imbalance: max/mean clock (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_time();
        if mean == 0.0 {
            1.0
        } else {
            self.parallel_time() / mean
        }
    }

    /// Total flops over all processors.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Efficiency against a given sequential time:
    /// `E = T_serial / (p · T_parallel)`.
    pub fn efficiency(&self, serial_time: f64) -> f64 {
        let tp = self.parallel_time();
        if tp == 0.0 || self.clocks.is_empty() {
            return 1.0;
        }
        serial_time / (self.clocks.len() as f64 * tp)
    }

    /// Speed-up against a given sequential time.
    pub fn speedup(&self, serial_time: f64) -> f64 {
        let tp = self.parallel_time();
        if tp == 0.0 {
            return self.clocks.len() as f64;
        }
        serial_time / tp
    }

    /// Merge another phase's report into this one (clocks add pairwise,
    /// counters add).
    pub fn absorb(&mut self, other: &RunReport) {
        if self.clocks.is_empty() {
            self.clocks = vec![0.0; other.clocks.len()];
            self.flops = vec![0; other.flops.len()];
        }
        assert_eq!(self.clocks.len(), other.clocks.len());
        for (a, b) in self.clocks.iter_mut().zip(&other.clocks) {
            *a += b;
        }
        for (a, b) in self.flops.iter_mut().zip(&other.flops) {
            *a += b;
        }
        self.messages += other.messages;
        self.words += other.words;
        self.supersteps += other.supersteps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(clocks: &[f64]) -> RunReport {
        RunReport { clocks: clocks.to_vec(), flops: vec![0; clocks.len()], ..Default::default() }
    }

    #[test]
    fn parallel_time_is_max() {
        assert_eq!(report(&[1.0, 5.0, 3.0]).parallel_time(), 5.0);
        assert_eq!(report(&[]).parallel_time(), 0.0);
    }

    #[test]
    fn imbalance() {
        assert!((report(&[1.0, 1.0, 1.0]).imbalance() - 1.0).abs() < 1e-12);
        assert!((report(&[0.0, 2.0]).imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_and_speedup() {
        let r = report(&[2.0, 2.0, 2.0, 2.0]);
        // serial = 8 ⇒ speedup 4 on 4 procs ⇒ efficiency 1.
        assert!((r.speedup(8.0) - 4.0).abs() < 1e-12);
        assert!((r.efficiency(8.0) - 1.0).abs() < 1e-12);
        assert!((r.efficiency(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = report(&[1.0, 2.0]);
        let mut b = report(&[3.0, 1.0]);
        b.messages = 7;
        b.words = 70;
        a.absorb(&b);
        assert_eq!(a.clocks, vec![4.0, 3.0]);
        assert_eq!(a.messages, 7);
        assert_eq!(a.words, 70);
        // absorbing into empty adopts the shape
        let mut e = RunReport::default();
        e.absorb(&a);
        assert_eq!(e.clocks, a.clocks);
    }
}
