//! The linear communication/computation cost model.
//!
//! Message latency: `t_s + hops·t_h + words·t_w`; local work: `flops·t_flop`.
//! A *word* is one f64 (the paper counts "floating point numbers" as the unit
//! of communication volume, §4.2.1).
//!
//! Presets use published figures for the paper's two machines. They set the
//! computation/communication *ratio* the experiments depend on; the paper
//! itself notes (§6) that on newer machines the ratio is more favourable, so
//! we also provide [`CostModel::modern`] for that comparison.

use serde::{Deserialize, Serialize};

/// Machine cost constants, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Message startup latency.
    pub t_s: f64,
    /// Per-hop switching time.
    pub t_h: f64,
    /// Per-word (f64) transfer time.
    pub t_w: f64,
    /// Time per floating-point operation.
    pub t_flop: f64,
}

impl CostModel {
    /// nCUBE2: ≈3.3 Mflop/s nodes, `t_s ≈ 160 µs`, `t_w ≈ 2.4 µs/word`
    /// (figures consistent with Kumar et al. \[20\], ch. 3).
    pub fn ncube2() -> Self {
        CostModel { t_s: 160e-6, t_h: 1e-6, t_w: 2.4e-6, t_flop: 0.30e-6 }
    }

    /// CM5 (scalar SPARC nodes, no vector units — as the paper's runs):
    /// ≈3–5 Mflop/s effective, `t_s ≈ 86 µs`, ≈10 MB/s per channel.
    pub fn cm5() -> Self {
        CostModel { t_s: 86e-6, t_h: 0.5e-6, t_w: 0.8e-6, t_flop: 0.25e-6 }
    }

    /// A modern commodity cluster (for the §6 extrapolation): ≈1 Gflop/s
    /// sustained scalar, ≈2 µs MPI latency, ≈10 GB/s links.
    pub fn modern() -> Self {
        CostModel { t_s: 2e-6, t_h: 20e-9, t_w: 0.8e-9, t_flop: 1e-9 }
    }

    /// A unit-cost model (all constants 1) for analytically checkable tests.
    pub fn unit() -> Self {
        CostModel { t_s: 1.0, t_h: 1.0, t_w: 1.0, t_flop: 1.0 }
    }

    /// Latency of one point-to-point message.
    #[inline]
    pub fn message_time(&self, hops: u32, words: u64) -> f64 {
        self.t_s + self.t_h * hops as f64 + self.t_w * words as f64
    }

    /// Time for `flops` floating-point operations.
    #[inline]
    pub fn compute_time(&self, flops: u64) -> f64 {
        self.t_flop * flops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_linear() {
        let c = CostModel::unit();
        assert_eq!(c.message_time(0, 0), 1.0);
        assert_eq!(c.message_time(2, 3), 6.0);
    }

    #[test]
    fn presets_are_ordered_sanely() {
        let n = CostModel::ncube2();
        let c = CostModel::cm5();
        let m = CostModel::modern();
        // Startup dominates per-word cost on all machines.
        for k in [n, c, m] {
            assert!(k.t_s > k.t_w);
            assert!(k.t_w > 0.0 && k.t_flop > 0.0);
        }
        // Modern machines are faster across the board.
        assert!(m.t_s < c.t_s && c.t_s < n.t_s);
        assert!(m.t_flop < n.t_flop);
        // Communication/computation ratio improves over time (§6).
        assert!(m.t_w / m.t_flop < n.t_w / n.t_flop * 200.0);
    }

    #[test]
    fn compute_time() {
        let c = CostModel::ncube2();
        assert!((c.compute_time(1_000_000) - 0.30).abs() < 1e-12);
    }
}
