//! Property tests of the BSP engine: message conservation, clock causality,
//! and determinism for randomized communication patterns.

use bhut_machine::{CostModel, Ctx, Hypercube, Machine, Program, Status};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Each processor sends its (rank, seq) tags per a random schedule and
/// records everything it receives.
struct Chatter {
    plan: Vec<usize>, // destinations, sent one per superstep
    cursor: usize,
    received: Rc<RefCell<Vec<(usize, usize, u64)>>>, // (src, dst, tag)
}

impl Program for Chatter {
    type Msg = u64;
    fn step(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
        for env in ctx.inbox() {
            self.received.borrow_mut().push((env.src, ctx.rank(), env.payload));
        }
        if self.cursor < self.plan.len() {
            let dst = self.plan[self.cursor];
            let tag = (ctx.rank() as u64) << 32 | self.cursor as u64;
            ctx.send(dst, 1, tag);
            self.cursor += 1;
            Status::Ready
        } else {
            Status::Blocked
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message sent is delivered exactly once (no Done-dropping in
    /// this protocol because everyone stays Blocked at the end).
    #[test]
    fn messages_are_conserved(
        plans in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..12), 8),
    ) {
        let received = Rc::new(RefCell::new(Vec::new()));
        let programs: Vec<Chatter> = plans
            .iter()
            .map(|plan| Chatter { plan: plan.clone(), cursor: 0, received: received.clone() })
            .collect();
        let machine = Machine::new(Hypercube::new(8), CostModel::unit());
        let report = machine.run(programs);
        let total_sent: usize = plans.iter().map(Vec::len).sum();
        prop_assert_eq!(report.messages as usize, total_sent);
        let got = received.borrow();
        prop_assert_eq!(got.len(), total_sent);
        // each (src, seq) tag arrives exactly once at its planned dst
        let mut seen = HashSet::new();
        for &(src, dst, tag) in got.iter() {
            prop_assert!(seen.insert(tag), "duplicate delivery of {tag:x}");
            let planned_dst = plans[src][(tag & 0xffff_ffff) as usize];
            prop_assert_eq!(dst, planned_dst);
        }
    }

    /// Clocks are non-negative, and pure compute costs exactly
    /// flops × t_flop.
    #[test]
    fn compute_clock_exactness(work in proptest::collection::vec(0u64..100_000, 4)) {
        struct W(u64, bool);
        impl Program for W {
            type Msg = ();
            fn step(&mut self, ctx: &mut Ctx<'_, ()>) -> Status {
                if !self.1 {
                    ctx.charge_flops(self.0);
                    self.1 = true;
                }
                Status::Done
            }
        }
        let machine = Machine::new(Hypercube::new(4), CostModel::ncube2());
        let report = machine.run(work.iter().map(|&w| W(w, false)).collect());
        for (c, &w) in report.clocks.iter().zip(&work) {
            let want = CostModel::ncube2().t_flop * w as f64;
            prop_assert!((c - want).abs() < 1e-12 * want.max(1.0));
        }
    }

    /// Runs are bit-deterministic.
    #[test]
    fn runs_are_deterministic(
        plans in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..8), 8),
    ) {
        let run = || {
            let received = Rc::new(RefCell::new(Vec::new()));
            let programs: Vec<Chatter> = plans
                .iter()
                .map(|p| Chatter { plan: p.clone(), cursor: 0, received: received.clone() })
                .collect();
            Machine::new(Hypercube::new(8), CostModel::cm5()).run(programs)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.clocks, b.clocks);
        prop_assert_eq!(a.supersteps, b.supersteps);
        prop_assert_eq!(a.words, b.words);
    }
}
